"""Register-blocked ADC scan — a Quick(er)-ADC analogue [26, 27] (§2.3).

Quick-ADC observes that naive ADC is bottlenecked by *memory retrievals*:
per candidate, per subspace, one random lookup into the distance table.
The fix stores the table in SIMD registers (quantized to 8 bits so 16
entries fit a 128-bit register) and replaces gathers with in-register
shuffles over *transposed, blocked* code layouts.

The same structure maps onto numpy: we (1) quantize the ADC table to
uint8, (2) keep codes in a transposed (m, n) layout so each subspace's
lookup is one contiguous vectorized gather, and (3) accumulate in a
uint16 "register" array.  The naive baseline does per-row Python-level
lookups, mirroring the scalar gather code the papers beat.  The bench
(E10) measures the throughput gap's *shape*; the quantized-table recall
cost is measurable via :func:`table_quantization_error`.

The register-blocked layer (E22) goes the rest of the way to
Quick(er)-ADC:

* :func:`pack_codes_blocked` transposes (n, m) codes into an
  (m_eff, n_blocks, 32) block layout.  When ``ks <= 16`` and ``m`` is
  even, adjacent subquantizer codes are *pair-fused* into one byte
  (high nibble = even subspace, low nibble = odd subspace) — the 4-bit
  Quick-ADC trick — halving both the stored bytes and the gathers.
* :func:`quantize_tables` quantizes a *stack* of per-cell ADC tables
  jointly (one shared scale/offset), so accumulated sums stay
  comparable across IVF cells; paired codes get a fused 256-entry LUT
  per subquantizer pair (``fused[b] = q[2p, b >> 4] + q[2p+1, b & 15]``).
* :func:`fastscan_accumulate` is the scan kernel: per subquantizer row
  one contiguous vectorized ``take`` over the block sequence, summed
  into a uint16 accumulator (the 32-lane block dimension is the SIMD
  register tile; numpy gathers a whole row of blocks per call).

Quantized sums carry bounded LUT error, so searchers follow the scan
with an **exact-rerank tail**: the top candidates by blocked sum are
re-scored against the float tables before the final top-k is cut
(:meth:`IvfAdc.search` with ``layout="blocked"``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..index._kernels import topk_indices
from .pq import ProductQuantizer


@dataclass
class QuantizedTable:
    """An ADC table quantized to uint8 with an affine inverse transform."""

    table: np.ndarray  # (m, ks) uint8
    scale: float
    offset: float

    def dequantize(self, accumulated: np.ndarray, m: int) -> np.ndarray:
        """Map uint accumulator sums back to approximate squared distances."""
        return accumulated.astype(np.float64) * self.scale + m * self.offset


def quantize_table(table: np.ndarray) -> QuantizedTable:
    """Quantize an (m, ks) float ADC table to uint8 per Quicker-ADC.

    Entries are affinely mapped so the global min maps to 0 and the global
    max to 255; sums of m entries then fit comfortably in uint16 for
    m <= 257.
    """
    lo = float(table.min())
    hi = float(table.max())
    scale = (hi - lo) / 255.0
    # Degenerate span: a constant table quantizes to all-zero codes with
    # scale 0, so dequantize round-trips to exactly ``m * lo``.  The
    # ``scale == 0`` test also catches a *subnormal* span whose division
    # by 255 underflows — dividing by it would emit inf and make the
    # uint8 cast undefined.
    if scale == 0.0 or not np.isfinite(scale):
        return QuantizedTable(np.zeros_like(table, dtype=np.uint8), 0.0, lo)
    q = np.rint((table - lo) / scale).astype(np.uint8, copy=False)
    return QuantizedTable(q, scale, lo)


def table_quantization_error(table: np.ndarray) -> float:
    """Worst-case per-entry error introduced by uint8 table quantization."""
    span = float(table.max() - table.min())
    return span / 255.0 / 2.0


def naive_adc_scan(table: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """Scalar-gather baseline: per-vector, per-subspace table lookups.

    Intentionally row-at-a-time (as compiled scalar code would be) so the
    blocked variant's advantage is observable.
    """
    codes = np.atleast_2d(codes)
    n, m = codes.shape
    out = np.empty(n, dtype=np.float64)
    for i in range(n):
        acc = 0.0
        row = codes[i]
        for sub in range(m):
            acc += table[sub, row[sub]]
        out[i] = acc
    return out


def blocked_adc_scan(
    table: np.ndarray, codes_transposed: np.ndarray, exact: bool = False
) -> np.ndarray:
    """Blocked scan over a transposed (m, n) code layout.

    With ``exact=False`` (the Quick-ADC mode) the table is quantized to
    uint8 and accumulated in uint16; with ``exact=True`` the float table
    is used with the same blocked access pattern (pure layout win).
    """
    m, n = codes_transposed.shape
    if exact:
        acc = np.zeros(n, dtype=np.float64)
        for sub in range(m):
            acc += table[sub][codes_transposed[sub]]
        return acc
    qt = quantize_table(table)
    acc = np.zeros(n, dtype=np.uint32)
    for sub in range(m):
        acc += qt.table[sub][codes_transposed[sub]]
    return qt.dequantize(acc, m)


def transpose_codes(codes: np.ndarray) -> np.ndarray:
    """Re-layout (n, m) codes to the contiguous (m, n) scan order."""
    return np.ascontiguousarray(np.atleast_2d(codes).T)


# ------------------------------------------------------------------ blocked

#: SIMD register tile width the block layout is shaped around: 32 uint8
#: lanes per 256-bit register.
FASTSCAN_BLOCK = 32


@dataclass
class BlockedCodes:
    """Transposed, register-blocked (optionally 4-bit pair-fused) codes.

    ``packed`` is the (m_eff, n) uint8 scan layout: row ``p`` holds the
    codes every candidate contributes to subquantizer (pair) ``p``,
    laid out as a contiguous sequence of :data:`FASTSCAN_BLOCK`-wide
    blocks (see :meth:`blocks`).  With ``paired=True`` each byte fuses
    two 4-bit codes: ``(codes[:, 2p] << 4) | codes[:, 2p + 1]``.
    """

    packed: np.ndarray  # (m_eff, n) uint8, C-contiguous
    n: int
    m: int
    ks: int
    paired: bool

    @property
    def m_eff(self) -> int:
        return self.packed.shape[0]

    @property
    def lut_size(self) -> int:
        """Entries per scan LUT: 256 for fused pairs, ks otherwise."""
        return 256 if self.paired else self.ks

    def blocks(self) -> np.ndarray:
        """The (m_eff, n_blocks, FASTSCAN_BLOCK) register-tile view.

        The tail block is zero-padded; scans over ``packed`` process the
        same byte sequence block-contiguously.
        """
        pad = (-self.n) % FASTSCAN_BLOCK
        rows = self.packed
        if pad:
            rows = np.concatenate(
                [rows, np.zeros((rows.shape[0], pad), dtype=np.uint8)], axis=1
            )
        return rows.reshape(rows.shape[0], -1, FASTSCAN_BLOCK)


def pack_codes_blocked(codes: np.ndarray, ks: int) -> BlockedCodes:
    """Pack (n, m) uint8 codes into the blocked transposed scan layout.

    Pair-fusion (4-bit mode) engages when every code fits a nibble
    (``ks <= 16``) and ``m`` is even; otherwise the layout is the plain
    transposed one with one row per subquantizer.
    """
    codes = np.atleast_2d(np.asarray(codes, dtype=np.uint8))
    n, m = codes.shape
    paired = ks <= 16 and m % 2 == 0
    if paired:
        fused = (codes[:, 0::2] << 4) | codes[:, 1::2]
        packed = np.ascontiguousarray(fused.T)
    else:
        packed = np.ascontiguousarray(codes.T)
    return BlockedCodes(packed=packed, n=n, m=m, ks=ks, paired=paired)


def concat_blocked(parts: list[BlockedCodes]) -> BlockedCodes:
    """Concatenate blocked code sets along the candidate axis."""
    if not parts:
        raise ValueError("concat_blocked needs at least one part")
    head = parts[0]
    # np.concatenate of C-contiguous rows is already C-contiguous.
    return BlockedCodes(
        packed=np.concatenate([p.packed for p in parts], axis=1),
        n=sum(p.n for p in parts),
        m=head.m,
        ks=head.ks,
        paired=head.paired,
    )


@dataclass
class QuantizedLuts:
    """A jointly-quantized stack of scan LUTs with the affine inverse.

    ``luts`` is (m_eff, c, lut_size) uint16 in *scan order*: row ``p``
    holds the ``c`` cell LUTs for subquantizer (pair) ``p``
    back-to-back, so the kernel's per-row gather serves every probed
    cell without a transpose.  All cells share one scale/offset so
    blocked sums from different cells stay comparable; ``dequantize``
    maps a uint accumulator back to approximate squared distances.
    Accumulator *order* already equals distance order — the affine map
    is monotone (scale >= 0) — so rank-only consumers (the rerank tail)
    can skip dequantization.
    """

    luts: np.ndarray  # (m_eff, c, lut_size) uint16, C-contiguous
    scale: float
    offset: float
    m: int

    @property
    def lut_size(self) -> int:
        return self.luts.shape[2]

    def dequantize(self, accumulated: np.ndarray) -> np.ndarray:
        return accumulated.astype(np.float64) * self.scale + self.m * self.offset


def quantize_tables(tables: np.ndarray, paired: bool) -> QuantizedLuts:
    """Jointly quantize a (c, m, ks) stack of float ADC tables.

    One affine map covers the whole stack (per-cell scales would make
    sums incomparable across IVF cells).  With ``paired=True`` the
    uint8 entries of each subquantizer pair are pre-summed into a fused
    256-entry LUT indexed by the fused byte, so the scan does one
    gather per *pair*.
    """
    tables = np.asarray(tables, dtype=np.float64)
    if tables.ndim == 2:
        tables = tables[None, :, :]
    c, m, ks = tables.shape
    lo = float(tables.min())
    hi = float(tables.max())
    scale = (hi - lo) / 255.0
    if scale == 0.0 or not np.isfinite(scale):
        q = np.zeros((c, m, ks), dtype=np.uint8)
        scale = 0.0
    else:
        q = np.rint((tables - lo) / scale).astype(np.uint8, copy=False)
    if paired:
        if m % 2 != 0 or ks > 16:
            raise ValueError("paired LUTs need even m and ks <= 16")
        # Built directly in (pair, cell, entry) scan order.  The ufunc
        # output of the broadcast add follows its inputs' (transposed)
        # iteration order, so force the scan-order layout explicitly —
        # the kernel's per-row take assumes contiguous rows.
        fused = q.transpose(1, 0, 2)[0::2, :, :, None].astype(
            np.uint16, copy=False
        ) + q.transpose(
            1, 0, 2
        )[1::2, :, None, :]
        luts = np.ascontiguousarray(fused.reshape(m // 2, c, ks * ks))
        if ks < 16:
            # Fused bytes index as (code_hi << 4) | code_lo, so the LUT
            # must span the full 16x16 nibble grid even when ks < 16.
            full = np.zeros((m // 2, c, 256), dtype=np.uint16)
            grid = (np.arange(ks)[:, None] * 16 + np.arange(ks)[None, :]).ravel()
            full[:, :, grid] = luts
            luts = full
    else:
        luts = np.ascontiguousarray(
            q.transpose(1, 0, 2).astype(np.uint16, copy=False)
        )
    return QuantizedLuts(luts=luts, scale=scale, offset=lo, m=m)


def gather_packed_cells(
    cell_packed: list[BlockedCodes], cells: np.ndarray
) -> BlockedCodes:
    """Concatenate the blocked layouts of the probed cells, in probe order.

    This is the blessed producer of the ``packed`` argument to
    :func:`fastscan_accumulate` for multi-cell scans; candidate ``j``'s
    LUT slot is the probe position of its cell.
    """
    return concat_blocked([cell_packed[int(cell)] for cell in cells])


def fastscan_accumulate(
    luts: np.ndarray,
    packed: np.ndarray,
    slot_offsets: np.ndarray | None = None,
) -> np.ndarray:
    """Blocked LUT accumulation: one contiguous ``take`` per packed row.

    Parameters
    ----------
    luts:
        (m_eff, c, lut_size) uint16 scan-order stack from
        :func:`quantize_tables`.
    packed:
        (m_eff, n) uint8 scan layout from :func:`pack_codes_blocked` /
        :func:`gather_packed_cells` — the flattened block sequence.
    slot_offsets:
        Optional (n,) LUT-slot offsets, ``cell_slot * lut_size`` per
        candidate, for scans whose candidates span multiple cells
        (IVFADC probes).  ``None`` means every candidate uses slot 0.

    Returns the (n,) uint16 accumulator (uint32 when ``m * 255`` could
    overflow 16 bits).  Map back to distances with
    :meth:`QuantizedLuts.dequantize`.
    """
    m_eff, c, lut_size = luts.shape
    n = packed.shape[1]
    # Row p already holds the c cell LUTs for pair p back-to-back, so
    # one take per row serves every probed cell.
    flat = luts.reshape(m_eff, c * lut_size)
    # Each fused entry is <= 510 and there are m_eff = m/2 of them (or
    # <= 255 entries m times): the accumulator bound is m * 255 either way.
    acc_dtype = np.uint16 if 255 * max(1, packed.shape[0]) * 2 <= 65535 else np.uint32
    acc = np.zeros(n, dtype=acc_dtype)
    if slot_offsets is None:
        for p in range(m_eff):
            np.add(acc, flat[p].take(packed[p]), out=acc, casting="unsafe")
    else:
        # uint8 + int32 broadcasts straight to an int32 result: one
        # temporary, and no mutate-after-astype aliasing hazard.
        idx = packed + slot_offsets.astype(np.int32, copy=False)[None, :]
        for p in range(m_eff):
            np.add(acc, flat[p].take(idx[p]), out=acc, casting="unsafe")
    return acc


class FastScanPQ:
    """A PQ wrapper that stores codes pre-transposed for blocked scans.

    Quantized scans (``exact=False``) run through the register-blocked
    layout — pair-fused when the codebook fits nibbles — while exact
    scans keep the float-table transposed path.
    """

    def __init__(self, pq: ProductQuantizer):
        self.pq = pq
        self._codes_t: np.ndarray | None = None
        self._blocked: BlockedCodes | None = None
        self._ids: np.ndarray | None = None

    def add(self, ids: np.ndarray, vectors: np.ndarray) -> None:
        codes = self.pq.encode(vectors)
        codes_t = transpose_codes(codes)
        blocked = pack_codes_blocked(codes, self.pq.ks)
        ids = np.asarray(ids, dtype=np.int64)
        if self._codes_t is None:
            self._codes_t = codes_t
            self._blocked = blocked
            self._ids = ids
        else:
            self._codes_t = np.concatenate([self._codes_t, codes_t], axis=1)
            self._blocked = concat_blocked([self._blocked, blocked])
            self._ids = np.concatenate([self._ids, ids])

    def search(
        self, query: np.ndarray, k: int, exact: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-k via a blocked ADC scan over all stored codes."""
        if self._codes_t is None or self._codes_t.shape[1] == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        table = self.pq.adc_table(query)
        if exact:
            dists = blocked_adc_scan(table, self._codes_t, exact=True)
        else:
            qluts = quantize_tables(table, paired=self._blocked.paired)
            dists = qluts.dequantize(
                fastscan_accumulate(qluts.luts, self._blocked.packed)
            )
        order = topk_indices(dists, min(k, dists.shape[0]))
        return self._ids[order], dists[order]

    def __len__(self) -> int:
        return 0 if self._codes_t is None else self._codes_t.shape[1]
