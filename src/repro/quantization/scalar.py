"""Scalar quantization (SQ) — per-dimension bit compression (§2.2).

The SQ index of Faiss maps each float dimension onto a small integer code
using a learned per-dimension [min, max] range.  We implement the common
SQ8 (uint8) plus arbitrary bit widths, with exact reconstruction bounds
and an asymmetric distance computation that compares a float query
against codes without decompressing the whole collection.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import IndexNotBuiltError
from ..core.types import VECTOR_DTYPE


class ScalarQuantizer:
    """Uniform per-dimension scalar quantizer.

    Parameters
    ----------
    bits:
        Code width per dimension (1..16).  8 gives the classic SQ8 with a
        4x compression over float32.
    """

    def __init__(self, bits: int = 8):
        if not 1 <= bits <= 16:
            raise ValueError("bits must be in [1, 16]")
        self.bits = bits
        self.levels = (1 << bits) - 1
        self._lo: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    @property
    def is_trained(self) -> bool:
        return self._lo is not None

    def _require_trained(self) -> None:
        if not self.is_trained:
            raise IndexNotBuiltError("ScalarQuantizer.train() has not been called")

    def train(self, data: np.ndarray) -> "ScalarQuantizer":
        """Learn per-dimension [min, max] ranges from training data."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError("training data must be a non-empty 2-D matrix")
        lo = data.min(axis=0)
        hi = data.max(axis=0)
        span = hi - lo
        span[span == 0] = 1.0  # constant dims encode to 0 and decode exactly
        self._lo = lo
        self._scale = span / self.levels
        return self

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Quantize rows to integer codes (clipped to the trained range)."""
        self._require_trained()
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        q = np.rint((vectors - self._lo) / self._scale)
        dtype = np.uint8 if self.bits <= 8 else np.uint16
        return np.clip(q, 0, self.levels).astype(dtype)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate float vectors from codes."""
        self._require_trained()
        codes = np.atleast_2d(codes)
        return (codes.astype(np.float64) * self._scale + self._lo).astype(
            VECTOR_DTYPE, copy=False
        )

    def squared_distances(self, query: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Asymmetric squared L2 between a float query and coded vectors."""
        decoded = self.decode(codes).astype(np.float64)
        diff = decoded - np.asarray(query, dtype=np.float64)
        return np.einsum("ij,ij->i", diff, diff)

    def max_reconstruction_error(self) -> np.ndarray:
        """Per-dimension worst-case |x - decode(encode(x))| inside the range."""
        self._require_trained()
        return self._scale / 2.0

    def compression_ratio(self) -> float:
        """float32 bits over code bits per dimension."""
        return 32.0 / self.bits
