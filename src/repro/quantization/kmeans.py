"""Lloyd's k-means (from scratch), the workhorse of quantization (§2.2).

IVF coarse quantizers, product-quantization codebooks, SPANN's learned
bucketing, and centroid-code quantizers [42, 56] all reduce to k-means.
This implementation uses k-means++ seeding, vectorized assignment, empty-
cluster repair, and early stopping on centroid movement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class KMeansResult:
    """Fitted centroids plus training diagnostics."""

    centroids: np.ndarray  # (k, d)
    assignments: np.ndarray  # (n,) cluster index of each training row
    inertia: float  # sum of squared distances to assigned centroids
    iterations: int


def _squared_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """(n, k) squared L2 distances, computed via the expansion identity."""
    p_sq = np.einsum("ij,ij->i", points, points)[:, None]
    c_sq = np.einsum("ij,ij->i", centroids, centroids)[None, :]
    cross = points @ centroids.T
    return np.clip(p_sq + c_sq - 2.0 * cross, 0.0, None)


def kmeans_pp_init(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = data.shape[0]
    centroids = np.empty((k, data.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = data[first]
    closest_sq = _squared_distances(data, centroids[:1]).ravel()
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All points coincide with chosen centroids; fill randomly.
            centroids[i] = data[int(rng.integers(n))]
            continue
        probs = closest_sq / total
        choice = int(rng.choice(n, p=probs))
        centroids[i] = data[choice]
        new_sq = _squared_distances(data, centroids[i : i + 1]).ravel()
        np.minimum(closest_sq, new_sq, out=closest_sq)
    return centroids


def kmeans(
    data: np.ndarray,
    k: int,
    max_iterations: int = 25,
    tolerance: float = 1e-4,
    seed: int | None = 0,
) -> KMeansResult:
    """Fit k centroids to ``data`` with Lloyd's algorithm.

    Raises ``ValueError`` if ``k`` exceeds the number of points.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("data must be a 2-D matrix")
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = np.random.default_rng(seed)

    centroids = kmeans_pp_init(data, k, rng)
    assignments = np.zeros(n, dtype=np.int64)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        sq = _squared_distances(data, centroids)
        assignments = sq.argmin(axis=1)
        new_centroids = np.empty_like(centroids)
        counts = np.bincount(assignments, minlength=k)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assignments, data)
        nonempty = counts > 0
        new_centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
        # Empty-cluster repair: reseed from the farthest points.
        empties = np.flatnonzero(~nonempty)
        if empties.size:
            farthest = np.argsort(sq[np.arange(n), assignments])[::-1]
            for slot, point in zip(empties, farthest):
                new_centroids[slot] = data[point]
        shift = float(np.linalg.norm(new_centroids - centroids, axis=1).max())
        centroids = new_centroids
        if shift < tolerance:
            break

    sq = _squared_distances(data, centroids)
    assignments = sq.argmin(axis=1)
    inertia = float(sq[np.arange(n), assignments].sum())
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        inertia=inertia,
        iterations=iterations,
    )


def assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid index for each point."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    return _squared_distances(points, np.asarray(centroids, dtype=np.float64)).argmin(
        axis=1
    )


def assign_topn(points: np.ndarray, centroids: np.ndarray, n: int) -> np.ndarray:
    """Indices of the n nearest centroids per point (for multi-probe/closure)."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    sq = _squared_distances(points, np.asarray(centroids, dtype=np.float64))
    n = min(n, sq.shape[1])
    part = np.argpartition(sq, n - 1, axis=1)[:, :n]
    rows = np.arange(sq.shape[0])[:, None]
    order = np.argsort(sq[rows, part], axis=1)
    return part[rows, order]
