"""Baseline-relative anomaly detection with journey attribution.

The VDBMS failure mode this layer targets is the *creeping* degradation:
nothing crashes, no SLO burns yet, but a mid-run change (a disabled plan
cache, a doctored index parameter, a cold result cache) bends some
series away from its own recent past.  Detection is therefore
**baseline-relative**: each detector compares the newest closed
:class:`~repro.observability.timeseries.TimeWindow` against a merged
baseline of recent *healthy* windows (windows during which nothing
fired), and only after a warmup of healthy windows exists — so a steady
workload can never alarm on its own prefix.

Detection alone names a symptom; **attribution** names a cause.  When a
detector fires, the monitor walks the window's recorded
:class:`~repro.observability.journey.Journey` records (reachable from
latency exemplars) and names:

* the **phase** — the journey phase whose per-request mean grew most
  against the baseline (detectors with an intrinsic phase, e.g.
  plan-cache collapse → ``planning``, pin it directly), and
* the **tenant** — the tenant whose journeys dominate that phase's time
  in the offending window,

plus exemplar trace ids, so the report's one-liner is one hop from full
journeys.  Results surface through ``Database.health()`` and the
``python -m repro.observability report`` dashboard.

Determinism: detectors are pure functions of windows and journeys; the
monitor holds no RNG and never reads a clock.  Identical runs produce
identical anomaly lists.
"""

from __future__ import annotations

import math
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from .journey import JourneyLog
from .metrics import NOOP_METRICS
from .timeseries import TimeSeriesStore, TimeWindow

__all__ = [
    "Anomaly",
    "AnomalyMonitor",
    "CacheHitRatioDetector",
    "Detector",
    "P99InflationDetector",
    "PlanCacheCollapseDetector",
    "QueueWaitGrowthDetector",
    "RecallDriftDetector",
    "default_detectors",
]


@dataclass
class Anomaly:
    """One detector firing, attributed to a phase and tenant."""

    detector: str
    window_start: float
    window_end: float
    value: float
    baseline: float
    detail: str
    phase: str | None = None
    tenant: str | None = None
    trace_ids: tuple[int, ...] = ()
    phase_growth: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "detector": self.detector,
            "window_start": self.window_start,
            "window_end": self.window_end,
            "value": self.value,
            "baseline": self.baseline,
            "detail": self.detail,
            "phase": self.phase,
            "tenant": self.tenant,
            "trace_ids": list(self.trace_ids),
            "phase_growth": dict(self.phase_growth),
        }

    def render(self) -> str:
        who = self.tenant if self.tenant is not None else "?"
        where = self.phase if self.phase is not None else "?"
        refs = ",".join(str(t) for t in self.trace_ids) or "-"
        return (
            f"[{self.window_start:g}s..{self.window_end:g}s] {self.detector}:"
            f" {self.detail} -> phase={where} tenant={who} traces={refs}"
        )

    def __repr__(self) -> str:
        return f"Anomaly({self.render()})"


class Detector:
    """Base detector: compare the newest window against a healthy baseline.

    ``check`` returns zero or more raw firings as dicts with keys
    ``value``, ``baseline``, ``detail`` and optionally ``tenant``; the
    monitor turns each into an attributed :class:`Anomaly`.  A subclass
    may pin ``fixed_phase`` when the symptom implies the phase (e.g. a
    plan-cache collapse *is* a planning problem); otherwise the phase is
    inferred from journey growth.
    """

    name = "detector"
    fixed_phase: str | None = None

    def check(
        self, window: TimeWindow, baseline: TimeWindow
    ) -> list[dict[str, Any]]:
        raise NotImplementedError


class P99InflationDetector(Detector):
    """Tail-latency inflation per tenant, from windowed latency sketches.

    Fires when a tenant's window p-``q`` is at least ``factor`` times the
    baseline's *and* grew by at least ``min_inflation_seconds`` (the
    absolute floor keeps microsecond-scale jitter from alarming).
    """

    name = "p99_inflation"

    def __init__(
        self,
        prefix: str = "latency:",
        q: float = 0.99,
        factor: float = 2.0,
        min_inflation_seconds: float = 1e-3,
        min_count: int = 8,
    ):
        self.prefix = prefix
        self.q = q
        self.factor = factor
        self.min_inflation_seconds = min_inflation_seconds
        self.min_count = min_count

    def check(self, window, baseline):
        firings = []
        for name in sorted(window.sketches):
            if not name.startswith(self.prefix):
                continue
            current = window.sketches[name]
            base = baseline.sketches.get(name)
            if base is None or base.count < self.min_count:
                continue
            if current.count < self.min_count:
                continue
            cur_q = current.quantile(self.q)
            base_q = base.quantile(self.q)
            if math.isnan(cur_q) or math.isnan(base_q):
                continue
            if (
                cur_q >= self.factor * base_q
                and cur_q - base_q >= self.min_inflation_seconds
            ):
                firings.append(
                    {
                        "tenant": name[len(self.prefix):],
                        "value": cur_q,
                        "baseline": base_q,
                        "detail": (
                            f"p{self.q * 100:g} {cur_q * 1e3:.2f}ms vs"
                            f" baseline {base_q * 1e3:.2f}ms"
                        ),
                    }
                )
        return firings


class QueueWaitGrowthDetector(Detector):
    """Queue-wait growth per tenant (admission backlog building up)."""

    name = "queue_wait_growth"
    fixed_phase = "admission_wait"

    def __init__(
        self,
        prefix: str = "queue_wait:",
        q: float = 0.9,
        factor: float = 3.0,
        min_seconds: float = 5e-3,
        min_count: int = 8,
    ):
        self.prefix = prefix
        self.q = q
        self.factor = factor
        self.min_seconds = min_seconds
        self.min_count = min_count

    def check(self, window, baseline):
        firings = []
        for name in sorted(window.sketches):
            if not name.startswith(self.prefix):
                continue
            current = window.sketches[name]
            base = baseline.sketches.get(name)
            if base is None or base.count < self.min_count:
                continue
            if current.count < self.min_count:
                continue
            cur_q = current.quantile(self.q)
            base_q = base.quantile(self.q)
            if math.isnan(cur_q) or math.isnan(base_q):
                continue
            if cur_q >= self.min_seconds and cur_q >= self.factor * max(
                base_q, 1e-9
            ):
                firings.append(
                    {
                        "tenant": name[len(self.prefix):],
                        "value": cur_q,
                        "baseline": base_q,
                        "detail": (
                            f"queue p{self.q * 100:g} {cur_q * 1e3:.2f}ms vs"
                            f" baseline {base_q * 1e3:.2f}ms"
                        ),
                    }
                )
        return firings


class RecallDriftDetector(Detector):
    """Windowed mean audited recall dropping below its own baseline.

    Consumes the ``vdbms_audit_recall`` histogram series the
    :class:`~repro.observability.quality.RecallAuditor` maintains: the
    window's mean recall is ``Δsum / Δcount`` — no new instrumentation,
    just the longitudinal view of it.
    """

    name = "recall_drift"
    fixed_phase = "index_scan"

    def __init__(self, drop: float = 0.05, min_audits: int = 5):
        self.drop = drop
        self.min_audits = min_audits

    def check(self, window, baseline):
        base_n = baseline.counter_total("vdbms_audit_recall_count")
        cur_n = window.counter_total("vdbms_audit_recall_count")
        if base_n < self.min_audits or cur_n < self.min_audits:
            return []
        base_recall = baseline.counter_total("vdbms_audit_recall_sum") / base_n
        cur_recall = window.counter_total("vdbms_audit_recall_sum") / cur_n
        if cur_recall <= base_recall - self.drop:
            return [
                {
                    "value": cur_recall,
                    "baseline": base_recall,
                    "detail": (
                        f"audited recall {cur_recall:.3f} vs baseline"
                        f" {base_recall:.3f} ({int(cur_n)} audits)"
                    ),
                }
            ]
        return []


class PlanCacheCollapseDetector(Detector):
    """Plan-cache hit ratio collapsing (including the cache disappearing).

    A disabled plan cache emits *no* probe counters at all, so the ratio
    cannot be read off hits/misses alone; the tell is planning activity
    (``vdbms_plans_selected_total``) continuing while probes stop.  That
    case is treated as ratio 0.0 — the cache answered nothing.
    """

    name = "plan_cache_collapse"
    fixed_phase = "planning"

    def __init__(self, drop: float = 0.4, min_probes: int = 5):
        self.drop = drop
        self.min_probes = min_probes

    def check(self, window, baseline):
        base_hits = baseline.counter_total("vdbms_plan_cache_hits_total")
        base_misses = baseline.counter_total("vdbms_plan_cache_misses_total")
        base_probes = base_hits + base_misses
        if base_probes < self.min_probes:
            return []
        base_ratio = base_hits / base_probes
        hits = window.counter_total("vdbms_plan_cache_hits_total")
        misses = window.counter_total("vdbms_plan_cache_misses_total")
        probes = hits + misses
        selected = window.counter_total("vdbms_plans_selected_total")
        if probes > 0:
            ratio = hits / probes
            how = f"hit ratio {ratio:.2f} over {int(probes)} probes"
        elif selected > 0:
            ratio = 0.0
            how = (
                f"{int(selected)} plans selected with zero cache probes"
                " (cache disabled or bypassed)"
            )
        else:
            return []
        if base_ratio - ratio >= self.drop:
            return [
                {
                    "value": ratio,
                    "baseline": base_ratio,
                    "detail": f"{how}; baseline ratio {base_ratio:.2f}",
                }
            ]
        return []


class CacheHitRatioDetector(Detector):
    """Per-tenant result-cache hit ratio collapsing against baseline."""

    name = "result_cache_collapse"
    fixed_phase = "cache_lookup"

    def __init__(self, drop: float = 0.4, min_probes: int = 10):
        self.drop = drop
        self.min_probes = min_probes

    def check(self, window, baseline):
        hits_name = "vdbms_serving_cache_hits_total"
        misses_name = "vdbms_serving_cache_misses_total"
        firings = []
        tenants = set(baseline.label_values(hits_name, "tenant")) | set(
            baseline.label_values(misses_name, "tenant")
        )
        for tenant in sorted(tenants):
            base_hits = baseline.counter_total(hits_name, tenant=tenant)
            base_probes = base_hits + baseline.counter_total(
                misses_name, tenant=tenant
            )
            if base_probes < self.min_probes:
                continue
            base_ratio = base_hits / base_probes
            hits = window.counter_total(hits_name, tenant=tenant)
            probes = hits + window.counter_total(misses_name, tenant=tenant)
            if probes < self.min_probes:
                continue
            ratio = hits / probes
            if base_ratio - ratio >= self.drop:
                firings.append(
                    {
                        "tenant": tenant,
                        "value": ratio,
                        "baseline": base_ratio,
                        "detail": (
                            f"cache hit ratio {ratio:.2f} vs baseline"
                            f" {base_ratio:.2f} ({int(probes)} probes)"
                        ),
                    }
                )
        return firings


def default_detectors() -> list[Detector]:
    """The standard serving-tier detector set."""
    return [
        P99InflationDetector(),
        QueueWaitGrowthDetector(),
        RecallDriftDetector(),
        PlanCacheCollapseDetector(),
        CacheHitRatioDetector(),
    ]


class AnomalyMonitor:
    """Feeds closed windows to detectors; attributes firings via journeys.

    Parameters
    ----------
    store:
        The :class:`TimeSeriesStore` producing windows.
    journeys:
        The :class:`JourneyLog` attribution walks (optional — without it
        anomalies carry symptom but no phase/tenant inference beyond
        what the detector itself pins).
    detectors:
        Detector instances; defaults to :func:`default_detectors`.
    baseline_windows:
        How many recent *healthy* windows form the merged baseline.
    warmup_windows:
        Healthy windows required before any detector may fire — the
        zero-false-positive guard for a run's opening prefix.
    metrics:
        Registry for the ``vdbms_anomalies_total`` counter (defaults to
        the no-op registry, so callers never branch).
    exemplar_fn:
        Optional ``(tenant) -> trace_id | None`` hook the front door
        wires to its latency histogram's p99 exemplar.
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        journeys: JourneyLog | None = None,
        detectors: Sequence[Detector] | None = None,
        baseline_windows: int = 8,
        warmup_windows: int = 3,
        metrics: Any = NOOP_METRICS,
        exemplar_fn: Callable[[str | None], int | None] | None = None,
    ):
        if warmup_windows < 1:
            raise ValueError("warmup_windows must be >= 1")
        self.store = store
        self.journeys = journeys
        self.detectors = (
            list(detectors) if detectors is not None else default_detectors()
        )
        self.baseline_windows = baseline_windows
        self.warmup_windows = warmup_windows
        self.anomaly_counter = metrics.counter(
            "vdbms_anomalies_total", "Anomaly detector firings by detector."
        )
        self.exemplar_fn = exemplar_fn
        self.anomalies: list[Anomaly] = []
        self.windows_seen = 0
        self._healthy: deque[TimeWindow] = deque(maxlen=baseline_windows)

    # ------------------------------------------------------------- processing

    def tick(self, now: float) -> list[Anomaly]:
        """Advance the store to ``now`` and evaluate each closed window."""
        fired: list[Anomaly] = []
        for window in self.store.advance(now):
            fired.extend(self.observe_window(window))
        return fired

    def observe_window(self, window: TimeWindow) -> list[Anomaly]:
        """Evaluate one closed window; returns the anomalies it raised."""
        self.windows_seen += 1
        fired: list[Anomaly] = []
        if len(self._healthy) >= self.warmup_windows:
            baseline = TimeWindow.merge(list(self._healthy))
            for detector in self.detectors:
                for raw in detector.check(window, baseline):
                    fired.append(
                        self._attribute(detector, window, baseline, raw)
                    )
        if fired:
            self.anomalies.extend(fired)
            for anomaly in fired:
                self.anomaly_counter.inc(detector=anomaly.detector)
        else:
            # Only quiet windows join the baseline: a degraded window must
            # not normalize the degradation it carries.
            self._healthy.append(window)
        return fired

    # ------------------------------------------------------------ attribution

    def _window_journeys(self, window: TimeWindow) -> list:
        if self.journeys is None:
            return []
        return self.journeys.between(window.start, window.end)

    def _attribute(
        self,
        detector: Detector,
        window: TimeWindow,
        baseline: TimeWindow,
        raw: dict[str, Any],
    ) -> Anomaly:
        tenant = raw.get("tenant")
        current = self._window_journeys(window)
        past = self._window_journeys(baseline)
        scoped_current = [
            j for j in current if tenant is None or j.tenant == tenant
        ]
        scoped_past = [j for j in past if tenant is None or j.tenant == tenant]
        current_means = JourneyLog.phase_means(scoped_current)
        past_means = JourneyLog.phase_means(scoped_past)
        growth = {
            phase: current_means.get(phase, 0.0) - past_means.get(phase, 0.0)
            for phase in set(current_means) | set(past_means)
        }
        phase = detector.fixed_phase
        if phase is None and growth:
            phase = max(growth, key=lambda p: (growth[p], p))
        if tenant is None and phase is not None and current:
            by_tenant: dict[str, float] = defaultdict(float)
            for journey in current:
                by_tenant[journey.tenant] += journey.phases.get(phase, 0.0)
            if any(by_tenant.values()):
                tenant = max(by_tenant, key=lambda t: (by_tenant[t], t))
        trace_ids: list[int] = []
        if self.exemplar_fn is not None:
            witness = self.exemplar_fn(tenant)
            if witness is not None:
                trace_ids.append(int(witness))
        pool = [j for j in current if tenant is None or j.tenant == tenant]
        for journey in JourneyLog.slowest(pool, 3):
            if journey.trace_id not in trace_ids:
                trace_ids.append(journey.trace_id)
        return Anomaly(
            detector=detector.name,
            window_start=window.start,
            window_end=window.end,
            value=raw["value"],
            baseline=raw["baseline"],
            detail=raw["detail"],
            phase=phase,
            tenant=tenant,
            trace_ids=tuple(trace_ids[:3]),
            phase_growth={p: g for p, g in sorted(growth.items()) if g != 0.0},
        )

    # ----------------------------------------------------------------- views

    def summary(self) -> list[dict[str, Any]]:
        """JSON-able anomaly list for :class:`HealthReport` embedding."""
        return [anomaly.to_dict() for anomaly in self.anomalies]

    def render(self) -> str:
        if not self.anomalies:
            return "(no anomalies)"
        return "\n".join(anomaly.render() for anomaly in self.anomalies)

    def __len__(self) -> int:
        return len(self.anomalies)
