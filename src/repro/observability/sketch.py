"""Streaming quantile sketches: the P² estimator, made mergeable.

Fixed-bucket histograms (:class:`~repro.observability.metrics.Histogram`)
answer "how many queries were faster than X" exactly, but their
*quantiles* are only as good as the bucket grid — at the tail (p99) the
error is the full width of whatever bucket the rank lands in, and any
observation past the largest finite bucket is clamped to it, so the
reported p99 can understate the true value without bound.

This module provides the complementary primitive: a constant-memory
streaming estimate of arbitrary quantiles with no grid to choose.

* :class:`P2Quantile` — the classic P² ("P-square") algorithm of Jain &
  Chlamtac (CACM 1985): five markers per tracked quantile, adjusted with
  a piecewise-parabolic interpolation on every observation.  O(1) time
  and memory per observation.
* :class:`QuantileSketch` — the production wrapper: a small exact buffer
  (default 512 samples) that answers quantiles by order-statistic
  interpolation while it lasts, spilling into one P² estimator per
  tracked quantile when it overflows.  Sketches are **mergeable**, which
  is what the distributed coordinator needs: per-shard sketches are
  folded into one cluster-level sketch at gather time.

Accuracy (the tolerances the tests pin):

* **Exact regime** (total observations fit the buffer): ``quantile(q)``
  is the standard linear interpolation between adjacent order
  statistics — identical to ``numpy.quantile(..., method="linear")`` —
  and merging is exact (buffers concatenate).
* **P² regime**: estimates always lie inside ``[min, max]`` of the
  observed data and are monotone in ``q``, but carry no worst-case
  guarantee; empirically the rank error is ~1–2% on smooth unimodal
  data.  The documented tolerance, asserted by the test-suite across
  k-shard merges on smooth workloads, is **rank error <= 0.05**: the
  estimate falls between the exact quantiles at ranks ``q ± 0.05`` of
  the concatenated sample.
* **Merging spilled sketches** reconstructs the donor's distribution
  from its piecewise-linear CDF (min, tracked quantiles, max) with up to
  ``merge_points`` synthetic samples, so a merge adds reconstruction
  error on top of P² error; the 0.05 rank tolerance above covers the
  combination.  ``count``/``min``/``max`` are always exact.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = [
    "DEFAULT_QUANTILES",
    "NOOP_SKETCH",
    "NoopSketch",
    "P2Quantile",
    "QuantileSketch",
    "SketchSnapshot",
]

#: The quantiles a sketch tracks by default (latency-report shaped).
DEFAULT_QUANTILES = (0.5, 0.9, 0.95, 0.99)


class P2Quantile:
    """Single-quantile P² estimator (Jain & Chlamtac, 1985).

    Keeps five markers whose heights approximate the min, the q/2, q and
    (1+q)/2 quantiles, and the max; marker heights are nudged toward
    their desired rank positions with a piecewise-parabolic (hence "P
    squared") formula, falling back to linear when the parabola would
    violate monotonicity.  The first five observations are stored
    verbatim, so estimates are exact until then.
    """

    __slots__ = ("q", "count", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        self.q = float(q)
        self.count = 0
        self._heights: list[float] = []  # first 5 raw values, then markers
        self._positions: list[float] | None = None
        self._desired: list[float] | None = None
        self._rates: tuple[float, ...] | None = None

    def observe(self, value: float) -> None:
        x = float(value)
        self.count += 1
        if self._positions is None:
            self._heights.append(x)
            if len(self._heights) == 5:
                self._heights.sort()
                q = self.q
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0,
                ]
                self._rates = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)
            return
        h, n, d = self._heights, self._positions, self._desired
        # Locate the cell [h[cell], h[cell+1]) containing x, extending
        # the extreme markers when x falls outside the observed range.
        if x < h[0]:
            h[0] = x
            cell = 0
        elif x >= h[4]:
            h[4] = x
            cell = 3
        else:
            cell = 0
            for i in range(1, 4):
                if x >= h[i]:
                    cell = i
        for i in range(cell + 1, 5):
            n[i] += 1.0
        for i in range(5):
            d[i] += self._rates[i]
        # Adjust the three interior markers toward their desired ranks.
        for i in range(1, 4):
            delta = d[i] - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                delta <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def estimate(self) -> float:
        """Current quantile estimate (exact while count < 5; NaN if empty)."""
        if self.count == 0:
            return math.nan
        if self._positions is None:
            return _interpolate_sorted(sorted(self._heights), self.q)
        return self._heights[2]

    def markers(self) -> list[tuple[float, float]]:
        """All five markers as ``(rank, value)`` pairs, rank in [0, 1].

        The outer markers track the running min/max and the interior
        ones approximate the q/2, q and (1+q)/2 order statistics, so a
        single estimator describes five points of the empirical CDF —
        :class:`QuantileSketch` pools the markers of every tracked
        estimator to interpolate untracked quantiles and to reconstruct
        donor samples during a merge.
        """
        if self.count == 0:
            return []
        if self._positions is None:
            ordered = sorted(self._heights)
            n = len(ordered)
            if n == 1:
                return [(0.0, ordered[0]), (1.0, ordered[0])]
            return [(i / (n - 1), v) for i, v in enumerate(ordered)]
        n = self.count
        return [
            ((pos - 1.0) / (n - 1), height)
            for pos, height in zip(self._positions, self._heights)
        ]

    def __repr__(self) -> str:
        return f"P2Quantile(q={self.q}, n={self.count}, est={self.estimate():g})"


def _inverse_cdf(
    weights: Sequence[float], values: Sequence[float], rank: float
) -> float:
    """Value at ``rank`` on a monotone (weight, value) piecewise CDF."""
    if rank <= weights[0]:
        return values[0]
    for i in range(1, len(weights)):
        if rank <= weights[i]:
            span = weights[i] - weights[i - 1]
            frac = 0.0 if span <= 0 else (rank - weights[i - 1]) / span
            return values[i - 1] * (1.0 - frac) + values[i] * frac
    return values[-1]


def _interpolate_sorted(ordered: Sequence[float], q: float) -> float:
    """numpy.quantile(method='linear') over an already-sorted sequence."""
    n = len(ordered)
    if n == 0:
        return math.nan
    if n == 1:
        return ordered[0]
    rank = q * (n - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, n - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class SketchSnapshot:
    """A frozen, read-only view of a sketch at one scrape instant.

    Taking a snapshot is a pure read — the live sketch is bit-identical
    afterwards (the regression test diffs its ``__dict__``).  The
    time-series scraper keeps the previous window's snapshot and asks
    the live sketch for :meth:`QuantileSketch.delta` against it to get a
    per-window distribution.
    """

    __slots__ = ("count", "min", "max", "spilled", "_buffer", "_cdf")

    def __init__(
        self,
        count: int,
        min_value: float,
        max_value: float,
        spilled: bool,
        buffer: tuple[float, ...] | None,
        cdf: tuple[tuple[float, ...], tuple[float, ...]] | None,
    ):
        self.count = count
        self.min = min_value
        self.max = max_value
        self.spilled = spilled
        self._buffer = buffer
        self._cdf = cdf

    def cdf_anchors(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """``(ranks, values)`` anchors of the empirical CDF, both regimes.

        Buffered snapshots report the exact order statistics (rank
        ``i/(n-1)``); spilled ones report the pooled P² marker cloud the
        sketch itself interpolates on.
        """
        if self._cdf is not None:
            return self._cdf
        ordered = sorted(self._buffer or ())
        n = len(ordered)
        if n == 0:
            return ((), ())
        if n == 1:
            return ((0.0, 1.0), (ordered[0], ordered[0]))
        return (tuple(i / (n - 1) for i in range(n)), tuple(ordered))

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        ranks, values = self.cdf_anchors()
        if not ranks:
            return math.nan
        for i in range(1, len(ranks)):
            if q <= ranks[i]:
                span = ranks[i] - ranks[i - 1]
                frac = 0.0 if span <= 0 else (q - ranks[i - 1]) / span
                return values[i - 1] * (1.0 - frac) + values[i] * frac
        return values[-1]

    def __repr__(self) -> str:
        regime = "p2" if self.spilled else "exact"
        return f"SketchSnapshot(n={self.count}, {regime})"


def _cdf_at(ranks: Sequence[float], values: Sequence[float], v: float) -> float:
    """F(v): fraction of mass at or below ``v`` on anchored CDF points."""
    if not ranks:
        return 0.0
    if v < values[0]:
        return 0.0
    if v >= values[-1]:
        return 1.0
    for i in range(1, len(values)):
        if v < values[i]:
            span = values[i] - values[i - 1]
            frac = 1.0 if span <= 0 else (v - values[i - 1]) / span
            return ranks[i - 1] + frac * (ranks[i] - ranks[i - 1])
    return 1.0


class QuantileSketch:
    """Mergeable streaming quantiles: exact buffer, then P² markers.

    Parameters
    ----------
    quantiles:
        The quantiles tracked exactly by one P² estimator each after the
        sketch spills; other ``q`` values are answered by interpolating
        between tracked estimates (anchored at min/max).
    buffer_size:
        Observations kept verbatim before spilling to P² markers.  While
        the buffer lasts, ``quantile`` is exact (linear interpolation
        between order statistics) and merging is lossless.
    merge_points:
        Maximum synthetic samples used to fold an already-spilled donor
        sketch into this one (inverse-CDF reconstruction).

    See the module docstring for the accuracy contract.
    """

    def __init__(
        self,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        buffer_size: int = 512,
        merge_points: int = 128,
    ):
        qs = tuple(sorted({float(q) for q in quantiles}))
        if not qs:
            raise ValueError("at least one tracked quantile is required")
        for q in qs:
            if not 0.0 < q < 1.0:
                raise ValueError(f"tracked quantiles must be in (0, 1), got {q}")
        if buffer_size < 8:
            raise ValueError("buffer_size must be >= 8")
        self.quantiles = qs
        self.buffer_size = buffer_size
        self.merge_points = merge_points
        self._buffer: list[float] | None = []
        self._estimators: dict[float, P2Quantile] | None = None
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------- recording

    @property
    def count(self) -> int:
        return self._count

    @property
    def min(self) -> float:
        return self._min if self._count else math.nan

    @property
    def max(self) -> float:
        return self._max if self._count else math.nan

    @property
    def spilled(self) -> bool:
        """True once the exact buffer has been folded into P² markers."""
        return self._buffer is None

    def observe(self, value: float) -> None:
        x = float(value)
        if math.isnan(x):
            raise ValueError("cannot observe NaN")
        self._count += 1
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x
        if self._buffer is not None:
            self._buffer.append(x)
            if len(self._buffer) > self.buffer_size:
                self._spill()
        else:
            for estimator in self._estimators.values():
                estimator.observe(x)

    def _spill(self) -> None:
        self._estimators = {q: P2Quantile(q) for q in self.quantiles}
        for x in self._buffer:
            for estimator in self._estimators.values():
                estimator.observe(x)
        self._buffer = None

    # --------------------------------------------------------------- queries

    def quantile(self, q: float) -> float:
        """Estimate the q-th quantile of everything observed (NaN if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self._count == 0:
            return math.nan
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        if self._buffer is not None:
            return _interpolate_sorted(sorted(self._buffer), q)
        # Interpolate on the anchored, monotone-enforced marker cloud.
        anchors_q, anchors_v = self._anchors()
        for i in range(1, len(anchors_q)):
            if q <= anchors_q[i]:
                span = anchors_q[i] - anchors_q[i - 1]
                frac = 0.0 if span <= 0 else (q - anchors_q[i - 1]) / span
                return anchors_v[i - 1] * (1.0 - frac) + anchors_v[i] * frac
        return anchors_v[-1]

    def _anchors(self) -> tuple[list[float], list[float]]:
        """(rank, value) anchor lists spanning [0, 1].

        Pools *every* marker of every tracked P² estimator — not just
        the central estimates — so the piecewise-linear CDF has anchors
        at ranks q/2, q and (1+q)/2 for each tracked q.  Without the
        half-rank markers the region below the lowest tracked quantile
        would be a single chord from min to p50, which badly biases
        merge reconstruction on skewed data.  Values are clamped to the
        exact observed range and forced monotone in rank.
        """
        pairs = sorted(
            pair
            for estimator in self._estimators.values()
            for pair in estimator.markers()
        )
        anchors_q = [0.0]
        anchors_v = [self._min]
        running = self._min
        for rank, value in pairs:
            value = min(max(value, self._min), self._max)
            running = max(running, value)
            if rank <= anchors_q[-1] + 1e-12:
                anchors_v[-1] = max(anchors_v[-1], running)
                continue
            anchors_q.append(min(rank, 1.0))
            anchors_v.append(running)
        if anchors_q[-1] < 1.0:
            anchors_q.append(1.0)
            anchors_v.append(self._max)
        else:
            anchors_v[-1] = max(anchors_v[-1], self._max)
        return anchors_q, anchors_v

    def quantiles_snapshot(self) -> dict[float, float]:
        """Current estimate for every tracked quantile."""
        return {q: self.quantile(q) for q in self.quantiles}

    # ------------------------------------------------------ windowed scraping

    def snapshot(self) -> SketchSnapshot:
        """Freeze the current state for later :meth:`delta` comparison.

        Pure read: copies the buffer (or materializes the marker-cloud
        CDF anchors) without mutating any live state.
        """
        if self._buffer is not None:
            return SketchSnapshot(
                self._count, self.min, self.max, False,
                tuple(self._buffer), None,
            )
        anchors_q, anchors_v = self._anchors()
        return SketchSnapshot(
            self._count, self._min, self._max, True,
            None, (tuple(anchors_q), tuple(anchors_v)),
        )

    def delta(self, prev: SketchSnapshot) -> "QuantileSketch":
        """The distribution of observations made since ``prev``.

        Returns a fresh sketch describing only the window ``(prev,
        now]``.  While this sketch is still buffering, the window is the
        exact buffer tail (the buffer is append-only until it spills).
        After a spill the window is reconstructed by **weighted CDF
        subtraction**: with N total and M previous observations, the
        window's CDF is ``W(v) = (N·F_now(v) − M·F_prev(v)) / (N − M)``
        evaluated on the union of both anchor grids, clamped monotone
        into [0, 1], then inverse-sampled into at most ``merge_points``
        synthetic observations.  The returned sketch's ``count`` is
        exact (N − M) even when its quantiles are synthetic; treat it as
        a read-only window summary, not a live accumulator.
        """
        out = QuantileSketch(self.quantiles, self.buffer_size, self.merge_points)
        n_new = self._count - prev.count
        if n_new < 0:
            raise ValueError(
                f"snapshot is newer than the sketch ({prev.count} > {self._count})"
            )
        if n_new == 0:
            return out
        if self._buffer is not None:
            for x in self._buffer[prev.count:]:
                out.observe(x)
            return out
        ranks_now, values_now = self.snapshot().cdf_anchors()
        ranks_prev, values_prev = prev.cdf_anchors()
        grid = sorted(set(values_now) | set(values_prev))
        n_total, m_prev = float(self._count), float(prev.count)
        weights: list[float] = []
        running = 0.0
        for v in grid:
            f_now = _cdf_at(ranks_now, values_now, v)
            f_prev = _cdf_at(ranks_prev, values_prev, v) if m_prev else 0.0
            w = (n_total * f_now - m_prev * f_prev) / (n_total - m_prev)
            running = max(running, min(max(w, 0.0), 1.0))
            weights.append(running)
        weights[-1] = 1.0
        k = max(8, min(self.merge_points, n_new))
        step = max(1, round(k * 0.618))
        while math.gcd(step, k) != 1:
            step += 1
        for j in range(k):
            out.observe(_inverse_cdf(weights, grid, ((j * step) % k + 0.5) / k))
        out._count = n_new  # window count stays exact; quantiles synthetic
        return out

    # ----------------------------------------------------------------- merge

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (``other`` is left untouched).

        Exact when both sketches still hold raw buffers that fit into
        this sketch's buffer; otherwise the donor is replayed into the
        P² estimators (raw samples when it still has them, an
        inverse-CDF reconstruction of up to ``merge_points`` synthetic
        samples when it has spilled).  Counts and extrema stay exact.
        """
        if other._count == 0:
            return self
        if (
            self._buffer is not None
            and other._buffer is not None
            and len(self._buffer) + len(other._buffer) <= self.buffer_size
        ):
            self._buffer.extend(other._buffer)
        else:
            if self._buffer is not None:
                self._spill()
            for x in self._donor_samples(other):
                for estimator in self._estimators.values():
                    estimator.observe(x)
        self._count += other._count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    @staticmethod
    def _donor_samples(other: "QuantileSketch") -> Iterable[float]:
        if other._buffer is not None:
            return list(other._buffer)
        m = max(8, min(other.merge_points, other._count))
        # Visit the reconstruction ranks in golden-stride order, not
        # ascending: P² marker adjustment is biased by monotone input
        # streams (an ascending replay drags every interior marker
        # upward), while a scrambled-but-deterministic order behaves
        # like the random arrival the estimator is designed for.
        step = max(1, round(m * 0.618))
        while math.gcd(step, m) != 1:
            step += 1
        return [
            other.quantile(((j * step) % m + 0.5) / m) for j in range(m)
        ]

    # ----------------------------------------------------------------- views

    def to_dict(self) -> dict:
        return {
            "count": self._count,
            "min": None if not self._count else self._min,
            "max": None if not self._count else self._max,
            "spilled": self.spilled,
            "quantiles": {
                f"p{q * 100:g}": self.quantile(q) for q in self.quantiles
            },
        }

    def __repr__(self) -> str:
        qs = ", ".join(
            f"p{q * 100:g}={self.quantile(q):g}" for q in self.quantiles
        )
        return f"QuantileSketch(n={self._count}, {qs})"


class NoopSketch:
    """Disabled-path sketch: accepts observations, reports nothing."""

    __slots__ = ()

    count = 0
    min = math.nan
    max = math.nan
    spilled = False
    quantiles: tuple[float, ...] = ()

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return math.nan

    def quantiles_snapshot(self) -> dict:
        return {}

    def snapshot(self) -> SketchSnapshot:
        return SketchSnapshot(0, math.nan, math.nan, False, (), None)

    def delta(self, prev) -> "NoopSketch":
        return self

    def merge(self, other) -> "NoopSketch":
        return self

    def to_dict(self) -> dict:
        return {}


NOOP_SKETCH = NoopSketch()
