"""Query profiling: EXPLAIN ANALYZE over the span tree.

:meth:`repro.VectorDatabase.explain_analyze` runs one query under a
private tracer and hands the finished spans here.  The profiler folds
them into a :class:`ProfileNode` tree annotated with two stats views
per operator:

* ``total`` — the :class:`SearchStats` delta over the span's interval
  (everything that happened inside it, children included);
* ``self`` — ``total`` minus the children's totals: the work the
  operator did *itself*.

Because every span on the query path attaches the same stats object,
the self-deltas telescope: summed over the whole tree they equal the
root's totals **exactly** — the per-operator attribution is a true
partition of the query's cost, not an estimate (asserted in tests).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

from .tracing import STAT_FIELDS, Span

__all__ = ["ProfileNode", "QueryProfile", "build_profile_tree"]

#: Compact labels for rendered stats columns.
_ABBREV = {
    "distance_computations": "dist",
    "nodes_visited": "nodes",
    "page_reads": "pages",
    "candidates_examined": "cand",
    "predicate_evaluations": "pred",
    "predicate_rejections": "rej",
}


def _fmt_stats(stats: dict[str, int] | None) -> str:
    if stats is None:
        return "-"
    parts = [f"{_ABBREV[f]}={stats[f]}" for f in STAT_FIELDS if stats.get(f)]
    return " ".join(parts) if parts else "0"


@dataclass
class ProfileNode:
    """One operator in the profiled plan tree."""

    name: str
    span_id: int
    attributes: dict[str, Any]
    start: float
    end: float
    stats_total: dict[str, int] | None
    stats_self: dict[str, int] | None = None
    events: list[dict[str, Any]] = field(default_factory=list)
    error: str | None = None
    children: list["ProfileNode"] = field(default_factory=list)

    @property
    def duration_seconds(self) -> float:
        return self.end - self.start

    def walk(self) -> Iterable["ProfileNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "ProfileNode | None":
        """First node (preorder) whose name matches exactly."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "duration_seconds": self.duration_seconds,
            "attributes": self.attributes,
            "stats_total": self.stats_total,
            "stats_self": self.stats_self,
        }
        if self.events:
            out["events"] = self.events
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


def _self_stats(node: ProfileNode) -> None:
    """Fill ``stats_self`` = total - sum(children totals), recursively."""
    for child in node.children:
        _self_stats(child)
    if node.stats_total is None:
        node.stats_self = None
        return
    own = dict(node.stats_total)
    for child in node.children:
        if child.stats_total is None:
            continue
        for f in STAT_FIELDS:
            own[f] -= child.stats_total.get(f, 0)
    node.stats_self = own


def build_profile_tree(spans: Iterable[Span]) -> list[ProfileNode]:
    """Fold finished spans into profile trees (one per root span)."""
    nodes: dict[int, ProfileNode] = {}
    ordered: list[Span] = sorted(spans, key=lambda s: (s.start, s.span_id))
    for span in ordered:
        nodes[span.span_id] = ProfileNode(
            name=span.name,
            span_id=span.span_id,
            attributes=dict(span.attributes),
            start=span.start,
            end=span.end if span.end is not None else span.start,
            stats_total=(
                dict(span.stats_delta) if span.stats_delta is not None else None
            ),
            events=[e.to_dict() for e in span.events],
            error=span.error,
        )
    roots: list[ProfileNode] = []
    for span in ordered:
        node = nodes[span.span_id]
        parent = nodes.get(span.parent_id) if span.parent_id is not None else None
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for root in roots:
        _self_stats(root)
    return roots


@dataclass
class QueryProfile:
    """The result of EXPLAIN ANALYZE: the answer plus its cost anatomy."""

    result: Any  # SearchResult (kept untyped: no core import cycle)
    root: ProfileNode
    plan: str = ""
    candidates: list[str] = field(default_factory=list)
    #: Plan-cache attribution: ``{"source": "hit"|"miss"|"disabled"|
    #: "explicit", ...}`` plus the cache's hit/miss/size counters when a
    #: cache is configured.  Lets EXPLAIN ANALYZE distinguish a plan the
    #: planner just chose from one replayed out of the prepared-query
    #: cache.
    plan_cache: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------- checking

    def attribution_residual(self) -> dict[str, int]:
        """Root totals minus the sum of per-node self stats (0 everywhere
        when the attribution partitions the query's cost exactly)."""
        residual = {f: 0 for f in STAT_FIELDS}
        if self.root.stats_total is None:
            return residual
        for f in STAT_FIELDS:
            residual[f] = self.root.stats_total[f]
        for node in self.root.walk():
            if node.stats_self is None:
                continue
            for f in STAT_FIELDS:
                residual[f] -= node.stats_self[f]
        return residual

    # ------------------------------------------------------------ rendering

    def render(self) -> str:
        """Human-readable EXPLAIN ANALYZE output (text tree)."""
        lines = [f"EXPLAIN ANALYZE  plan: {self.plan}"]
        if self.plan_cache:
            lines.append(
                "plan cache: "
                + " ".join(f"{k}={v}" for k, v in self.plan_cache.items())
            )
        if self.candidates:
            lines.append("candidates considered:")
            lines.extend(f"  - {c}" for c in self.candidates)
        hits = len(self.result.hits) if self.result is not None else 0
        lines.append(
            f"{hits} hits in {self.root.duration_seconds * 1e3:.3f} ms"
            f" · totals: {_fmt_stats(self.root.stats_total)}"
        )
        lines.append("")
        self._render_node(self.root, lines, prefix="", is_last=True, is_root=True)
        return "\n".join(lines)

    def _render_node(
        self,
        node: ProfileNode,
        lines: list[str],
        prefix: str,
        is_last: bool,
        is_root: bool = False,
    ) -> None:
        if is_root:
            head, child_prefix = "", ""
        else:
            head = prefix + ("└─ " if is_last else "├─ ")
            child_prefix = prefix + ("   " if is_last else "│  ")
        label = node.name
        interesting = {
            k: v for k, v in node.attributes.items()
            if v is not None
            and k in ("index", "strategy", "partition", "shard", "attempt", "ef")
        }
        if interesting:
            label += " " + " ".join(f"{k}={v}" for k, v in interesting.items())
        line = (
            f"{head}{label:<40} {node.duration_seconds * 1e3:9.3f} ms"
            f"  total: {_fmt_stats(node.stats_total)}"
        )
        if node.children and node.stats_total is not None:
            line += f"  self: {_fmt_stats(node.stats_self)}"
        if node.error:
            line += f"  ERROR: {node.error}"
        lines.append(line)
        for event in node.events:
            lines.append(
                f"{child_prefix}· event {event['name']} {event.get('attributes', {})}"
            )
        for i, child in enumerate(node.children):
            self._render_node(
                child, lines, child_prefix, is_last=(i == len(node.children) - 1)
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "plan": self.plan,
            "plan_cache": self.plan_cache,
            "candidates": self.candidates,
            "hits": self.result.ids if self.result is not None else [],
            "elapsed_seconds": (
                self.result.stats.elapsed_seconds if self.result is not None else 0.0
            ),
            "tree": self.root.to_dict(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Machine-readable EXPLAIN ANALYZE output."""
        return json.dumps(self.to_dict(), indent=indent, default=str)
