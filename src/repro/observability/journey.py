"""Request journeys: the per-request record anomaly attribution walks.

A :class:`Journey` is the compact, phase-decomposed summary of one
request's trip through the serving front door — who sent it, what
happened to it, and where its simulated time went (``admission_wait``,
``planning``, ``coalesce_batch``, ``index_scan``, ``page_io``,
``cache_lookup``).  The full span tree (with links to the coalesced
batch) remains the ground truth; the journey is the cheap index over it
keyed by ``trace_id``, which is exactly what a latency **exemplar**
(histogram bucket → trace id) resolves through.

:class:`JourneyLog` keeps a bounded ring of completed journeys with a
trace-id index, plus the aggregation helpers the anomaly layer uses to
name a phase and tenant when a detector fires.
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["Journey", "JourneyLog", "PHASES"]

#: The attribution vocabulary, in journey order.  ``ServiceModel``
#: produces the execution phases; the front door adds the queueing and
#: cache ones.
PHASES = (
    "admission_wait",
    "cache_lookup",
    "planning",
    "coalesce_batch",
    "index_scan",
    "page_io",
)


@dataclass
class Journey:
    """One request's phase-decomposed trip through the front door."""

    trace_id: int
    tenant: str
    status: str  # "ok" | "cache_hit" | "rejected" | "shed"
    arrival_seconds: float
    completed_seconds: float
    latency_seconds: float
    #: Simulated seconds per phase; keys from :data:`PHASES` (absent =
    #: the request never entered that phase).
    phases: dict[str, float] = field(default_factory=dict)
    batch_size: int = 0

    @property
    def phase_total(self) -> float:
        return sum(self.phases.values())

    def dominant_phase(self) -> str | None:
        """The phase holding the largest share of this journey's time."""
        if not self.phases:
            return None
        return max(self.phases, key=lambda p: (self.phases[p], p))

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "tenant": self.tenant,
            "status": self.status,
            "arrival_seconds": self.arrival_seconds,
            "completed_seconds": self.completed_seconds,
            "latency_seconds": self.latency_seconds,
            "batch_size": self.batch_size,
            "phases": dict(self.phases),
        }

    def __repr__(self) -> str:
        top = self.dominant_phase()
        return (
            f"Journey(trace={self.trace_id} {self.tenant!r} {self.status}"
            f" {self.latency_seconds * 1e3:.3f}ms top={top})"
        )


class JourneyLog:
    """Bounded ring of completed journeys, indexed by trace id."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._by_trace: "OrderedDict[int, Journey]" = OrderedDict()
        self.recorded = 0

    def record(self, journey: Journey) -> Journey:
        if journey.trace_id in self._by_trace:
            del self._by_trace[journey.trace_id]
        self._by_trace[journey.trace_id] = journey
        self.recorded += 1
        while len(self._by_trace) > self.capacity:
            self._by_trace.popitem(last=False)
        return journey

    def get(self, trace_id: int) -> Journey | None:
        """Resolve an exemplar's trace id to its journey (or None)."""
        return self._by_trace.get(trace_id)

    def between(self, start: float, end: float) -> list[Journey]:
        """Journeys completed in the half-open window ``(start, end]``."""
        return [
            j
            for j in self._by_trace.values()
            if start < j.completed_seconds <= end
        ]

    def recent(self, n: int) -> list[Journey]:
        """The ``n`` most recently recorded journeys, oldest first."""
        items = list(self._by_trace.values())
        return items[-n:] if n < len(items) else items

    def __len__(self) -> int:
        return len(self._by_trace)

    def __iter__(self):
        return iter(self._by_trace.values())

    # ------------------------------------------------------- attribution math

    @staticmethod
    def phase_means(journeys: Iterable[Journey]) -> dict[str, float]:
        """Mean simulated seconds per phase over ``journeys``.

        A journey that never entered a phase contributes 0 to that
        phase's mean (absence of a phase is itself signal — e.g. cache
        hits stop after ``cache_lookup``).
        """
        totals: dict[str, float] = defaultdict(float)
        count = 0
        for journey in journeys:
            count += 1
            for phase, seconds in journey.phases.items():
                totals[phase] += seconds
        if count == 0:
            return {}
        return {phase: totals[phase] / count for phase in sorted(totals)}

    @staticmethod
    def tenant_latency_means(
        journeys: Iterable[Journey],
    ) -> dict[str, tuple[float, int]]:
        """Per-tenant ``(mean latency, journey count)``."""
        sums: dict[str, float] = defaultdict(float)
        counts: dict[str, int] = defaultdict(int)
        for journey in journeys:
            sums[journey.tenant] += journey.latency_seconds
            counts[journey.tenant] += 1
        return {
            tenant: (sums[tenant] / counts[tenant], counts[tenant])
            for tenant in sorted(sums)
        }

    @staticmethod
    def slowest(journeys: Iterable[Journey], n: int = 3) -> list[Journey]:
        ordered = sorted(
            journeys, key=lambda j: (-j.latency_seconds, j.trace_id)
        )
        return ordered[:n]
