"""Exporters: JSON-lines traces, Prometheus metric dumps, slow-query log.

Machine-readable output is the point of the observability subsystem —
the bench harness and CI consume these artifacts instead of scraping
stdout:

* :func:`spans_to_jsonl` / :func:`write_trace_jsonl` — one JSON object
  per finished span (ids, parent ids, wall interval, attributes,
  events, attributed ``SearchStats`` delta).
* :func:`write_metrics_text` — the registry in Prometheus text format.
* :class:`SlowQueryLog` — a bounded ring of queries whose elapsed time
  (simulated where a simulated clock exists, wall otherwise) crossed a
  configurable threshold, with their plan and stats snapshot.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from .metrics import MetricsRegistry
from .tracing import STAT_FIELDS, Span

__all__ = [
    "SlowQuery",
    "SlowQueryLog",
    "spans_to_jsonl",
    "write_metrics_text",
    "write_trace_jsonl",
]


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """Serialize finished spans as JSON lines (one span per line)."""
    return "".join(
        json.dumps(span.to_dict(), default=_jsonable) + "\n" for span in spans
    )


def _jsonable(value: Any):
    """Fallback encoder: numpy scalars and arbitrary objects to builtins."""
    if hasattr(value, "item"):
        return value.item()
    return str(value)


def write_trace_jsonl(spans: Iterable[Span], path) -> int:
    """Write spans as JSONL; returns the number of spans written."""
    text = spans_to_jsonl(spans)
    with open(path, "w") as fh:
        fh.write(text)
    return text.count("\n")


def write_metrics_text(registry: MetricsRegistry, path) -> None:
    """Write a Prometheus-style text dump of every registered metric."""
    with open(path, "w") as fh:
        fh.write(registry.render_prometheus())


@dataclass
class SlowQuery:
    """One slow-query record: what ran, how long, and what it cost."""

    kind: str
    plan: str
    elapsed_seconds: float
    threshold_seconds: float
    stats: dict[str, int] = field(default_factory=dict)
    simulated: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "plan": self.plan,
            "elapsed_seconds": self.elapsed_seconds,
            "threshold_seconds": self.threshold_seconds,
            "simulated": self.simulated,
            "stats": self.stats,
        }

    def __repr__(self) -> str:
        clock = "sim" if self.simulated else "wall"
        return (
            f"SlowQuery({self.kind} {self.plan!r}"
            f" {self.elapsed_seconds * 1e3:.2f}ms {clock},"
            f" threshold {self.threshold_seconds * 1e3:.2f}ms)"
        )


class SlowQueryLog:
    """Bounded log of queries slower than a threshold.

    The threshold applies to whichever elapsed value the caller reports:
    executors pass wall time, the distributed coordinator passes the
    simulated scatter-gather latency (flagged ``simulated=True``).
    """

    def __init__(self, threshold_seconds: float = 0.1, capacity: int = 256):
        if threshold_seconds < 0:
            raise ValueError("threshold_seconds must be >= 0")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.threshold_seconds = threshold_seconds
        self.entries: deque[SlowQuery] = deque(maxlen=capacity)
        self.observed = 0
        self.recorded = 0

    def observe(
        self,
        kind: str,
        plan: str,
        elapsed_seconds: float,
        stats: Any = None,
        simulated: bool = False,
    ) -> bool:
        """Consider one finished query; True when it was logged as slow."""
        self.observed += 1
        if elapsed_seconds < self.threshold_seconds:
            return False
        snapshot = (
            {f: getattr(stats, f) for f in STAT_FIELDS} if stats is not None else {}
        )
        self.entries.append(SlowQuery(
            kind=kind,
            plan=plan,
            elapsed_seconds=elapsed_seconds,
            threshold_seconds=self.threshold_seconds,
            stats=snapshot,
            simulated=simulated,
        ))
        self.recorded += 1
        return True

    def render(self) -> str:
        if not self.entries:
            return "(no slow queries)"
        return "\n".join(repr(entry) for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)
