"""Exporters: JSON-lines traces, Prometheus metric dumps, slow-query log.

Machine-readable output is the point of the observability subsystem —
the bench harness and CI consume these artifacts instead of scraping
stdout:

* :func:`spans_to_jsonl` / :func:`write_trace_jsonl` — one JSON object
  per finished span (ids, parent ids, wall interval, attributes,
  events, attributed ``SearchStats`` delta).
* :func:`write_metrics_text` — the registry in Prometheus text format.
* :class:`SlowQueryLog` — a bounded ring of queries whose elapsed time
  (simulated where a simulated clock exists, wall otherwise) crossed a
  configurable threshold, with their plan and stats snapshot.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from .metrics import MetricsRegistry
from .tracing import STAT_FIELDS, Span

__all__ = [
    "SlowQuery",
    "SlowQueryLog",
    "spans_to_jsonl",
    "write_metrics_text",
    "write_trace_jsonl",
]


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """Serialize finished spans as JSON lines (one span per line)."""
    return "".join(
        json.dumps(span.to_dict(), default=_jsonable) + "\n" for span in spans
    )


def _jsonable(value: Any):
    """Fallback encoder: numpy scalars and arbitrary objects to builtins."""
    if hasattr(value, "item"):
        return value.item()
    return str(value)


def write_trace_jsonl(spans: Iterable[Span], path) -> int:
    """Write spans as JSONL; returns the number of spans written."""
    text = spans_to_jsonl(spans)
    with open(path, "w") as fh:
        fh.write(text)
    return text.count("\n")


def write_metrics_text(registry: MetricsRegistry, path) -> None:
    """Write a Prometheus-style text dump of every registered metric."""
    with open(path, "w") as fh:
        fh.write(registry.render_prometheus())


@dataclass
class SlowQuery:
    """One slow-query record: what ran, how long, and what it cost."""

    kind: str
    plan: str
    elapsed_seconds: float
    threshold_seconds: float
    stats: dict[str, int] = field(default_factory=dict)
    simulated: bool = False
    tenant: str | None = None
    trace_id: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "plan": self.plan,
            "elapsed_seconds": self.elapsed_seconds,
            "threshold_seconds": self.threshold_seconds,
            "simulated": self.simulated,
            "stats": self.stats,
            "tenant": self.tenant,
            "trace_id": self.trace_id,
        }

    def __repr__(self) -> str:
        clock = "sim" if self.simulated else "wall"
        who = f" tenant={self.tenant}" if self.tenant is not None else ""
        ref = f" trace={self.trace_id}" if self.trace_id is not None else ""
        return (
            f"SlowQuery({self.kind} {self.plan!r}"
            f" {self.elapsed_seconds * 1e3:.2f}ms {clock},"
            f" threshold {self.threshold_seconds * 1e3:.2f}ms{who}{ref})"
        )


class SlowQueryLog:
    """Bounded log of queries slower than a threshold.

    The threshold applies to whichever elapsed value the caller reports:
    executors pass wall time, the distributed coordinator passes the
    simulated scatter-gather latency (flagged ``simulated=True``).

    Eviction policy (``keep``):

    * ``"newest"`` (default) — a ring buffer of the most recent N slow
      queries, the classic slow-query-log shape.
    * ``"slowest"`` — keep the N slowest seen so far: at capacity, a new
      entry replaces the current fastest entry only if it is slower.
      Use this when hunting worst-case outliers over long runs, where
      newest-N would rotate the record-holders out.

    ``threshold_provider`` makes the threshold dynamic: a zero-argument
    callable consulted on every ``observe`` (e.g. the streaming p99 from
    a latency sketch — ``Observability(slow_query_seconds="auto")``).
    Each logged entry records the threshold that was in force when it
    was admitted.
    """

    def __init__(
        self,
        threshold_seconds: float = 0.1,
        capacity: int = 256,
        keep: str = "newest",
        threshold_provider: Any = None,
    ):
        if threshold_seconds < 0:
            raise ValueError("threshold_seconds must be >= 0")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if keep not in ("newest", "slowest"):
            raise ValueError(f"keep must be 'newest' or 'slowest', got {keep!r}")
        self.threshold_seconds = threshold_seconds
        self.keep = keep
        self.threshold_provider = threshold_provider
        self.entries: deque[SlowQuery] = deque(
            maxlen=capacity if keep == "newest" else None
        )
        self.capacity = capacity
        self.observed = 0
        self.recorded = 0

    def current_threshold(self) -> float:
        """The threshold in force right now (provider wins when set)."""
        return self._threshold()[0]

    def _threshold(self) -> tuple[float, bool]:
        """(threshold, came-from-provider).

        Admission is ``>=`` against a static threshold ("at least this
        slow") but strictly ``>`` against a provider-supplied one: the
        provider reports a quantile of the live stream (e.g. p99), and a
        query exactly *at* the quantile is by definition not an outlier
        — with ``>=`` a perfectly uniform workload would flag every
        query once warmup ends.
        """
        if self.threshold_provider is not None:
            dynamic = self.threshold_provider()
            if dynamic == dynamic:  # provider may return NaN during warmup
                return float(dynamic), True
        return self.threshold_seconds, False

    def observe(
        self,
        kind: str,
        plan: str,
        elapsed_seconds: float,
        stats: Any = None,
        simulated: bool = False,
        tenant: str | None = None,
        trace_id: int | None = None,
    ) -> bool:
        """Consider one finished query; True when it was logged as slow.

        ``tenant``/``trace_id`` are optional journey cross-references
        (the serving front door populates both); they never affect
        admission or eviction.
        """
        self.observed += 1
        threshold, dynamic = self._threshold()
        if elapsed_seconds < threshold or (dynamic and elapsed_seconds == threshold):
            return False
        snapshot = (
            {f: getattr(stats, f) for f in STAT_FIELDS} if stats is not None else {}
        )
        entry = SlowQuery(
            kind=kind,
            plan=plan,
            elapsed_seconds=elapsed_seconds,
            threshold_seconds=threshold,
            stats=snapshot,
            simulated=simulated,
            tenant=tenant,
            trace_id=trace_id,
        )
        if self.keep == "slowest" and len(self.entries) >= self.capacity:
            fastest = min(
                range(len(self.entries)),
                key=lambda i: self.entries[i].elapsed_seconds,
            )
            if entry.elapsed_seconds <= self.entries[fastest].elapsed_seconds:
                self.recorded += 1  # it *was* slow; it just isn't a keeper
                return True
            del self.entries[fastest]
        self.entries.append(entry)
        self.recorded += 1
        return True

    def render(self) -> str:
        if not self.entries:
            return "(no slow queries)"
        return "\n".join(repr(entry) for entry in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)
