"""Time-series telemetry: fixed-width windows over the metrics registry.

Every instrument in :class:`~repro.observability.metrics.MetricsRegistry`
is *instantaneous* — a counter is its lifetime total, a sketch is its
lifetime distribution.  Longitudinal questions ("did p99 inflate this
second?", "is the cache hit ratio collapsing?") need **windows**:
per-interval deltas against a remembered previous scrape.

:class:`TimeSeriesStore` produces them on the simulated clock:

* **counters** (and histogram ``_count``/``_sum`` series) are scraped as
  per-window deltas per label set;
* **gauges** are sampled at the window boundary;
* registered :class:`~repro.observability.sketch.QuantileSketch`\\ es are
  windowed via :meth:`~repro.observability.sketch.QuantileSketch.delta`
  against the previous boundary's snapshot — a pure read, so the live
  sketches are never perturbed.

Windows are fixed-width, kept in a bounded ring (``retention``), and
**mergeable**: :meth:`TimeWindow.merge` folds k consecutive windows into
one wide window (counter deltas add, gauges take the latest sample,
sketches merge) — the anomaly layer's baselines are exactly such merges.

Everything is driven by a ``now`` the caller passes in (the front door's
event loop); this module never reads a wall clock, so window contents
are bit-for-bit reproducible.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Sequence

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LabelKey,
    MetricsRegistry,
    _label_key,
)
from .sketch import QuantileSketch, SketchSnapshot

__all__ = ["TimeSeriesStore", "TimeWindow"]

Series = dict[str, dict[LabelKey, float]]


def _labels_match(key: LabelKey, match: dict[str, Any]) -> bool:
    """True when ``match`` is a subset of the series' label set."""
    have = dict(key)
    return all(have.get(k) == str(v) for k, v in match.items())


class TimeWindow:
    """One fixed-width telemetry window: deltas, samples, distributions."""

    __slots__ = ("start", "end", "counters", "gauges", "sketches")

    def __init__(
        self,
        start: float,
        end: float,
        counters: Series,
        gauges: Series,
        sketches: dict[str, QuantileSketch],
    ):
        self.start = start
        self.end = end
        self.counters = counters
        self.gauges = gauges
        self.sketches = sketches

    @property
    def width_seconds(self) -> float:
        return self.end - self.start

    # ---------------------------------------------------------------- queries

    def counter_delta(self, name: str, **labels: Any) -> float:
        """This window's delta for one exact label set (0.0 if absent)."""
        return self.counters.get(name, {}).get(_label_key(labels), 0.0)

    def counter_total(self, name: str, **match: Any) -> float:
        """Delta summed over every series whose labels include ``match``."""
        series = self.counters.get(name)
        if not series:
            return 0.0
        return sum(
            value for key, value in series.items() if _labels_match(key, match)
        )

    def gauge_value(self, name: str, **labels: Any) -> float:
        return self.gauges.get(name, {}).get(_label_key(labels), 0.0)

    def sketch(self, name: str) -> QuantileSketch | None:
        """The window's distribution for a tracked sketch (None if absent)."""
        return self.sketches.get(name)

    def label_values(self, name: str, label: str) -> list[str]:
        """Distinct values of ``label`` across one counter's series."""
        series = self.counters.get(name)
        if not series:
            return []
        values = {dict(key).get(label) for key in series}
        return sorted(v for v in values if v is not None)

    def ratio(self, numerator: str, denominator: str, **match: Any) -> float:
        """``num / (den)`` over this window's deltas; NaN when den == 0."""
        den = self.counter_total(denominator, **match)
        if den == 0.0:
            return float("nan")
        return self.counter_total(numerator, **match) / den

    # ------------------------------------------------------------------ merge

    @classmethod
    def merge(cls, windows: Sequence["TimeWindow"]) -> "TimeWindow":
        """Fold consecutive windows into one wide window.

        Counter deltas add, gauges take the sample from the latest
        window carrying the series, sketches merge (each donor window's
        synthetic samples weigh equally; for the near-uniform windows a
        baseline is made of, that is the documented ≤ 0.05 rank error).
        """
        if not windows:
            raise ValueError("cannot merge zero windows")
        ordered = sorted(windows, key=lambda w: w.end)
        counters: Series = {}
        gauges: Series = {}
        sketches: dict[str, QuantileSketch] = {}
        for window in ordered:
            for name, series in window.counters.items():
                out = counters.setdefault(name, {})
                for key, value in series.items():
                    out[key] = out.get(key, 0.0) + value
            for name, series in window.gauges.items():
                gauges.setdefault(name, {}).update(series)
            for name, sketch in window.sketches.items():
                merged = sketches.get(name)
                if merged is None:
                    merged = sketches[name] = QuantileSketch(
                        sketch.quantiles, sketch.buffer_size, sketch.merge_points
                    )
                merged.merge(sketch)
        return cls(ordered[0].start, ordered[-1].end, counters, gauges, sketches)

    # ------------------------------------------------------------------ views

    def to_dict(self) -> dict[str, Any]:
        return {
            "start": self.start,
            "end": self.end,
            "counters": {
                name: [
                    {"labels": dict(key), "delta": value}
                    for key, value in sorted(series.items())
                ]
                for name, series in sorted(self.counters.items())
            },
            "gauges": {
                name: [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(series.items())
                ]
                for name, series in sorted(self.gauges.items())
            },
            "sketches": {
                name: sketch.to_dict()
                for name, sketch in sorted(self.sketches.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"TimeWindow([{self.start:g}, {self.end:g}],"
            f" {len(self.counters)} counters, {len(self.sketches)} sketches)"
        )


class TimeSeriesStore:
    """Scrapes a registry (and registered sketches) into ring-kept windows.

    Parameters
    ----------
    metrics:
        The live registry to scrape.  Counters and histogram
        count/sum series become per-window deltas; gauges are sampled.
    width_seconds:
        Window width on the simulated clock.
    retention:
        Ring size — at most this many closed windows are kept.
    start_seconds:
        Simulated time the first window opens.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        width_seconds: float = 1.0,
        retention: int = 120,
        start_seconds: float = 0.0,
    ):
        if width_seconds <= 0:
            raise ValueError("width_seconds must be positive")
        if retention <= 0:
            raise ValueError("retention must be positive")
        self.metrics = metrics
        self.width_seconds = width_seconds
        self.retention = retention
        self.windows: deque[TimeWindow] = deque(maxlen=retention)
        self._window_start = start_seconds
        self._sketches: dict[str, QuantileSketch] = {}
        self._last_counters: Series = {}
        self._last_snapshots: dict[str, SketchSnapshot] = {}

    def track_sketch(self, name: str, sketch: QuantileSketch) -> None:
        """Register a live sketch for per-window delta scraping."""
        self._sketches[name] = sketch
        self._last_snapshots[name] = sketch.snapshot()

    # ---------------------------------------------------------------- scraping

    def _scrape_counters(self) -> Series:
        current: Series = {}
        for name in self.metrics.names():
            metric = self.metrics.get(name)
            if isinstance(metric, Counter):
                current[name] = {key: value for key, value in metric.samples()}
            elif isinstance(metric, Histogram):
                counts: dict[LabelKey, float] = {}
                sums: dict[LabelKey, float] = {}
                for key, _, total_sum, total in metric.samples():
                    counts[key] = float(total)
                    sums[key] = total_sum
                current[f"{name}_count"] = counts
                current[f"{name}_sum"] = sums
        return current

    def _scrape_gauges(self) -> Series:
        gauges: Series = {}
        for name in self.metrics.names():
            metric = self.metrics.get(name)
            if isinstance(metric, Gauge):
                gauges[name] = {key: value for key, value in metric.samples()}
        return gauges

    def scrape(self, now: float) -> TimeWindow:
        """Close the open window at ``now`` and start the next one."""
        current = self._scrape_counters()
        deltas: Series = {}
        for name, series in current.items():
            previous = self._last_counters.get(name, {})
            out = {
                key: value - previous.get(key, 0.0)
                for key, value in series.items()
            }
            if out:
                deltas[name] = out
        sketches: dict[str, QuantileSketch] = {}
        for name, sketch in self._sketches.items():
            window_sketch = sketch.delta(self._last_snapshots[name])
            self._last_snapshots[name] = sketch.snapshot()
            if window_sketch.count:
                sketches[name] = window_sketch
        window = TimeWindow(
            self._window_start, now, deltas, self._scrape_gauges(), sketches
        )
        self._last_counters = current
        self._window_start = now
        self.windows.append(window)
        return window

    def advance(self, now: float) -> list[TimeWindow]:
        """Close every whole window boundary at or before ``now``.

        The event loop calls this with each event's simulated time; any
        number of fixed-width windows may close (idle periods produce
        empty windows, which is itself signal).  Returns the windows
        closed by this call, oldest first.
        """
        closed: list[TimeWindow] = []
        while now >= self._window_start + self.width_seconds:
            closed.append(self.scrape(self._window_start + self.width_seconds))
        return closed

    # ----------------------------------------------------------------- views

    def last(self, n: int) -> list[TimeWindow]:
        """The most recent ``n`` closed windows, oldest first."""
        items = list(self.windows)
        return items[-n:] if n < len(items) else items

    def merged(self, n: int) -> TimeWindow:
        """One wide window over the last ``n`` closed windows."""
        return TimeWindow.merge(self.last(n))

    def series(
        self, name: str, **match: Any
    ) -> list[tuple[float, float]]:
        """``(window end, delta)`` points for one counter across the ring."""
        return [
            (window.end, window.counter_total(name, **match))
            for window in self.windows
        ]

    def __len__(self) -> int:
        return len(self.windows)

    def __iter__(self) -> Iterable[TimeWindow]:
        return iter(self.windows)
