"""System-wide metrics: counters, gauges, fixed-bucket histograms.

A tiny Prometheus-shaped metrics layer.  Instruments are created
lazily through a :class:`MetricsRegistry` and identified by name;
samples carry label sets (``counter.inc(kind="search")``).  Rendering
follows the Prometheus text exposition format closely enough that the
dump is scrapeable (``# HELP`` / ``# TYPE`` comments, ``_bucket`` /
``_sum`` / ``_count`` histogram series with cumulative ``le`` buckets).

The disabled path mirrors the tracing layer: :data:`NOOP_METRICS`
returns a shared :data:`NOOP_METRIC` whose ``inc``/``set``/``observe``
do nothing, so instrumented call sites never branch on an enabled flag.
"""

from __future__ import annotations

import math
from typing import Any, Iterator

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "NOOP_METRIC",
    "NOOP_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopMetric",
    "NoopMetricsRegistry",
]

#: Default histogram buckets, tuned for per-query latencies (seconds).
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus text-format label escaping: ``\\`` → ``\\\\``, ``"`` →
    ``\\"``, newline → ``\\n`` (in that order, so escapes don't compound)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """HELP-line escaping: only backslash and newline are special."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = key + extra
    if not items:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in items
    )
    return "{" + body + "}"


class _Metric:
    """Shared identity/bookkeeping for the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help

    def render(self) -> list[str]:
        raise NotImplementedError

    def _header(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {_escape_help(self.help)}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Metric):
    """A monotonically increasing sum, per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {value})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        return sum(self._values.values())

    def samples(self) -> Iterator[tuple[LabelKey, float]]:
        yield from sorted(self._values.items())

    def render(self) -> list[str]:
        lines = self._header()
        for key, value in self.samples():
            lines.append(f"{self.name}{_render_labels(key)} {value:g}")
        return lines


class Gauge(_Metric):
    """A value that can go up and down, per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + value

    def dec(self, value: float = 1.0, **labels: Any) -> None:
        self.inc(-value, **labels)

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> Iterator[tuple[LabelKey, float]]:
        yield from sorted(self._values.items())

    def render(self) -> list[str]:
        lines = self._header()
        for key, value in self.samples():
            lines.append(f"{self.name}{_render_labels(key)} {value:g}")
        return lines


class Histogram(_Metric):
    """Fixed-bucket histogram with cumulative bucket rendering."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted, non-empty tuple")
        self.buckets = tuple(float(b) for b in buckets)
        # Per label set: per-bucket counts (+inf implicit), sum, count.
        self._counts: dict[LabelKey, list[int]] = {}
        self._sums: dict[LabelKey, float] = {}
        self._totals: dict[LabelKey, int] = {}
        # Latest exemplar per (label set, bucket index): (exemplar, value).
        self._exemplars: dict[tuple[LabelKey, int], tuple[Any, float]] = {}

    def observe(self, value: float, exemplar: Any = None, **labels: Any) -> None:
        """Record one observation.

        ``exemplar`` (OpenMetrics-style) attaches an opaque reference —
        in practice a trace id — to the bucket the value lands in; the
        latest exemplar per bucket wins.  A p99 reading is then one
        :meth:`exemplar` call away from a representative journey.
        """
        key = _label_key(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = [0] * (len(self.buckets) + 1)
            self._sums[key] = 0.0
            self._totals[key] = 0
        # First bucket whose upper bound admits the value; last is +inf.
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                bucket = i
                break
        else:
            counts[-1] += 1
            bucket = len(self.buckets)
        self._sums[key] += value
        self._totals[key] += 1
        if exemplar is not None:
            self._exemplars[(key, bucket)] = (exemplar, value)

    def exemplar(self, q: float, **labels: Any) -> tuple[Any, float] | None:
        """The ``(exemplar, value)`` witness nearest the q-th quantile.

        Looks up the bucket :meth:`quantile` would report, then walks
        upward (slower buckets first — for tail quantiles the interesting
        witness is the slow one) and finally downward until a recorded
        exemplar is found.  ``None`` if no observation carried one.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        key = _label_key(labels)
        counts = self._counts.get(key)
        total = self._totals.get(key, 0)
        if not counts or total == 0:
            return None
        rank = q * total
        seen = 0
        target = len(self.buckets)
        for i in range(len(self.buckets)):
            seen += counts[i]
            if seen >= rank:
                target = i
                break
        for bucket in range(target, len(self.buckets) + 1):
            hit = self._exemplars.get((key, bucket))
            if hit is not None:
                return hit
        for bucket in range(target - 1, -1, -1):
            hit = self._exemplars.get((key, bucket))
            if hit is not None:
                return hit
        return None

    def count(self, **labels: Any) -> int:
        return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels: Any) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def quantile(self, q: float, **labels: Any) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th observation); +inf bucket reports the last bound.

        **Error bound**: the true quantile lies somewhere inside the
        reported bucket, so the error is up to the full width of that
        bucket — and *unbounded above* when the rank lands in the
        implicit +inf bucket, since any observation past the largest
        finite bound is clamped to it.  This makes fixed-bucket p99s
        systematically misleading at the tail (p99 of a workload whose
        tail exceeds the grid reports the last bound no matter how slow
        the tail really is).  For tail quantiles use the grid-free
        streaming estimate instead:
        :meth:`Observability.latency_quantile` /
        :class:`~repro.observability.sketch.QuantileSketch`, which the
        slow-query ``"auto"`` threshold and ``bench_e19`` use.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        key = _label_key(labels)
        counts = self._counts.get(key)
        total = self._totals.get(key, 0)
        if not counts or total == 0:
            return math.nan
        rank = q * total
        seen = 0
        for i, bound in enumerate(self.buckets):
            seen += counts[i]
            if seen >= rank:
                return bound
        return self.buckets[-1]

    def samples(self) -> Iterator[tuple[LabelKey, list[int], float, int]]:
        for key in sorted(self._counts):
            yield key, self._counts[key], self._sums[key], self._totals[key]

    def _exemplar_suffix(self, key: LabelKey, bucket: int) -> str:
        """OpenMetrics exemplar suffix (`` # {trace_id="42"} 0.0031``)."""
        hit = self._exemplars.get((key, bucket))
        if hit is None:
            return ""
        ref, value = hit
        return f' # {{trace_id="{_escape_label_value(str(ref))}"}} {value:g}'

    def render(self) -> list[str]:
        lines = self._header()
        for key, counts, total_sum, total in self.samples():
            cumulative = 0
            for i, bound in enumerate(self.buckets):
                cumulative += counts[i]
                le = (("le", f"{bound:g}"),)
                lines.append(
                    f"{self.name}_bucket{_render_labels(key, le)} {cumulative}"
                    f"{self._exemplar_suffix(key, i)}"
                )
            lines.append(
                f'{self.name}_bucket{_render_labels(key, (("le", "+Inf"),))} {total}'
                f"{self._exemplar_suffix(key, len(self.buckets))}"
            )
            lines.append(f"{self.name}_sum{_render_labels(key)} {total_sum:g}")
            lines.append(f"{self.name}_count{_render_labels(key)} {total}")
        return lines


class MetricsRegistry:
    """Named instruments, created on first use, rendered as one dump."""

    enabled = True

    def __init__(self):
        self._metrics: dict[str, _Metric] = {}

    def _get(self, cls, name: str, help: str, **kwargs) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, help, **kwargs)
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind},"
                f" not {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def render_prometheus(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable dump (tests, JSON artifacts)."""
        out: dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = {
                    "type": metric.kind,
                    "series": [
                        {
                            "labels": dict(key),
                            "count": total,
                            "sum": total_sum,
                        }
                        for key, _, total_sum, total in metric.samples()
                    ],
                }
            else:
                out[name] = {
                    "type": metric.kind,
                    "series": [
                        {"labels": dict(key), "value": value}
                        for key, value in metric.samples()
                    ],
                }
        return out


class NoopMetric:
    """Disabled-path instrument: accepts any recording call, does nothing."""

    __slots__ = ()

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        pass

    def dec(self, value: float = 1.0, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, exemplar: Any = None, **labels: Any) -> None:
        pass

    def value(self, **labels: Any) -> float:
        return 0.0

    def count(self, **labels: Any) -> int:
        return 0

    def exemplar(self, q: float, **labels: Any) -> None:
        return None


class NoopMetricsRegistry:
    """Disabled-path registry: every instrument is :data:`NOOP_METRIC`."""

    enabled = False

    def counter(self, name: str, help: str = "") -> NoopMetric:
        return NOOP_METRIC

    def gauge(self, name: str, help: str = "") -> NoopMetric:
        return NOOP_METRIC

    def histogram(self, name: str, help: str = "", buckets=None) -> NoopMetric:
        return NOOP_METRIC

    def names(self) -> list[str]:
        return []

    def get(self, name: str) -> None:
        return None

    def render_prometheus(self) -> str:
        return ""

    def to_dict(self) -> dict[str, Any]:
        return {}


NOOP_METRIC = NoopMetric()
NOOP_METRICS = NoopMetricsRegistry()
