"""Service-level objectives: declarative targets, burn-rate alerts, health.

The observability layer built in the previous PRs can *see* latency and
work counters; this module decides whether what it sees is acceptable.
Three pieces:

* :class:`SLO` — one declarative objective over a quality signal
  (``recall@10 >= 0.9``, ``p-latency <= X``, ``coverage >= 0.95``).
  Each observation of the signal is classified good/bad against the
  threshold, and the objective allows a ``budget`` fraction of bad
  observations.
* :class:`SLOMonitor` — sliding-window evaluation with **multi-window
  burn-rate alerting** (the SRE-workbook construction, restated over
  observation counts because the simulated system has no wall clock to
  trust): the burn rate is ``bad_fraction / budget``; an alert fires
  when *both* a long and a short window burn faster than a policy's
  factor — the long window filters noise, the short window guarantees
  the alert is still firing *now*.  Alerts are surfaced three ways: a
  record on :attr:`SLOMonitor.alerts`, a ``vdbms_slo_breaches_total``
  counter, and an ``slo_alert`` trace span carrying a
  ``burn_rate_alert`` event.
* :class:`HealthReport` — the one-call operator view
  (``Database.health()``): latency quantiles from the streaming
  sketches, audited-recall summary, per-SLO status, and active alerts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = [
    "DEFAULT_BURN_POLICIES",
    "BurnRatePolicy",
    "HealthReport",
    "SLO",
    "SLOAlert",
    "SLOMonitor",
    "SLOStatus",
]


@dataclass(frozen=True)
class SLO:
    """One objective: observations of ``signal`` should satisfy the
    threshold, with at most a ``budget`` fraction allowed to miss it.

    ``op`` gives the direction: ``">="`` for floor objectives (recall,
    coverage), ``"<="`` for ceilings (latency).
    """

    name: str
    signal: str  # "recall" | "latency" | "coverage" | custom
    threshold: float
    op: str = ">="
    budget: float = 0.05
    description: str = ""

    def __post_init__(self):
        if self.op not in (">=", "<="):
            raise ValueError(f"SLO op must be '>=' or '<=', got {self.op!r}")
        if not 0.0 < self.budget < 1.0:
            raise ValueError("SLO budget must be in (0, 1)")

    def is_good(self, value: float) -> bool:
        return value >= self.threshold if self.op == ">=" else value <= self.threshold

    def describe(self) -> str:
        return f"{self.signal} {self.op} {self.threshold:g} (budget {self.budget:g})"


@dataclass(frozen=True)
class BurnRatePolicy:
    """One (long window, short window, factor) alerting rule.

    Windows are observation counts.  The policy fires when the bad
    fraction in *both* windows exceeds ``factor * budget``; it needs at
    least ``short_window`` observations before it evaluates at all.
    """

    long_window: int = 120
    short_window: int = 15
    factor: float = 6.0
    severity: str = "fast_burn"

    def __post_init__(self):
        if self.short_window <= 0 or self.long_window < self.short_window:
            raise ValueError("need 0 < short_window <= long_window")
        if self.factor <= 0:
            raise ValueError("factor must be positive")


#: Fast burn (page-now shaped) + slow burn (ticket shaped), in
#: observation counts rather than hours.
DEFAULT_BURN_POLICIES = (
    BurnRatePolicy(long_window=120, short_window=15, factor=6.0,
                   severity="fast_burn"),
    BurnRatePolicy(long_window=480, short_window=60, factor=2.0,
                   severity="slow_burn"),
)


@dataclass
class SLOAlert:
    """One burn-rate alert firing (kept even after it clears)."""

    slo: str
    severity: str
    burn_rate_long: float
    burn_rate_short: float
    factor: float
    observation: int  # index of the observation that tripped it
    value: float      # the signal value at trip time
    active: bool = True

    def to_dict(self) -> dict[str, Any]:
        return {
            "slo": self.slo,
            "severity": self.severity,
            "burn_rate_long": round(self.burn_rate_long, 3),
            "burn_rate_short": round(self.burn_rate_short, 3),
            "factor": self.factor,
            "observation": self.observation,
            "value": self.value,
            "active": self.active,
        }

    def __repr__(self) -> str:
        state = "ACTIVE" if self.active else "cleared"
        return (
            f"SLOAlert({self.slo} {self.severity} {state}"
            f" burn={self.burn_rate_long:.1f}/{self.burn_rate_short:.1f}"
            f" x{self.factor:g} @obs{self.observation})"
        )


@dataclass
class SLOStatus:
    """Point-in-time view of one SLO for health reporting."""

    slo: SLO
    observations: int
    window_mean: float
    good_fraction: float
    burn_rates: dict[str, tuple[float, float]]  # severity -> (long, short)
    alerting: list[str]  # severities currently firing

    @property
    def ok(self) -> bool:
        return not self.alerting

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.slo.name,
            "objective": self.slo.describe(),
            "observations": self.observations,
            "window_mean": self.window_mean,
            "good_fraction": self.good_fraction,
            "burn_rates": {
                sev: {"long": round(lo, 3), "short": round(sh, 3)}
                for sev, (lo, sh) in self.burn_rates.items()
            },
            "alerting": list(self.alerting),
            "ok": self.ok,
        }


class _Window:
    """Sliding window of (value, good) pairs for one SLO."""

    def __init__(self, capacity: int):
        self.values: deque[float] = deque(maxlen=capacity)
        self.good: deque[bool] = deque(maxlen=capacity)
        self.observed = 0

    def append(self, value: float, good: bool) -> None:
        self.values.append(value)
        self.good.append(good)
        self.observed += 1

    def bad_fraction(self, last_n: int) -> float:
        if not self.good:
            return 0.0
        window = list(self.good)[-last_n:]
        return sum(1 for g in window if not g) / len(window)

    def mean(self) -> float:
        if not self.values:
            return float("nan")
        return sum(self.values) / len(self.values)

    def good_fraction(self) -> float:
        if not self.good:
            return 1.0
        return sum(1 for g in self.good if g) / len(self.good)


class SLOMonitor:
    """Evaluates a set of SLOs over sliding windows as signals arrive.

    ``observe(signal, value)`` is pushed from the recording paths
    (``record_query`` for latency/coverage, the recall auditor for
    recall).  The monitor is deliberately synchronous and in-process:
    the simulated system has no background threads, so alert evaluation
    rides on the observations themselves.
    """

    def __init__(
        self,
        slos: Sequence[SLO],
        metrics: Any = None,
        tracer: Any = None,
        policies: Sequence[BurnRatePolicy] = DEFAULT_BURN_POLICIES,
    ):
        from .metrics import NOOP_METRICS
        from .tracing import NOOP_TRACER

        names = [s.name for s in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in {names}")
        self.slos = tuple(slos)
        self.policies = tuple(policies)
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self._by_signal: dict[str, list[SLO]] = {}
        for slo in self.slos:
            self._by_signal.setdefault(slo.signal, []).append(slo)
        capacity = max((p.long_window for p in self.policies), default=128)
        self._windows: dict[str, _Window] = {
            slo.name: _Window(capacity) for slo in self.slos
        }
        self._active: dict[tuple[str, str], SLOAlert] = {}
        self.alerts: list[SLOAlert] = []

    # ------------------------------------------------------------ observing

    def observe(self, signal: str, value: float) -> None:
        """Feed one observation of a signal into every SLO watching it."""
        for slo in self._by_signal.get(signal, ()):
            window = self._windows[slo.name]
            window.append(float(value), slo.is_good(float(value)))
            self._evaluate(slo, window, float(value))

    def _evaluate(self, slo: SLO, window: _Window, value: float) -> None:
        for policy in self.policies:
            if window.observed < policy.short_window:
                continue
            burn_long = window.bad_fraction(policy.long_window) / slo.budget
            burn_short = window.bad_fraction(policy.short_window) / slo.budget
            key = (slo.name, policy.severity)
            firing = burn_long >= policy.factor and burn_short >= policy.factor
            active = self._active.get(key)
            if firing and active is None:
                alert = SLOAlert(
                    slo=slo.name,
                    severity=policy.severity,
                    burn_rate_long=burn_long,
                    burn_rate_short=burn_short,
                    factor=policy.factor,
                    observation=window.observed,
                    value=value,
                )
                self._active[key] = alert
                self.alerts.append(alert)
                self.metrics.counter(
                    "vdbms_slo_breaches_total",
                    "Burn-rate alerts fired per SLO and severity.",
                ).inc(slo=slo.name, severity=policy.severity)
                span = self.tracer.start_span(
                    "slo_alert", slo=slo.name, severity=policy.severity,
                    objective=slo.describe(),
                )
                span.event(
                    "burn_rate_alert",
                    slo=slo.name,
                    severity=policy.severity,
                    burn_rate_long=round(burn_long, 3),
                    burn_rate_short=round(burn_short, 3),
                    factor=policy.factor,
                    value=value,
                )
                span.finish()
            elif not firing and active is not None:
                # Cleared: the short window no longer burns.
                active.active = False
                del self._active[key]
                self.tracer.start_span(
                    "slo_alert", slo=slo.name, severity=policy.severity,
                    cleared=True,
                ).finish()
        self.metrics.gauge(
            "vdbms_slo_good_fraction",
            "Sliding-window fraction of observations meeting each SLO.",
        ).set(window.good_fraction(), slo=slo.name)

    # -------------------------------------------------------------- queries

    def active_alerts(self) -> list[SLOAlert]:
        return list(self._active.values())

    @property
    def ok(self) -> bool:
        return not self._active

    def status(self) -> list[SLOStatus]:
        out = []
        for slo in self.slos:
            window = self._windows[slo.name]
            burn = {
                p.severity: (
                    window.bad_fraction(p.long_window) / slo.budget,
                    window.bad_fraction(p.short_window) / slo.budget,
                )
                for p in self.policies
                if window.observed >= p.short_window
            }
            out.append(SLOStatus(
                slo=slo,
                observations=window.observed,
                window_mean=window.mean(),
                good_fraction=window.good_fraction(),
                burn_rates=burn,
                alerting=[
                    sev for (name, sev) in self._active if name == slo.name
                ],
            ))
        return out

    def __repr__(self) -> str:
        return (
            f"SLOMonitor({len(self.slos)} SLOs,"
            f" {len(self._active)} active alerts)"
        )


@dataclass
class HealthReport:
    """One-call operational summary (``Database.health()``).

    ``ok`` is False exactly when a burn-rate alert is currently active.
    ``latency`` maps query kind -> quantile snapshot from the streaming
    sketches; ``audit`` summarizes the online recall auditor; ``slos``
    and ``alerts`` come from the :class:`SLOMonitor`; ``database`` is
    filled by the database facade (collection size, index staleness,
    plan-cache hit ratio); ``serving`` is attached by the serving front
    door (per-tenant dispositions and latency quantiles) when one wraps
    the database.
    """

    enabled: bool = True
    ok: bool = True
    latency: dict[str, dict[str, float]] = field(default_factory=dict)
    slow_queries: dict[str, Any] | None = None
    audit: dict[str, Any] | None = None
    slos: list[SLOStatus] = field(default_factory=list)
    alerts: list[SLOAlert] = field(default_factory=list)
    database: dict[str, Any] = field(default_factory=dict)
    serving: dict[str, Any] | None = None
    #: Attributed anomaly-detector firings (dicts from
    #: ``AnomalyMonitor.summary()``); ``None`` when no monitor runs.
    anomalies: list[dict[str, Any]] | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "enabled": self.enabled,
            "ok": self.ok,
            "latency": self.latency,
            "slow_queries": self.slow_queries,
            "audit": self.audit,
            "slos": [s.to_dict() for s in self.slos],
            "alerts": [a.to_dict() for a in self.alerts],
            "database": self.database,
            "serving": self.serving,
            "anomalies": self.anomalies,
        }

    def render(self) -> str:
        """Human-readable report (the worked example in the docs)."""
        lines = [f"health: {'OK' if self.ok else 'ALERTING'}"]
        if not self.enabled:
            lines.append("  observability disabled (no data)")
            return "\n".join(lines)
        if self.database:
            info = ", ".join(f"{k}={v}" for k, v in self.database.items())
            lines.append(f"  database: {info}")
        for kind, snap in sorted(self.latency.items()):
            qs = "  ".join(
                f"{name}={value * 1e3:.3f}ms"
                for name, value in snap.items()
                if name != "count"
            )
            lines.append(f"  latency[{kind}]: n={snap.get('count', 0):g}  {qs}")
        if self.audit is not None:
            lines.append(
                "  audit: {audited}/{considered} sampled,"
                " recall(window)={window_mean_recall:.3f},"
                " last={last_recall}".format(**{
                    "audited": self.audit.get("audited"),
                    "considered": self.audit.get("considered"),
                    "window_mean_recall":
                        self.audit.get("window_mean_recall", float("nan")),
                    "last_recall": self.audit.get("last_recall"),
                })
            )
        if self.slow_queries is not None:
            lines.append(
                "  slow queries: {recorded} over threshold"
                " ({threshold})".format(**self.slow_queries)
            )
        for status in self.slos:
            flag = "OK " if status.ok else "FIRING"
            lines.append(
                f"  slo[{status.slo.name}] {flag} {status.slo.describe()}"
                f"  mean={status.window_mean:.4g}"
                f"  good={status.good_fraction:.3f}"
                f"  n={status.observations}"
            )
        for alert in self.alerts:
            if alert.active:
                lines.append(f"  ALERT {alert!r}")
        if self.serving is not None:
            totals = self.serving.get("totals", {})
            info = ", ".join(f"{k}={v}" for k, v in totals.items())
            lines.append(f"  serving: {info}")
            for name in sorted(self.serving.get("tenants", {})):
                t = self.serving["tenants"][name]
                p99 = t.get("latency_seconds", {}).get("p99", float("nan"))
                lines.append(
                    f"  serving[{name}]: submitted={t.get('submitted')}"
                    f" ok={t.get('executed')} cached={t.get('cache_hits')}"
                    f" shed={t.get('shed')}"
                    f" rejected={sum(t.get('rejected', {}).values())}"
                    + (f" p99={p99 * 1e3:.3f}ms" if p99 == p99 else "")
                )
        if self.anomalies is not None:
            if not self.anomalies:
                lines.append("  anomalies: none")
            for anomaly in self.anomalies:
                refs = ",".join(str(t) for t in anomaly.get("trace_ids", []))
                lines.append(
                    "  ANOMALY {detector} phase={phase} tenant={tenant}"
                    " {detail} traces={refs}".format(
                        detector=anomaly.get("detector"),
                        phase=anomaly.get("phase"),
                        tenant=anomaly.get("tenant"),
                        detail=anomaly.get("detail", ""),
                        refs=refs or "-",
                    )
                )
        return "\n".join(lines)
