"""The observability bundle components carry: tracer + metrics + slow log.

One :class:`Observability` object is threaded through the database,
executor, distributed coordinator, and paged storage.  The default for
every component is the shared :data:`DISABLED` singleton, whose tracer
and registry are the no-op fast paths — an uninstrumented query pays a
handful of attribute lookups and nothing else (verified by the perf
smoke suite).

Metric catalog (all names are created lazily on first use; see
``docs/observability.md`` for labels and semantics):

========================================  =========  =======================
name                                      type       labels
========================================  =========  =======================
vdbms_queries_total                       counter    kind, strategy
vdbms_query_seconds                       histogram  kind
vdbms_distance_computations_total         counter    kind
vdbms_nodes_visited_total                 counter    kind
vdbms_query_page_reads_total              counter    kind
vdbms_partial_results_total               counter    kind
vdbms_plans_selected_total                counter    strategy
vdbms_slow_queries_total                  counter    kind
vdbms_replica_attempts_total              counter    outcome
vdbms_replica_retries_total               counter    —
vdbms_failovers_total                     counter    —
vdbms_breaker_skips_total                 counter    —
vdbms_breaker_transitions_total           counter    to
vdbms_shard_failures_total                counter    —
vdbms_degraded_queries_total              counter    —
vdbms_coverage_fraction                   histogram  —
vdbms_storage_page_reads_total            counter    —
vdbms_storage_page_read_retries_total     counter    —
vdbms_buffer_pool_requests_total          counter    outcome
========================================  =========  =======================
"""

from __future__ import annotations

from typing import Any, Callable

from .export import SlowQueryLog
from .metrics import MetricsRegistry, NOOP_METRICS, NoopMetricsRegistry
from .tracing import NOOP_TRACER, NoopTracer, Tracer

__all__ = ["DISABLED", "Observability"]

#: Histogram buckets for coverage fractions (0..1).
_COVERAGE_BUCKETS = (0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0)


class Observability:
    """Tracing + metrics + slow-query logging, enabled as a unit.

    Parameters
    ----------
    tracing / metrics:
        Enable the respective layer; a disabled layer is replaced by its
        no-op twin, so call sites never branch.
    slow_query_seconds:
        When set, queries at least this slow (wall or simulated,
        whichever the component reports) land in :attr:`slow_log`.
    clock:
        Clock for span timestamps (defaults to ``time.perf_counter``).
    """

    enabled = True

    def __init__(
        self,
        tracing: bool = True,
        metrics: bool = True,
        slow_query_seconds: float | None = None,
        clock: Callable[[], float] | None = None,
        slow_log_capacity: int = 256,
    ):
        self.tracer: Tracer | NoopTracer = (
            Tracer(clock=clock) if tracing else NOOP_TRACER
        )
        self.metrics: MetricsRegistry | NoopMetricsRegistry = (
            MetricsRegistry() if metrics else NOOP_METRICS
        )
        self.slow_log: SlowQueryLog | None = (
            SlowQueryLog(slow_query_seconds, slow_log_capacity)
            if slow_query_seconds is not None
            else None
        )

    # ------------------------------------------------------------ recording

    def record_query(
        self,
        kind: str,
        strategy: str,
        stats: Any,
        elapsed_seconds: float | None = None,
        simulated: bool = False,
    ) -> None:
        """Standard per-query rollup: counters, latency, slow-query log.

        ``stats`` is a :class:`~repro.core.types.SearchStats`;
        ``elapsed_seconds`` overrides ``stats.elapsed_seconds`` (the
        distributed coordinator passes simulated latency).
        """
        elapsed = (
            elapsed_seconds if elapsed_seconds is not None else stats.elapsed_seconds
        )
        m = self.metrics
        m.counter("vdbms_queries_total", "Queries executed").inc(
            kind=kind, strategy=strategy
        )
        m.histogram("vdbms_query_seconds", "Per-query latency").observe(
            elapsed, kind=kind
        )
        m.counter(
            "vdbms_distance_computations_total", "Similarity computations"
        ).inc(stats.distance_computations, kind=kind)
        m.counter("vdbms_nodes_visited_total", "Index nodes expanded").inc(
            stats.nodes_visited, kind=kind
        )
        m.counter(
            "vdbms_query_page_reads_total", "Disk pages read by queries"
        ).inc(stats.page_reads, kind=kind)
        if stats.partial:
            m.counter(
                "vdbms_partial_results_total", "Queries answered partially"
            ).inc(kind=kind)
        if self.slow_log is not None and self.slow_log.observe(
            kind, stats.plan_name or strategy, elapsed, stats, simulated=simulated
        ):
            m.counter("vdbms_slow_queries_total", "Queries over threshold").inc(
                kind=kind
            )

    def __repr__(self) -> str:
        slow = (
            f"{self.slow_log.threshold_seconds:g}s"
            if self.slow_log is not None
            else "off"
        )
        return (
            f"Observability(enabled={self.enabled},"
            f" tracing={self.tracer.enabled},"
            f" metrics={self.metrics.enabled}, slow_query={slow})"
        )


class _DisabledObservability(Observability):
    """The shared default: every layer is the no-op twin."""

    enabled = False

    def __init__(self):
        self.tracer = NOOP_TRACER
        self.metrics = NOOP_METRICS
        self.slow_log = None

    def record_query(self, *args: Any, **kwargs: Any) -> None:
        pass


DISABLED = _DisabledObservability()
