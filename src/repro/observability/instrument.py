"""The observability bundle components carry: tracer + metrics + slow log
+ latency sketches + recall auditor + SLO monitor.

One :class:`Observability` object is threaded through the database,
executor, distributed coordinator, and paged storage.  The default for
every component is the shared :data:`DISABLED` singleton, whose tracer
and registry are the no-op fast paths — an uninstrumented query pays a
handful of attribute lookups and nothing else (verified by the perf
smoke suite).

Metric catalog (all names are created lazily on first use; see
``docs/observability.md`` for labels and semantics):

========================================  =========  =======================
name                                      type       labels
========================================  =========  =======================
vdbms_queries_total                       counter    kind, strategy
vdbms_query_seconds                       histogram  kind
vdbms_distance_computations_total         counter    kind
vdbms_nodes_visited_total                 counter    kind
vdbms_query_page_reads_total              counter    kind
vdbms_partial_results_total               counter    kind
vdbms_plans_selected_total                counter    strategy
vdbms_plan_cache_hits_total               counter    —
vdbms_plan_cache_misses_total             counter    —
vdbms_slow_queries_total                  counter    kind
vdbms_replica_attempts_total              counter    outcome
vdbms_replica_retries_total               counter    —
vdbms_failovers_total                     counter    —
vdbms_breaker_skips_total                 counter    —
vdbms_breaker_transitions_total           counter    to
vdbms_shard_failures_total                counter    —
vdbms_degraded_queries_total              counter    —
vdbms_coverage_fraction                   histogram  —
vdbms_storage_page_reads_total            counter    —
vdbms_storage_page_read_retries_total     counter    —
vdbms_buffer_pool_requests_total          counter    outcome
vdbms_buffer_pool_hit_ratio               gauge      —
vdbms_audit_queries_total                 counter    collection, strategy, index
vdbms_audit_distance_computations_total   counter    collection, strategy, index
vdbms_audit_seconds_total                 counter    collection, strategy, index
vdbms_audit_recall                        histogram  collection, strategy, index
vdbms_slo_breaches_total                  counter    slo, severity
vdbms_slo_good_fraction                   gauge      slo
vdbms_serving_requests_total              counter    tenant, status
vdbms_serving_rejected_total              counter    tenant, reason
vdbms_serving_shed_total                  counter    tenant
vdbms_serving_batches_total               counter    mode
vdbms_serving_batch_size                  histogram  —
vdbms_serving_cache_hits_total            counter    tenant
vdbms_serving_cache_misses_total          counter    tenant
vdbms_serving_queue_depth                 gauge      tenant
vdbms_anomalies_total                     counter    detector
========================================  =========  =======================

The serving tier additionally passes ``labels={"tenant": ...}`` into
:meth:`Observability.record_query`, adding a ``tenant`` dimension to the
query-path counters for requests it dispatches.

The ``audit_*`` namespace is the cost-isolation contract: every
distance computation and second spent by the online recall auditor is
charged there, never to the query-path counters above it.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping, Sequence

from .export import SlowQueryLog
from .metrics import NOOP_METRICS, MetricsRegistry, NoopMetricsRegistry
from .quality import RecallAuditor
from .sketch import DEFAULT_QUANTILES, NOOP_SKETCH, QuantileSketch
from .slo import DEFAULT_BURN_POLICIES, SLO, HealthReport, SLOMonitor
from .tracing import NOOP_TRACER, NoopTracer, Tracer

__all__ = ["DISABLED", "Observability"]

#: Histogram buckets for coverage fractions (0..1).
_COVERAGE_BUCKETS = (0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0)

#: Samples a latency sketch needs before the "auto" slow-query
#: threshold starts trusting its p99.
_AUTO_SLOW_WARMUP = 30


class Observability:
    """Tracing + metrics + slow-query logging + quality, enabled as a unit.

    Parameters
    ----------
    tracing / metrics:
        Enable the respective layer; a disabled layer is replaced by its
        no-op twin, so call sites never branch.
    slow_query_seconds:
        When a number, queries at least this slow (wall or simulated,
        whichever the component reports) land in :attr:`slow_log`.  The
        string ``"auto"`` sets the threshold dynamically to the
        streaming p99 of all query latency observed so far (after a
        short warmup) — the log then captures exactly the tail.
    slow_log_keep:
        Eviction policy for the slow log: ``"newest"`` (ring buffer) or
        ``"slowest"`` (keep record-holders).
    audit_fraction / audit_k / audit_seed:
        When ``audit_fraction > 0``, an online :class:`RecallAuditor`
        samples that fraction of vector queries and re-executes them
        exactly, feeding recall@``audit_k`` into the ``audit_*`` metrics
        and the ``"recall"`` SLO signal.  Sampling is seeded and
        deterministic in query order.
    slos:
        Declarative :class:`~repro.observability.slo.SLO` objectives; a
        :class:`SLOMonitor` evaluates them over sliding windows with
        multi-window burn-rate alerting as signals arrive
        (``"latency"``/``"coverage"`` from ``record_query``,
        ``"recall"`` from the auditor).
    clock:
        Clock for span timestamps (defaults to ``time.perf_counter``).
    """

    enabled = True

    def __init__(
        self,
        tracing: bool = True,
        metrics: bool = True,
        slow_query_seconds: float | str | None = None,
        clock: Callable[[], float] | None = None,
        slow_log_capacity: int = 256,
        slow_log_keep: str = "newest",
        audit_fraction: float = 0.0,
        audit_k: int = 10,
        audit_seed: int = 0,
        slos: Sequence[SLO] | None = None,
        slo_policies=DEFAULT_BURN_POLICIES,
    ):
        self.tracer: Tracer | NoopTracer = (
            Tracer(clock=clock) if tracing else NOOP_TRACER
        )
        self.metrics: MetricsRegistry | NoopMetricsRegistry = (
            MetricsRegistry() if metrics else NOOP_METRICS
        )
        self._sketches: dict[str, QuantileSketch] = {}
        self.slo: SLOMonitor | None = (
            SLOMonitor(slos, metrics=self.metrics, tracer=self.tracer,
                       policies=slo_policies)
            if slos
            else None
        )
        self.auditor: RecallAuditor | None = (
            RecallAuditor(
                audit_fraction, k=audit_k, seed=audit_seed,
                metrics=self.metrics, tracer=self.tracer, slo=self.slo,
            )
            if audit_fraction > 0.0
            else None
        )
        if slow_query_seconds == "auto":
            self.slow_log: SlowQueryLog | None = SlowQueryLog(
                threshold_seconds=0.0,
                capacity=slow_log_capacity,
                keep=slow_log_keep,
                threshold_provider=self._auto_slow_threshold,
            )
            # Until warmup, the provider returns NaN and the static
            # threshold takes over; make that "log nothing".
            self.slow_log.threshold_seconds = math.inf
        elif slow_query_seconds is not None:
            self.slow_log = SlowQueryLog(
                float(slow_query_seconds), slow_log_capacity, keep=slow_log_keep
            )
        else:
            self.slow_log = None
        # Wired by the serving front door when journey telemetry runs;
        # health() then embeds the attributed anomaly list.
        self.anomalies = None

    # ------------------------------------------------------------- sketches

    def sketch(self, name: str) -> QuantileSketch:
        """Get-or-create the streaming latency sketch for one query kind."""
        found = self._sketches.get(name)
        if found is None:
            found = self._sketches[name] = QuantileSketch(DEFAULT_QUANTILES)
        return found

    def latency_quantile(self, q: float, kind: str | None = None) -> float:
        """Streaming quantile of query latency (NaN while empty).

        ``kind=None`` merges every kind's sketch into one answer.
        """
        if kind is not None:
            found = self._sketches.get(kind)
            return found.quantile(q) if found is not None else math.nan
        merged: QuantileSketch | None = None
        for sk in self._sketches.values():
            if merged is None:
                merged = QuantileSketch(sk.quantiles)
            merged.merge(sk)
        return merged.quantile(q) if merged is not None else math.nan

    def latency_snapshots(self) -> dict[str, dict[str, float]]:
        """Per-kind quantile snapshots for health reporting."""
        out: dict[str, dict[str, float]] = {}
        for kind, sk in self._sketches.items():
            snap: dict[str, float] = {"count": float(sk.count)}
            for q, value in sk.quantiles_snapshot().items():
                snap[f"p{q * 100:g}"] = value
            out[kind] = snap
        return out

    def _auto_slow_threshold(self) -> float:
        merged_count = sum(sk.count for sk in self._sketches.values())
        if merged_count < _AUTO_SLOW_WARMUP:
            return math.nan
        return self.latency_quantile(0.99)

    # ------------------------------------------------------------ recording

    def record_query(
        self,
        kind: str,
        strategy: str,
        stats: Any,
        elapsed_seconds: float | None = None,
        simulated: bool = False,
        labels: Mapping[str, Any] | None = None,
        trace_id: int | None = None,
    ) -> None:
        """Standard per-query rollup: counters, latency, slow-query log.

        ``stats`` is a :class:`~repro.core.types.SearchStats`;
        ``elapsed_seconds`` overrides ``stats.elapsed_seconds`` (the
        distributed coordinator passes simulated latency).  ``labels``
        adds caller dimensions (e.g. the serving tier's ``tenant``) to
        every metric recorded here; they ride the normal registry, so
        label escaping and exposition come for free.  ``trace_id``
        attaches a journey exemplar to the latency histogram bucket and
        cross-references any slow-log entry.
        """
        elapsed = (
            elapsed_seconds if elapsed_seconds is not None else stats.elapsed_seconds
        )
        extra = dict(labels) if labels else {}
        m = self.metrics
        m.counter("vdbms_queries_total", "Queries executed").inc(
            kind=kind, strategy=strategy, **extra
        )
        m.histogram("vdbms_query_seconds", "Per-query latency").observe(
            elapsed, exemplar=trace_id, kind=kind, **extra
        )
        if elapsed == elapsed:  # skip NaN (no elapsed reported)
            self.sketch(kind).observe(elapsed)
        m.counter(
            "vdbms_distance_computations_total", "Similarity computations"
        ).inc(stats.distance_computations, kind=kind, **extra)
        m.counter("vdbms_nodes_visited_total", "Index nodes expanded").inc(
            stats.nodes_visited, kind=kind, **extra
        )
        m.counter(
            "vdbms_query_page_reads_total", "Disk pages read by queries"
        ).inc(stats.page_reads, kind=kind, **extra)
        if stats.partial:
            m.counter(
                "vdbms_partial_results_total", "Queries answered partially"
            ).inc(kind=kind, **extra)
        if self.slo is not None:
            if elapsed == elapsed:
                self.slo.observe("latency", elapsed)
            coverage = getattr(stats, "coverage_fraction", None)
            if coverage is not None:
                self.slo.observe("coverage", coverage)
        if self.slow_log is not None and self.slow_log.observe(
            kind, stats.plan_name or strategy, elapsed, stats,
            simulated=simulated, tenant=extra.get("tenant"), trace_id=trace_id,
        ):
            m.counter("vdbms_slow_queries_total", "Queries over threshold").inc(
                kind=kind
            )

    # --------------------------------------------------------------- health

    def health(self) -> HealthReport:
        """Operational summary: latency, audited quality, SLOs, alerts."""
        report = HealthReport(
            enabled=True,
            ok=self.slo.ok if self.slo is not None else True,
            latency=self.latency_snapshots(),
        )
        if self.slow_log is not None:
            threshold = self.slow_log.current_threshold()
            report.slow_queries = {
                "observed": self.slow_log.observed,
                "recorded": self.slow_log.recorded,
                "threshold": (
                    f"{threshold * 1e3:.3f}ms"
                    if threshold == threshold and threshold != math.inf
                    else "warming up"
                ),
            }
        if self.auditor is not None:
            report.audit = self.auditor.summary()
        if self.slo is not None:
            report.slos = self.slo.status()
            report.alerts = list(self.slo.alerts)
        if self.anomalies is not None:
            report.anomalies = self.anomalies.summary()
        return report

    def __repr__(self) -> str:
        slow = (
            "auto"
            if self.slow_log is not None and self.slow_log.threshold_provider
            else f"{self.slow_log.threshold_seconds:g}s"
            if self.slow_log is not None
            else "off"
        )
        return (
            f"Observability(enabled={self.enabled},"
            f" tracing={self.tracer.enabled},"
            f" metrics={self.metrics.enabled}, slow_query={slow},"
            f" audit={'on' if self.auditor else 'off'},"
            f" slos={len(self.slo.slos) if self.slo else 0})"
        )


class _DisabledObservability(Observability):
    """The shared default: every layer is the no-op twin."""

    enabled = False

    def __init__(self):
        self.tracer = NOOP_TRACER
        self.metrics = NOOP_METRICS
        self.slow_log = None
        self.auditor = None
        self.slo = None
        self.anomalies = None
        self._sketches = {}

    def record_query(self, *args: Any, **kwargs: Any) -> None:
        pass

    def sketch(self, name: str):
        return NOOP_SKETCH

    def latency_quantile(self, q: float, kind: str | None = None) -> float:
        return math.nan

    def health(self) -> HealthReport:
        return HealthReport(enabled=False, ok=True)


DISABLED = _DisabledObservability()
