"""Online recall auditing: measure result *quality* in production.

Latency observability (PR 3) cannot see the dominant VDBMS failure
class: an index that silently drifts to recall 0.4 after deletes, a bad
rebuild, or a mistuned probe count looks perfectly healthy in traces
and metrics.  The :class:`RecallAuditor` closes that gap the way
production systems do — by sampling a small seeded fraction of live
queries and re-executing them **exactly** (a flat scan over the same
liveness/predicate mask the query saw), then comparing the served top-k
against the exact top-k.

Cost isolation is the design constraint: the audit scan must never
pollute the query path's own accounting.  The auditor therefore

* runs *after* the query's ``SearchStats`` (including
  ``elapsed_seconds``) is finalized and after ``record_query`` has
  emitted the ordinary metrics;
* never touches the query's ``SearchStats`` object;
* charges all of its work to a dedicated ``audit_*`` metric namespace
  (``vdbms_audit_queries_total``, ``vdbms_audit_seconds_total``,
  ``vdbms_audit_distance_computations_total``, ``vdbms_audit_recall``).

Sampling is deterministic: one RNG draw per *considered* query,
regardless of whether the query is sampled, so the audited subset
depends only on ``(seed, query order)`` — replaying the same workload
audits the same queries.

Recall@k here is the standard ANN-benchmarks overlap measure
(|served ∩ exact| / |exact|), matching ``repro.bench.metrics.recall_at_k``
so online audited recall and offline bench recall are directly
comparable (E20 asserts they agree within ±0.05 on a degraded index).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Sequence

import numpy as np

__all__ = ["AuditRecord", "RecallAuditor"]

#: Recall lives in [0, 1]; buckets chosen so an SLO at 0.9 is a bucket
#: boundary.
AUDIT_RECALL_BUCKETS = (0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)


class AuditRecord:
    """One audited query: what was served vs. what was exact."""

    __slots__ = ("recall", "k", "served", "exact", "strategy", "index")

    def __init__(self, recall, k, served, exact, strategy, index):
        self.recall = recall
        self.k = k
        self.served = served
        self.exact = exact
        self.strategy = strategy
        self.index = index

    def to_dict(self) -> dict[str, Any]:
        return {
            "recall": self.recall,
            "k": self.k,
            "served": list(self.served),
            "exact": list(self.exact),
            "strategy": self.strategy,
            "index": self.index,
        }

    def __repr__(self) -> str:
        return (
            f"AuditRecord(recall={self.recall:.3f}, k={self.k},"
            f" strategy={self.strategy!r})"
        )


class RecallAuditor:
    """Samples live queries and audits their recall against a flat scan.

    Parameters
    ----------
    fraction:
        Probability that any considered query is audited (0 disables
        sampling but keeps the auditor queryable).
    k:
        Audit depth: recall@k is computed over the first ``k`` served
        hits against the exact top-k (capped at the query's own k and
        at the number of eligible rows).
    seed:
        Seed for the sampling RNG — fixed seed + fixed query order =
        fixed audited subset.
    window:
        How many recent audits feed ``window_mean_recall()`` and the
        SLO signal history.
    """

    def __init__(
        self,
        fraction: float,
        k: int = 10,
        seed: int = 0,
        window: int = 256,
        metrics: Any = None,
        tracer: Any = None,
        slo: Any = None,
        collection_label: str = "default",
    ):
        from .metrics import NOOP_METRICS
        from .tracing import NOOP_TRACER

        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"audit fraction must be in [0, 1], got {fraction}")
        if k <= 0:
            raise ValueError("audit k must be positive")
        self.fraction = float(fraction)
        self.k = int(k)
        self.seed = int(seed)
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.slo = slo
        self.collection_label = collection_label
        self._rng = np.random.default_rng(self.seed)
        self.considered = 0
        self.audited = 0
        self.last_recall: float | None = None
        self.recent: deque[AuditRecord] = deque(maxlen=int(window))

    # ----------------------------------------------------------- entry point

    def consider(
        self,
        query: np.ndarray,
        k: int,
        hits: Sequence[Any],
        *,
        collection: Any,
        score: Any,
        predicate: Any = None,
        strategy: str = "",
        index: str | None = None,
    ) -> AuditRecord | None:
        """Maybe audit one served query; returns the record if sampled.

        Exactly one RNG draw happens per call so sampling is a pure
        function of (seed, call order).  Returns ``None`` when the
        query is not sampled or has nothing to audit against.
        """
        self.considered += 1
        draw = self._rng.random()
        if self.fraction <= 0.0 or draw >= self.fraction:
            return None
        return self.audit(
            query, k, hits,
            collection=collection, score=score, predicate=predicate,
            strategy=strategy, index=index,
        )

    # -------------------------------------------------------------- the scan

    def audit(
        self,
        query: np.ndarray,
        k: int,
        hits: Sequence[Any],
        *,
        collection: Any,
        score: Any,
        predicate: Any = None,
        strategy: str = "",
        index: str | None = None,
    ) -> AuditRecord | None:
        """Re-execute one query exactly and record recall@k.

        The exact scan honors the same liveness + predicate mask the
        served query saw, so recall measures the *index/strategy*
        approximation, not filter semantics.
        """
        # Local import: the kernels module sits under repro.index, and
        # importing it at module scope would cycle through repro.core.
        from ..index._kernels import topk_indices

        started = time.perf_counter()
        mask = collection.predicate_mask(predicate)
        eligible = np.flatnonzero(mask)
        depth = min(self.k, int(k), eligible.size)
        if depth == 0:
            return None
        distances = score.pairwise(
            np.asarray(query)[None, :], collection.vectors[eligible]
        )[0]
        order = topk_indices(distances, depth)
        exact_ids = frozenset(int(eligible[i]) for i in order)
        served_ids = frozenset(int(h.id) for h in hits[:depth])
        recall = len(served_ids & exact_ids) / depth
        elapsed = time.perf_counter() - started

        labels = {
            "collection": self.collection_label,
            "strategy": strategy or "unknown",
            "index": index or "none",
        }
        self.metrics.counter(
            "vdbms_audit_queries_total",
            "Live queries re-executed exactly by the recall auditor.",
        ).inc(**labels)
        self.metrics.counter(
            "vdbms_audit_distance_computations_total",
            "Exact-scan distance computations charged to auditing.",
        ).inc(int(eligible.size), **labels)
        self.metrics.counter(
            "vdbms_audit_seconds_total",
            "Wall time spent in audit scans (never charged to queries).",
        ).inc(elapsed, **labels)
        self.metrics.histogram(
            "vdbms_audit_recall",
            "Audited recall@k of served results vs. exact flat scan.",
            buckets=AUDIT_RECALL_BUCKETS,
        ).observe(recall, **labels)

        span = self.tracer.start_span(
            "audit", kind="recall", k=depth, **labels,
        )
        span.event(
            "audited", recall=recall, served=len(served_ids),
            exact=len(exact_ids), eligible=int(eligible.size),
        )
        span.finish()

        record = AuditRecord(
            recall=recall, k=depth,
            served=tuple(sorted(served_ids)), exact=tuple(sorted(exact_ids)),
            strategy=strategy or "unknown", index=index,
        )
        self.audited += 1
        self.last_recall = recall
        self.recent.append(record)
        if self.slo is not None:
            self.slo.observe("recall", recall)
        return record

    # --------------------------------------------------------------- summary

    def window_mean_recall(self) -> float:
        if not self.recent:
            return float("nan")
        return sum(r.recall for r in self.recent) / len(self.recent)

    def summary(self) -> dict[str, Any]:
        return {
            "fraction": self.fraction,
            "k": self.k,
            "seed": self.seed,
            "considered": self.considered,
            "audited": self.audited,
            "last_recall": self.last_recall,
            "window_mean_recall": self.window_mean_recall(),
            "window": len(self.recent),
        }

    def __repr__(self) -> str:
        return (
            f"RecallAuditor(fraction={self.fraction}, k={self.k},"
            f" audited={self.audited}/{self.considered})"
        )
