"""Explicit-propagation tracing for the query path.

The survey frames operator crossovers and plan selection as *empirical*
questions: answering them needs to know where inside a plan the
per-query quantities (distance computations, nodes visited, page reads,
predicate work) are spent, not just their totals.  This module provides
the span layer that attributes those quantities to operators:

* :class:`Span` — one timed unit of work with a name, attributes,
  point-in-time events, and (optionally) the delta of a
  :class:`~repro.core.types.SearchStats` object over the span's
  lifetime.  Spans are context managers; nesting is *explicit* — a
  child is created via :meth:`Span.child` (no thread-local ambient
  context), so the propagation path is visible in the code.
* :class:`Tracer` — creates spans, assigns ids, collects finished
  spans, and owns the clock (``time.perf_counter`` by default; a
  simulated clock can be injected where one exists).
* :data:`NOOP_SPAN` / :data:`NOOP_TRACER` — the disabled fast path.
  Every instrumented call site works against these singletons when
  observability is off; each call is one attribute lookup plus a no-op
  method call, so the query path pays no measurable cost
  (``benchmarks/bench_perf_suite.py`` verifies this).

Request journeys add two ingredients on top of the tree:

* **trace ids** — every span carries a ``trace_id``, inherited from its
  parent (a root span starts a fresh trace).  The serving front door
  stamps a request's trace id on everything that happens to it, so a
  latency exemplar (histogram bucket → trace id) is one hop from the
  request's full journey.
* **span links** (:class:`SpanLink`) — a non-parental edge between
  spans in *different* traces.  The coalescer's fan-in is the canonical
  use: one batch span links to its N member spans (and each member
  links back to exactly one batch span) without pretending the batch is
  any single request's child.

Span-tree well-formedness (every span's parent exists, no cycles,
child intervals nested inside the parent's) is checkable via
:func:`validate_span_tree`; link well-formedness (every link points at
a span in the set, never at the linking span itself) via
:func:`validate_span_links`; the property tests drive both.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable

__all__ = [
    "NOOP_SPAN",
    "NOOP_TRACER",
    "STAT_FIELDS",
    "NoopSpan",
    "NoopTracer",
    "Span",
    "SpanEvent",
    "SpanLink",
    "Tracer",
    "validate_span_links",
    "validate_span_tree",
]

#: The SearchStats counters a span can attribute to itself.  Kept as a
#: name tuple (not an import of core.types) so this module stays
#: import-cycle-free under ``repro.core`` -> optimizer -> observability.
STAT_FIELDS = (
    "distance_computations",
    "nodes_visited",
    "page_reads",
    "candidates_examined",
    "predicate_evaluations",
    "predicate_rejections",
)


class SpanEvent:
    """A point-in-time annotation on a span (retry, failover, ...)."""

    __slots__ = ("name", "timestamp", "attributes")

    def __init__(self, name: str, timestamp: float, attributes: dict[str, Any]):
        self.name = name
        self.timestamp = timestamp
        self.attributes = attributes

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "timestamp": self.timestamp,
            "attributes": self.attributes,
        }

    def __repr__(self) -> str:
        return f"SpanEvent({self.name!r}, t={self.timestamp:.6f}, {self.attributes})"


class SpanLink:
    """A non-parental edge to a span in another trace.

    Parent/child edges carry the *containment* story (this work happened
    inside that work); links carry the *causality across traces* story —
    a coalesced batch span links to the N member request spans it served,
    and each member links back to the one batch that carried it.
    """

    __slots__ = ("span_id", "trace_id", "attributes")

    def __init__(self, span_id: int, trace_id: int, attributes: dict[str, Any]):
        self.span_id = span_id
        self.trace_id = trace_id
        self.attributes = attributes

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "attributes": self.attributes,
        }

    def __repr__(self) -> str:
        return f"SpanLink(span=#{self.span_id}, trace={self.trace_id}, {self.attributes})"


class Span:
    """One timed, attributed unit of work inside a trace."""

    __slots__ = (
        "tracer",
        "name",
        "span_id",
        "trace_id",
        "parent_id",
        "start",
        "end",
        "attributes",
        "events",
        "links",
        "error",
        "_stats",
        "_stats_at_start",
        "stats_delta",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        trace_id: int,
        parent_id: int | None,
        start: float,
        attributes: dict[str, Any],
    ):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.attributes = attributes
        self.events: list[SpanEvent] = []
        self.links: list[SpanLink] = []
        self.error: str | None = None
        self._stats = None
        self._stats_at_start: tuple[int, ...] | None = None
        self.stats_delta: dict[str, int] | None = None

    # ------------------------------------------------------------- recording

    def child(self, name: str, **attributes: Any) -> "Span":
        """Start a child span (explicit propagation — no ambient context)."""
        return self.tracer.start_span(name, parent=self, **attributes)

    def set(self, **attributes: Any) -> "Span":
        self.attributes.update(attributes)
        return self

    def event(self, name: str, **attributes: Any) -> "Span":
        """Record a point-in-time event (retry, failover, breaker trip...)."""
        self.events.append(SpanEvent(name, self.tracer.now(), attributes))
        return self

    def link(self, other: "Span | NoopSpan", **attributes: Any) -> "Span":
        """Record a non-parental edge to ``other`` (usually another trace).

        Linking is one-directional; the coalescer records both
        directions explicitly (batch → members with ``role="member"``
        per link target, member → batch with ``role="batch"``) so each
        side's journey is walkable without a global span index.
        """
        self.links.append(SpanLink(other.span_id, other.trace_id, attributes))
        return self

    def set_stats_delta(self, delta: dict[str, int]) -> "Span":
        """Attribute an out-of-band counter delta to this span.

        Used where the span's work was measured elsewhere — e.g. a
        coalesced member's largest-remainder share of the batch totals —
        instead of live via :meth:`attach_stats`.  A subsequent
        :meth:`finish` keeps this value unless live stats were attached.
        """
        self.stats_delta = dict(delta)
        return self

    def attach_stats(self, stats: Any) -> "Span":
        """Snapshot ``stats`` now; the delta to span end is attributed here.

        The attached object is any :class:`SearchStats`-shaped object;
        only the :data:`STAT_FIELDS` counters are read.  Multiple spans
        may attach the same object — the profiler's *self* accounting
        (total minus children) then partitions the counters exactly.
        """
        self._stats = stats
        self._stats_at_start = tuple(getattr(stats, f) for f in STAT_FIELDS)
        return self

    def finish(self) -> "Span":
        if self.end is None:
            self.end = self.tracer.now()
            if self._stats is not None:
                now = tuple(getattr(self._stats, f) for f in STAT_FIELDS)
                self.stats_delta = {
                    f: now[i] - self._stats_at_start[i]
                    for i, f in enumerate(STAT_FIELDS)
                }
            self.tracer._collect(self)
        return self

    # ------------------------------------------------------- context manager

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.error = f"{type(exc).__name__}: {exc}"
        self.finish()
        return False

    # ----------------------------------------------------------------- views

    @property
    def duration_seconds(self) -> float:
        return 0.0 if self.end is None else self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (one trace-export line)."""
        out: dict[str, Any] = {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration_seconds": self.duration_seconds,
            "attributes": self.attributes,
        }
        if self.stats_delta is not None:
            out["stats"] = self.stats_delta
        if self.events:
            out["events"] = [e.to_dict() for e in self.events]
        if self.links:
            out["links"] = [link.to_dict() for link in self.links]
        if self.error is not None:
            out["error"] = self.error
        return out

    def __repr__(self) -> str:
        state = "open" if self.end is None else f"{self.duration_seconds * 1e3:.3f}ms"
        return f"Span(#{self.span_id} {self.name!r} parent={self.parent_id} {state})"


class Tracer:
    """Creates, times, and collects spans for one trace session.

    Parameters
    ----------
    clock:
        Zero-arg callable returning monotonically non-decreasing floats.
        Defaults to ``time.perf_counter``; the distributed layer injects
        simulated-clock readings as span *attributes* instead (wall
        nesting stays truthful, simulated time rides along).
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock if clock is not None else time.perf_counter
        self._next_id = 1
        self._next_trace = 1
        self.spans: list[Span] = []  # finished spans, in finish order

    def now(self) -> float:
        return self._clock()

    def start_span(
        self,
        name: str,
        parent: "Span | None" = None,
        trace_id: int | None = None,
        **attributes: Any,
    ) -> Span:
        """Start a span.

        Trace context propagates with the parent edge: a child inherits
        its parent's ``trace_id``, a root starts a fresh trace.  Pass an
        explicit ``trace_id`` to join an existing trace without a parent
        edge (the serving front door does this when work for a request
        resumes after queueing).
        """
        if trace_id is None:
            if parent is not None:
                trace_id = parent.trace_id
            else:
                trace_id = self._next_trace
                self._next_trace += 1
        span = Span(
            tracer=self,
            name=name,
            span_id=self._next_id,
            trace_id=trace_id,
            parent_id=None if parent is None else parent.span_id,
            start=self.now(),
            attributes=attributes,
        )
        self._next_id += 1
        return span

    def _collect(self, span: Span) -> None:
        self.spans.append(span)

    def clear(self) -> None:
        self.spans = []

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def __len__(self) -> int:
        return len(self.spans)


class NoopSpan:
    """The disabled-path span: every operation is a cheap no-op."""

    __slots__ = ()

    # Mirror the Span read surface so rendering code never branches.
    tracer = None
    name = "noop"
    span_id = 0
    trace_id = 0
    parent_id = None
    start = 0.0
    end = 0.0
    attributes: dict[str, Any] = {}
    events: tuple = ()
    links: tuple = ()
    error = None
    stats_delta = None
    duration_seconds = 0.0

    def child(self, name: str, **attributes: Any) -> "NoopSpan":
        return self

    def set(self, **attributes: Any) -> "NoopSpan":
        return self

    def event(self, name: str, **attributes: Any) -> "NoopSpan":
        return self

    def link(self, other: Any, **attributes: Any) -> "NoopSpan":
        return self

    def set_stats_delta(self, delta: dict[str, int]) -> "NoopSpan":
        return self

    def attach_stats(self, stats: Any) -> "NoopSpan":
        return self

    def finish(self) -> "NoopSpan":
        return self

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NoopTracer:
    """The disabled-path tracer: hands out :data:`NOOP_SPAN` forever."""

    enabled = False
    spans: tuple = ()

    def now(self) -> float:
        return 0.0

    def start_span(
        self, name: str, parent=None, trace_id=None, **attributes: Any
    ) -> NoopSpan:
        return NOOP_SPAN

    def clear(self) -> None:
        pass

    def roots(self) -> list:
        return []

    def __len__(self) -> int:
        return 0


NOOP_SPAN = NoopSpan()
NOOP_TRACER = NoopTracer()


def validate_span_tree(spans: Iterable[Span]) -> list[str]:
    """Check well-formedness of a set of finished spans.

    Returns a list of human-readable problems (empty = well-formed):

    * every span's ``parent_id`` refers to a span in the set;
    * the parent relation is acyclic;
    * every span is finished and its interval is non-negative;
    * each child's ``[start, end]`` nests inside its parent's.
    """
    problems: list[str] = []
    by_id: dict[int, Span] = {}
    for span in spans:
        if span.span_id in by_id:
            problems.append(f"duplicate span id {span.span_id}")
        by_id[span.span_id] = span
    for span in by_id.values():
        if span.end is None:
            problems.append(f"span #{span.span_id} {span.name!r} never finished")
            continue
        if span.end < span.start:
            problems.append(f"span #{span.span_id} {span.name!r} ends before it starts")
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            problems.append(
                f"span #{span.span_id} {span.name!r} has unknown parent"
                f" #{span.parent_id}"
            )
            continue
        if parent.end is not None and not (
            parent.start <= span.start and span.end <= parent.end
        ):
            problems.append(
                f"span #{span.span_id} {span.name!r} interval"
                f" [{span.start}, {span.end}] escapes parent #{parent.span_id}"
                f" [{parent.start}, {parent.end}]"
            )
    # Cycle check over the parent relation.
    for span in by_id.values():
        seen: set[int] = set()
        current: Span | None = span
        while current is not None and current.parent_id is not None:
            if current.span_id in seen:
                problems.append(f"cycle through span #{span.span_id}")
                break
            seen.add(current.span_id)
            current = by_id.get(current.parent_id)
    return problems


def validate_span_links(spans: Iterable[Span]) -> list[str]:
    """Check link well-formedness over a set of spans.

    Returns human-readable problems (empty = well-formed):

    * every link's target span exists in the set;
    * a span never links to itself;
    * the link's recorded ``trace_id`` matches the target's;
    * parent edges stay within one trace (a child inheriting a
      different trace id than its parent is a propagation bug).
    """
    problems: list[str] = []
    by_id = {span.span_id: span for span in spans}
    for span in by_id.values():
        if span.parent_id is not None:
            parent = by_id.get(span.parent_id)
            if parent is not None and parent.trace_id != span.trace_id:
                problems.append(
                    f"span #{span.span_id} {span.name!r} trace {span.trace_id}"
                    f" differs from parent #{parent.span_id}"
                    f" trace {parent.trace_id}"
                )
        for link in span.links:
            if link.span_id == span.span_id:
                problems.append(f"span #{span.span_id} {span.name!r} links to itself")
                continue
            target = by_id.get(link.span_id)
            if target is None:
                problems.append(
                    f"span #{span.span_id} {span.name!r} links to unknown"
                    f" span #{link.span_id}"
                )
                continue
            if target.trace_id != link.trace_id:
                problems.append(
                    f"span #{span.span_id} link records trace {link.trace_id}"
                    f" but target #{target.span_id} is in trace {target.trace_id}"
                )
    return problems
