"""Explicit-propagation tracing for the query path.

The survey frames operator crossovers and plan selection as *empirical*
questions: answering them needs to know where inside a plan the
per-query quantities (distance computations, nodes visited, page reads,
predicate work) are spent, not just their totals.  This module provides
the span layer that attributes those quantities to operators:

* :class:`Span` — one timed unit of work with a name, attributes,
  point-in-time events, and (optionally) the delta of a
  :class:`~repro.core.types.SearchStats` object over the span's
  lifetime.  Spans are context managers; nesting is *explicit* — a
  child is created via :meth:`Span.child` (no thread-local ambient
  context), so the propagation path is visible in the code.
* :class:`Tracer` — creates spans, assigns ids, collects finished
  spans, and owns the clock (``time.perf_counter`` by default; a
  simulated clock can be injected where one exists).
* :data:`NOOP_SPAN` / :data:`NOOP_TRACER` — the disabled fast path.
  Every instrumented call site works against these singletons when
  observability is off; each call is one attribute lookup plus a no-op
  method call, so the query path pays no measurable cost
  (``benchmarks/bench_perf_suite.py`` verifies this).

Span-tree well-formedness (every span's parent exists, no cycles,
child intervals nested inside the parent's) is checkable via
:func:`validate_span_tree`; the property tests drive it.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable

__all__ = [
    "NOOP_SPAN",
    "NOOP_TRACER",
    "STAT_FIELDS",
    "NoopSpan",
    "NoopTracer",
    "Span",
    "SpanEvent",
    "Tracer",
    "validate_span_tree",
]

#: The SearchStats counters a span can attribute to itself.  Kept as a
#: name tuple (not an import of core.types) so this module stays
#: import-cycle-free under ``repro.core`` -> optimizer -> observability.
STAT_FIELDS = (
    "distance_computations",
    "nodes_visited",
    "page_reads",
    "candidates_examined",
    "predicate_evaluations",
    "predicate_rejections",
)


class SpanEvent:
    """A point-in-time annotation on a span (retry, failover, ...)."""

    __slots__ = ("name", "timestamp", "attributes")

    def __init__(self, name: str, timestamp: float, attributes: dict[str, Any]):
        self.name = name
        self.timestamp = timestamp
        self.attributes = attributes

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "timestamp": self.timestamp,
            "attributes": self.attributes,
        }

    def __repr__(self) -> str:
        return f"SpanEvent({self.name!r}, t={self.timestamp:.6f}, {self.attributes})"


class Span:
    """One timed, attributed unit of work inside a trace."""

    __slots__ = (
        "tracer",
        "name",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attributes",
        "events",
        "error",
        "_stats",
        "_stats_at_start",
        "stats_delta",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        start: float,
        attributes: dict[str, Any],
    ):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.attributes = attributes
        self.events: list[SpanEvent] = []
        self.error: str | None = None
        self._stats = None
        self._stats_at_start: tuple[int, ...] | None = None
        self.stats_delta: dict[str, int] | None = None

    # ------------------------------------------------------------- recording

    def child(self, name: str, **attributes: Any) -> "Span":
        """Start a child span (explicit propagation — no ambient context)."""
        return self.tracer.start_span(name, parent=self, **attributes)

    def set(self, **attributes: Any) -> "Span":
        self.attributes.update(attributes)
        return self

    def event(self, name: str, **attributes: Any) -> "Span":
        """Record a point-in-time event (retry, failover, breaker trip...)."""
        self.events.append(SpanEvent(name, self.tracer.now(), attributes))
        return self

    def attach_stats(self, stats: Any) -> "Span":
        """Snapshot ``stats`` now; the delta to span end is attributed here.

        The attached object is any :class:`SearchStats`-shaped object;
        only the :data:`STAT_FIELDS` counters are read.  Multiple spans
        may attach the same object — the profiler's *self* accounting
        (total minus children) then partitions the counters exactly.
        """
        self._stats = stats
        self._stats_at_start = tuple(getattr(stats, f) for f in STAT_FIELDS)
        return self

    def finish(self) -> "Span":
        if self.end is None:
            self.end = self.tracer.now()
            if self._stats is not None:
                now = tuple(getattr(self._stats, f) for f in STAT_FIELDS)
                self.stats_delta = {
                    f: now[i] - self._stats_at_start[i]
                    for i, f in enumerate(STAT_FIELDS)
                }
            self.tracer._collect(self)
        return self

    # ------------------------------------------------------- context manager

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.error = f"{type(exc).__name__}: {exc}"
        self.finish()
        return False

    # ----------------------------------------------------------------- views

    @property
    def duration_seconds(self) -> float:
        return 0.0 if self.end is None else self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (one trace-export line)."""
        out: dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration_seconds": self.duration_seconds,
            "attributes": self.attributes,
        }
        if self.stats_delta is not None:
            out["stats"] = self.stats_delta
        if self.events:
            out["events"] = [e.to_dict() for e in self.events]
        if self.error is not None:
            out["error"] = self.error
        return out

    def __repr__(self) -> str:
        state = "open" if self.end is None else f"{self.duration_seconds * 1e3:.3f}ms"
        return f"Span(#{self.span_id} {self.name!r} parent={self.parent_id} {state})"


class Tracer:
    """Creates, times, and collects spans for one trace session.

    Parameters
    ----------
    clock:
        Zero-arg callable returning monotonically non-decreasing floats.
        Defaults to ``time.perf_counter``; the distributed layer injects
        simulated-clock readings as span *attributes* instead (wall
        nesting stays truthful, simulated time rides along).
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock if clock is not None else time.perf_counter
        self._next_id = 1
        self.spans: list[Span] = []  # finished spans, in finish order

    def now(self) -> float:
        return self._clock()

    def start_span(
        self, name: str, parent: "Span | None" = None, **attributes: Any
    ) -> Span:
        span = Span(
            tracer=self,
            name=name,
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            start=self.now(),
            attributes=attributes,
        )
        self._next_id += 1
        return span

    def _collect(self, span: Span) -> None:
        self.spans.append(span)

    def clear(self) -> None:
        self.spans = []

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def __len__(self) -> int:
        return len(self.spans)


class NoopSpan:
    """The disabled-path span: every operation is a cheap no-op."""

    __slots__ = ()

    # Mirror the Span read surface so rendering code never branches.
    tracer = None
    name = "noop"
    span_id = 0
    parent_id = None
    start = 0.0
    end = 0.0
    attributes: dict[str, Any] = {}
    events: tuple = ()
    error = None
    stats_delta = None
    duration_seconds = 0.0

    def child(self, name: str, **attributes: Any) -> "NoopSpan":
        return self

    def set(self, **attributes: Any) -> "NoopSpan":
        return self

    def event(self, name: str, **attributes: Any) -> "NoopSpan":
        return self

    def attach_stats(self, stats: Any) -> "NoopSpan":
        return self

    def finish(self) -> "NoopSpan":
        return self

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NoopTracer:
    """The disabled-path tracer: hands out :data:`NOOP_SPAN` forever."""

    enabled = False
    spans: tuple = ()

    def now(self) -> float:
        return 0.0

    def start_span(self, name: str, parent=None, **attributes: Any) -> NoopSpan:
        return NOOP_SPAN

    def clear(self) -> None:
        pass

    def roots(self) -> list:
        return []

    def __len__(self) -> int:
        return 0


NOOP_SPAN = NoopSpan()
NOOP_TRACER = NoopTracer()


def validate_span_tree(spans: Iterable[Span]) -> list[str]:
    """Check well-formedness of a set of finished spans.

    Returns a list of human-readable problems (empty = well-formed):

    * every span's ``parent_id`` refers to a span in the set;
    * the parent relation is acyclic;
    * every span is finished and its interval is non-negative;
    * each child's ``[start, end]`` nests inside its parent's.
    """
    problems: list[str] = []
    by_id: dict[int, Span] = {}
    for span in spans:
        if span.span_id in by_id:
            problems.append(f"duplicate span id {span.span_id}")
        by_id[span.span_id] = span
    for span in by_id.values():
        if span.end is None:
            problems.append(f"span #{span.span_id} {span.name!r} never finished")
            continue
        if span.end < span.start:
            problems.append(f"span #{span.span_id} {span.name!r} ends before it starts")
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            problems.append(
                f"span #{span.span_id} {span.name!r} has unknown parent"
                f" #{span.parent_id}"
            )
            continue
        if parent.end is not None and not (
            parent.start <= span.start and span.end <= parent.end
        ):
            problems.append(
                f"span #{span.span_id} {span.name!r} interval"
                f" [{span.start}, {span.end}] escapes parent #{parent.span_id}"
                f" [{parent.start}, {parent.end}]"
            )
    # Cycle check over the parent relation.
    for span in by_id.values():
        seen: set[int] = set()
        current: Span | None = span
        while current is not None and current.parent_id is not None:
            if current.span_id in seen:
                problems.append(f"cycle through span #{span.span_id}")
                break
            seen.add(current.span_id)
            current = by_id.get(current.parent_id)
    return problems
