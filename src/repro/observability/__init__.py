"""Observability: tracing, metrics, and query profiling (whole query path).

The measurement substrate the survey's empirical questions need:

* :mod:`~repro.observability.tracing` — explicit-propagation spans
  with per-span :class:`~repro.core.types.SearchStats` attribution;
* :mod:`~repro.observability.metrics` — named counters / gauges /
  fixed-bucket histograms with a Prometheus-style text dump;
* :mod:`~repro.observability.profiler` — EXPLAIN ANALYZE plan trees
  whose per-operator self-stats partition the query's cost exactly;
* :mod:`~repro.observability.export` — JSONL trace export and a
  configurable slow-query log;
* :mod:`~repro.observability.sketch` — mergeable P² streaming quantile
  sketches for grid-free latency p50/p95/p99;
* :mod:`~repro.observability.quality` — the online recall auditor
  (seeded sampling of live queries re-executed exactly, charged to
  dedicated ``audit_*`` metrics);
* :mod:`~repro.observability.slo` — declarative SLOs with multi-window
  burn-rate alerting and the ``Database.health()`` report;
* :mod:`~repro.observability.instrument` — the
  :class:`Observability` bundle components carry, and the
  :data:`DISABLED` no-op default (negligible overhead when off).

Enable on any database::

    from repro import VectorDatabase
    from repro.observability import Observability

    db = VectorDatabase(dim=32, observability=Observability())
    ...
    print(db.observability.metrics.render_prometheus())
    profile = db.explain_analyze(vector=q, k=10, predicate=Field("c") == 1)
    print(profile.render())
"""

from .export import (
    SlowQuery,
    SlowQueryLog,
    spans_to_jsonl,
    write_metrics_text,
    write_trace_jsonl,
)
from .instrument import DISABLED, Observability
from .metrics import (
    NOOP_METRIC,
    NOOP_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiler import ProfileNode, QueryProfile, build_profile_tree
from .quality import AuditRecord, RecallAuditor
from .sketch import (
    DEFAULT_QUANTILES,
    NOOP_SKETCH,
    NoopSketch,
    P2Quantile,
    QuantileSketch,
)
from .slo import (
    DEFAULT_BURN_POLICIES,
    SLO,
    BurnRatePolicy,
    HealthReport,
    SLOAlert,
    SLOMonitor,
    SLOStatus,
)
from .tracing import (
    NOOP_SPAN,
    NOOP_TRACER,
    STAT_FIELDS,
    Span,
    SpanEvent,
    Tracer,
    validate_span_tree,
)

__all__ = [
    "AuditRecord",
    "BurnRatePolicy",
    "Counter",
    "DEFAULT_BURN_POLICIES",
    "DEFAULT_QUANTILES",
    "DISABLED",
    "Gauge",
    "HealthReport",
    "Histogram",
    "MetricsRegistry",
    "NOOP_METRIC",
    "NOOP_METRICS",
    "NOOP_SKETCH",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "NoopSketch",
    "Observability",
    "P2Quantile",
    "ProfileNode",
    "QuantileSketch",
    "QueryProfile",
    "RecallAuditor",
    "SLO",
    "SLOAlert",
    "SLOMonitor",
    "SLOStatus",
    "STAT_FIELDS",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "SpanEvent",
    "Tracer",
    "build_profile_tree",
    "spans_to_jsonl",
    "validate_span_tree",
    "write_metrics_text",
    "write_trace_jsonl",
]
