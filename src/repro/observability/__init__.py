"""Observability: tracing, metrics, and query profiling (whole query path).

The measurement substrate the survey's empirical questions need:

* :mod:`~repro.observability.tracing` — explicit-propagation spans
  with per-span :class:`~repro.core.types.SearchStats` attribution;
* :mod:`~repro.observability.metrics` — named counters / gauges /
  fixed-bucket histograms with a Prometheus-style text dump;
* :mod:`~repro.observability.profiler` — EXPLAIN ANALYZE plan trees
  whose per-operator self-stats partition the query's cost exactly;
* :mod:`~repro.observability.export` — JSONL trace export and a
  configurable slow-query log;
* :mod:`~repro.observability.sketch` — mergeable P² streaming quantile
  sketches for grid-free latency p50/p95/p99;
* :mod:`~repro.observability.quality` — the online recall auditor
  (seeded sampling of live queries re-executed exactly, charged to
  dedicated ``audit_*`` metrics);
* :mod:`~repro.observability.slo` — declarative SLOs with multi-window
  burn-rate alerting and the ``Database.health()`` report;
* :mod:`~repro.observability.journey` — per-request journey records
  (phase-decomposed latency keyed by trace id, reachable from latency
  exemplars);
* :mod:`~repro.observability.timeseries` — fixed-width windowed
  scraping of the registry and latency sketches (ring retention,
  mergeable windows);
* :mod:`~repro.observability.anomaly` — baseline-relative detectors
  (p99 inflation, recall drift, queue-wait growth, cache collapse)
  with journey-walking phase/tenant attribution;
* :mod:`~repro.observability.instrument` — the
  :class:`Observability` bundle components carry, and the
  :data:`DISABLED` no-op default (negligible overhead when off).

``python -m repro.observability report`` renders a health-report JSON
artifact (e.g. the E24 bench output) as the operator dashboard.

Enable on any database::

    from repro import VectorDatabase
    from repro.observability import Observability

    db = VectorDatabase(dim=32, observability=Observability())
    ...
    print(db.observability.metrics.render_prometheus())
    profile = db.explain_analyze(vector=q, k=10, predicate=Field("c") == 1)
    print(profile.render())
"""

from .anomaly import (
    Anomaly,
    AnomalyMonitor,
    CacheHitRatioDetector,
    Detector,
    P99InflationDetector,
    PlanCacheCollapseDetector,
    QueueWaitGrowthDetector,
    RecallDriftDetector,
    default_detectors,
)
from .export import (
    SlowQuery,
    SlowQueryLog,
    spans_to_jsonl,
    write_metrics_text,
    write_trace_jsonl,
)
from .instrument import DISABLED, Observability
from .journey import PHASES, Journey, JourneyLog
from .metrics import (
    NOOP_METRIC,
    NOOP_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiler import ProfileNode, QueryProfile, build_profile_tree
from .quality import AuditRecord, RecallAuditor
from .sketch import (
    DEFAULT_QUANTILES,
    NOOP_SKETCH,
    NoopSketch,
    P2Quantile,
    QuantileSketch,
    SketchSnapshot,
)
from .slo import (
    DEFAULT_BURN_POLICIES,
    SLO,
    BurnRatePolicy,
    HealthReport,
    SLOAlert,
    SLOMonitor,
    SLOStatus,
)
from .timeseries import TimeSeriesStore, TimeWindow
from .tracing import (
    NOOP_SPAN,
    NOOP_TRACER,
    STAT_FIELDS,
    Span,
    SpanEvent,
    SpanLink,
    Tracer,
    validate_span_links,
    validate_span_tree,
)

__all__ = [
    "Anomaly",
    "AnomalyMonitor",
    "AuditRecord",
    "BurnRatePolicy",
    "CacheHitRatioDetector",
    "Counter",
    "DEFAULT_BURN_POLICIES",
    "DEFAULT_QUANTILES",
    "DISABLED",
    "Detector",
    "Gauge",
    "HealthReport",
    "Histogram",
    "Journey",
    "JourneyLog",
    "MetricsRegistry",
    "NOOP_METRIC",
    "NOOP_METRICS",
    "NOOP_SKETCH",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "NoopSketch",
    "Observability",
    "P2Quantile",
    "P99InflationDetector",
    "PHASES",
    "PlanCacheCollapseDetector",
    "ProfileNode",
    "QuantileSketch",
    "QueryProfile",
    "QueueWaitGrowthDetector",
    "RecallAuditor",
    "RecallDriftDetector",
    "SLO",
    "SLOAlert",
    "SLOMonitor",
    "SLOStatus",
    "STAT_FIELDS",
    "SketchSnapshot",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "SpanEvent",
    "SpanLink",
    "TimeSeriesStore",
    "TimeWindow",
    "Tracer",
    "build_profile_tree",
    "default_detectors",
    "spans_to_jsonl",
    "validate_span_links",
    "validate_span_tree",
    "write_metrics_text",
    "write_trace_jsonl",
]
