"""``python -m repro.observability`` — operator dashboard rendering.

Subcommands:

* ``report --input <path.json>`` — render a journey-telemetry artifact
  (the JSON the E24 bench emits: a ``Database.health()`` dump plus
  recent time-series windows and exemplar journeys) as a text
  dashboard.  CI runs this against the uploaded e24 artifact so the
  rendering path stays exercised.

The renderer works from plain JSON dicts (not live objects) on purpose:
the artifact is the interchange format, and the dashboard must be
reproducible from it alone, after the run is gone.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from .journey import PHASES

_BAR_WIDTH = 24


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    filled = max(0, min(width, round(fraction * width)))
    return "#" * filled + "." * (width - filled)


def _render_health(health: dict[str, Any]) -> list[str]:
    lines = ["== health =="]
    lines.append(f"ok: {health.get('ok')}")
    for kind, snap in sorted(health.get("latency", {}).items()):
        qs = "  ".join(
            f"{name}={value * 1e3:.3f}ms"
            for name, value in snap.items()
            if name != "count"
        )
        lines.append(f"latency[{kind}]: n={snap.get('count', 0):g}  {qs}")
    database = health.get("database") or {}
    if database:
        lines.append(
            "database: " + ", ".join(f"{k}={v}" for k, v in database.items())
        )
    return lines


def _render_anomalies(anomalies: list[dict[str, Any]] | None) -> list[str]:
    lines = ["== anomalies =="]
    if not anomalies:
        lines.append("(none)")
        return lines
    for a in anomalies:
        refs = ",".join(str(t) for t in a.get("trace_ids", [])) or "-"
        lines.append(
            f"[{a.get('window_start'):g}s..{a.get('window_end'):g}s]"
            f" {a.get('detector')}: {a.get('detail')}"
        )
        lines.append(
            f"    -> phase={a.get('phase')} tenant={a.get('tenant')}"
            f" traces={refs}"
        )
    return lines


def _render_windows(windows: list[dict[str, Any]]) -> list[str]:
    lines = ["== windows (most recent last) =="]
    if not windows:
        lines.append("(none)")
        return lines
    for w in windows:
        served = sum(
            s.get("delta", 0.0)
            for s in w.get("counters", {})
            .get("vdbms_serving_requests_total", [])
        )
        sketches = w.get("sketches", {})
        p99s = []
        for name in sorted(sketches):
            if not name.startswith("latency:"):
                continue
            quantiles = sketches[name].get("quantiles", {})
            p99 = quantiles.get("p99")
            if p99 is not None:
                p99s.append(f"{name[len('latency:'):]}={p99 * 1e3:.2f}ms")
        lines.append(
            f"[{w.get('start'):g}s..{w.get('end'):g}s]"
            f" requests={served:g}  p99: {'  '.join(p99s) or '-'}"
        )
    return lines


def _render_journeys(journeys: list[dict[str, Any]]) -> list[str]:
    lines = ["== exemplar journeys =="]
    if not journeys:
        lines.append("(none)")
        return lines
    for j in journeys:
        lines.append(
            f"trace {j.get('trace_id')}  tenant={j.get('tenant')}"
            f"  status={j.get('status')}"
            f"  latency={j.get('latency_seconds', 0.0) * 1e3:.3f}ms"
            f"  batch={j.get('batch_size')}"
        )
        phases = j.get("phases", {})
        total = sum(phases.values()) or 1.0
        for phase in PHASES:
            seconds = phases.get(phase)
            if seconds is None:
                continue
            lines.append(
                f"    {phase:<15} {_bar(seconds / total)}"
                f" {seconds * 1e3:.3f}ms"
            )
    return lines


def render_report(data: dict[str, Any]) -> str:
    """Render one journey-telemetry JSON artifact as a text dashboard."""
    health = data.get("health", {})
    sections = [
        _render_health(health),
        _render_anomalies(data.get("anomalies", health.get("anomalies"))),
        _render_windows(data.get("windows", [])),
        _render_journeys(data.get("journeys", [])),
    ]
    return "\n".join("\n".join(section) for section in sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.observability")
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="render a journey-telemetry JSON artifact"
    )
    report.add_argument(
        "--input", required=True, help="path to the JSON artifact"
    )
    args = parser.parse_args(argv)
    with open(args.input) as fh:
        data = json.load(fh)
    sys.stdout.write(render_report(data) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
