"""Request/response value types and the serving-time cost model.

:class:`ServingRequest` is what a tenant submits: one single-vector
(c,k)-search plus serving metadata (arrival time on the simulated
clock, an optional latency budget).  :class:`ServedResponse` is the
front door's answer — results for executed requests, an explicit
backpressure record (reason + retry-after) for rejected ones.

:class:`ServiceModel` converts the work counters a batch actually
incurred (:class:`~repro.core.types.SearchStats`) into simulated
service seconds, the same device the distributed layer uses
(:class:`~repro.distributed.node.NodeLatencyModel`): latency in the
simulation is a deterministic function of work done, so experiments are
reproducible bit-for-bit while still rewarding real efficiency —
coalescing helps precisely because a shared frontier does fewer
distance computations and pays one dispatch overhead instead of N.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Hashable, Sequence

import numpy as np

from ..core.types import SearchHit, SearchStats, as_vector
from ..hybrid.predicates import Predicate

__all__ = ["ServedResponse", "ServiceModel", "ServingRequest"]


@dataclass
class ServingRequest:
    """One tenant-attributed single-vector search at the front door."""

    tenant: str
    vector: np.ndarray
    k: int = 10
    arrival_seconds: float = 0.0
    predicate: Predicate | None = None
    params: dict[str, Any] = field(default_factory=dict)
    #: Latency budget from arrival; ``None`` falls back to the tenant's
    #: default.  The front door resolves it at admission time.
    deadline_seconds: float | None = None
    #: Journey trace id, stamped by the front door at arrival so every
    #: span, exemplar, and slow-log entry about this request shares one
    #: cross-reference.  ``None`` until (or unless) the request is traced.
    trace_id: int | None = None

    def __post_init__(self):
        self.vector = as_vector(self.vector)
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.arrival_seconds < 0:
            raise ValueError("arrival_seconds must be >= 0")

    def coalesce_key(self) -> Hashable | None:
        """Group identity for request coalescing, or None (never grouped).

        Requests with the same key differ only in their query vector,
        which is exactly the shape the batched kernels exploit.  The key
        deliberately excludes the vector (members bring different ones)
        and the collection generation (all concurrently queued requests
        execute against the same database state at dispatch).
        """
        try:
            key = (
                self.tenant,
                self.vector.shape[0],
                self.k,
                self.predicate,
                tuple(sorted(self.params.items())),
            )
            hash(key)
            return key
        except TypeError:
            return None


@dataclass
class ServedResponse:
    """The front door's answer to one :class:`ServingRequest`.

    ``status`` is one of ``"ok"`` (executed), ``"cache_hit"`` (served
    from the tenant's result cache), ``"rejected"`` (admission refused;
    see ``reason`` / ``retry_after_seconds``), or ``"shed"`` (admitted
    but dropped at dispatch because its deadline had already passed).
    Latency fields are simulated seconds; ``math.nan`` where the
    request never completed.
    """

    request: ServingRequest
    status: str
    hits: list[SearchHit] = field(default_factory=list)
    stats: SearchStats | None = None
    reason: str = ""
    retry_after_seconds: float = 0.0
    queue_wait_seconds: float = math.nan
    service_seconds: float = math.nan
    latency_seconds: float = math.nan
    batch_size: int = 0

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cache_hit")

    @property
    def ids(self) -> list[int]:
        return [h.id for h in self.hits]

    def __repr__(self) -> str:
        if not self.ok:
            return (
                f"ServedResponse({self.request.tenant!r} {self.status}:"
                f" {self.reason}, retry_after={self.retry_after_seconds:.4g}s)"
            )
        return (
            f"ServedResponse({self.request.tenant!r} {self.status},"
            f" {len(self.hits)} hits, latency="
            f"{self.latency_seconds * 1e3:.3f}ms, batch={self.batch_size})"
        )


@dataclass(frozen=True)
class ServiceModel:
    """Deterministic work-counter -> simulated-service-seconds model.

    Defaults are loosely calibrated to the observability baseline
    (~1 ms pure-Python dispatch per query, tens of nanoseconds per
    vectorized distance computation) but the absolute values only set
    the simulation's time scale — every comparison the benchmarks make
    (isolation, coalescing throughput) is within one model.
    """

    #: Fixed cost per dispatched batch (validation, kernel entry) — the
    #: cost coalescing amortizes.
    base_seconds: float = 1e-3
    #: Marginal cost per coalesced member (result split, response copy).
    per_member_seconds: float = 2e-5
    per_distance_seconds: float = 2e-8
    per_node_seconds: float = 5e-7
    per_page_seconds: float = 5e-5
    #: Flat cost of answering from the exact result cache.
    cache_hit_seconds: float = 5e-5
    #: Extra per-batch cost when the plan decision missed (or bypassed)
    #: the plan cache — the latency the plan-cache-collapse anomaly
    #: detector exists to notice.
    planning_seconds: float = 5e-4

    def phase_seconds(
        self, stats_list: Sequence[SearchStats], plan_cached: bool = True
    ) -> dict[str, float]:
        """Simulated batch time, decomposed by journey phase.

        Phases (the vocabulary anomaly attribution names): ``planning``
        (plan-cache miss penalty), ``coalesce_batch`` (dispatch overhead
        plus per-member split/copy), ``index_scan`` (distance + node
        traversal work), ``page_io`` (page reads).  The values sum to
        :meth:`batch_service_seconds` exactly.
        """
        n = len(stats_list)
        distances = sum(s.distance_computations for s in stats_list)
        nodes = sum(s.nodes_visited for s in stats_list)
        pages = sum(s.page_reads for s in stats_list)
        return {
            "planning": 0.0 if plan_cached else self.planning_seconds,
            "coalesce_batch": self.base_seconds + self.per_member_seconds * n,
            "index_scan": (
                self.per_distance_seconds * distances
                + self.per_node_seconds * nodes
            ),
            "page_io": self.per_page_seconds * pages,
        }

    def member_phase_seconds(
        self, stats: SearchStats, batch_size: int, plan_cached: bool = True
    ) -> dict[str, float]:
        """One member's phase decomposition of its batch's time.

        Batch-level terms (planning, dispatch base) divide evenly across
        the ``batch_size`` members; work terms charge the member's own
        share — so member phase dicts sum (over the batch) to
        :meth:`phase_seconds` of the batch.
        """
        n = max(1, batch_size)
        return {
            "planning": (0.0 if plan_cached else self.planning_seconds) / n,
            "coalesce_batch": self.base_seconds / n + self.per_member_seconds,
            "index_scan": (
                self.per_distance_seconds * stats.distance_computations
                + self.per_node_seconds * stats.nodes_visited
            ),
            "page_io": self.per_page_seconds * stats.page_reads,
        }

    def batch_service_seconds(
        self,
        stats_list: Sequence[SearchStats],
        plan_cached: bool = True,
    ) -> float:
        """Simulated execution time of one dispatched batch.

        ``stats_list`` holds the per-member shares (they sum to the
        batch totals, so summing here charges exactly the batch's work).
        """
        return sum(self.phase_seconds(stats_list, plan_cached).values())
