"""Seeded open-loop traffic: Poisson arrivals, tenant skew, diurnal bursts.

The front door's claims (tenant isolation, coalescing wins, cache hit
ratios) only mean something under realistic load, and realistic serving
load has three well-documented properties this generator reproduces:

* **Open-loop Poisson arrivals** — clients do not wait for each other,
  so arrivals are a Poisson process; under a time-varying rate it
  becomes nonhomogeneous, sampled exactly by Lewis–Shedler thinning
  (draw at the peak rate, keep each arrival with probability
  ``rate(t) / peak``).
* **Tenant skew** — load is never uniform across tenants.  Tenants are
  drawn from a Zipf distribution over their given order, so the first
  tenant is the "hot" one.  Query *content* is skewed the same way: each
  tenant draws from a finite pool of query vectors with Zipf popularity
  (hot queries repeat verbatim — that is what makes an exact-match
  result cache worth having), plus a configurable fraction of
  never-repeated fresh vectors.
* **Diurnal shape and bursts** — a sinusoidal daily cycle with optional
  multiplicative burst windows (the overload the admission controller
  exists to survive).

Everything flows from one seeded ``np.random.default_rng``; the same
seed yields the identical request trace, timestamps and vectors
included.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .request import ServingRequest

__all__ = ["Burst", "DiurnalSchedule", "TrafficGenerator"]


@dataclass(frozen=True)
class Burst:
    """One multiplicative overload window on the arrival rate."""

    start_seconds: float
    duration_seconds: float
    multiplier: float = 4.0

    def __post_init__(self):
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        if self.multiplier <= 0:
            raise ValueError("multiplier must be positive")

    def active(self, t: float) -> bool:
        return self.start_seconds <= t < self.start_seconds + self.duration_seconds


@dataclass(frozen=True)
class DiurnalSchedule:
    """Time-varying rate multiplier: sinusoidal cycle times burst windows.

    ``multiplier(t)`` is ``1 + amplitude * sin(2πt/period)`` scaled by
    every burst window covering ``t``; :meth:`peak` bounds it from above
    (the thinning envelope).
    """

    period_seconds: float = 86400.0
    amplitude: float = 0.0
    bursts: tuple[Burst, ...] = ()

    def __post_init__(self):
        if self.period_seconds <= 0:
            raise ValueError("period_seconds must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")

    def multiplier(self, t: float) -> float:
        m = 1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period_seconds)
        for burst in self.bursts:
            if burst.active(t):
                m *= burst.multiplier
        return m

    def peak(self) -> float:
        """Upper bound on :meth:`multiplier` (bursts assumed to overlap)."""
        m = 1.0 + self.amplitude
        for burst in self.bursts:
            m *= max(burst.multiplier, 1.0)
        return m


def _zipf_weights(n: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** -s
    return weights / weights.sum()


class TrafficGenerator:
    """Deterministic request-trace factory for the serving front door.

    Parameters
    ----------
    tenants:
        Tenant names in hotness order (Zipf rank 1 = first = hottest).
    dim:
        Query vector dimensionality (must match the served collection).
    rate:
        Base aggregate arrival rate (requests / simulated second).
    seed:
        Everything — arrival times, tenant picks, vectors — derives from
        this one seed.
    tenant_zipf_s / pool_zipf_s:
        Skew exponents for tenant choice and per-tenant query popularity
        (0 = uniform; larger = hotter head).
    query_pool:
        Distinct query vectors per tenant; hot entries repeat verbatim.
    fresh_fraction:
        Probability a request carries a brand-new vector instead of a
        pool entry (never cacheable, never coalescible by content).
    k:
        Neighbours requested per query.
    schedule:
        Optional :class:`DiurnalSchedule`; defaults to a constant rate.
    """

    def __init__(
        self,
        tenants: Sequence[str],
        dim: int,
        *,
        rate: float = 100.0,
        seed: int = 0,
        tenant_zipf_s: float = 1.1,
        pool_zipf_s: float = 1.0,
        query_pool: int = 64,
        fresh_fraction: float = 0.25,
        k: int = 10,
        schedule: DiurnalSchedule | None = None,
    ):
        if not tenants:
            raise ValueError("need at least one tenant")
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if query_pool <= 0:
            raise ValueError(f"query_pool must be positive, got {query_pool}")
        if not 0.0 <= fresh_fraction <= 1.0:
            raise ValueError("fresh_fraction must be in [0, 1]")
        self.tenants = list(tenants)
        self.dim = dim
        self.rate = rate
        self.k = k
        self.fresh_fraction = fresh_fraction
        self.schedule = schedule or DiurnalSchedule()
        self.rng = np.random.default_rng(seed)
        self._tenant_weights = _zipf_weights(len(self.tenants), tenant_zipf_s)
        self._pool_weights = _zipf_weights(query_pool, pool_zipf_s)
        # Per-tenant pools so tenants never share cache keys.
        self._pools = {
            name: self.rng.standard_normal((query_pool, dim)).astype(np.float32)
            for name in self.tenants
        }

    def _vector(self, tenant: str) -> np.ndarray:
        if self.rng.random() < self.fresh_fraction:
            return self.rng.standard_normal(self.dim).astype(np.float32)
        pool = self._pools[tenant]
        idx = self.rng.choice(len(pool), p=self._pool_weights)
        return pool[idx].copy()

    def generate(
        self, duration_seconds: float, start_seconds: float = 0.0
    ) -> list[ServingRequest]:
        """Sample one request trace over ``[start, start + duration)``.

        Nonhomogeneous Poisson arrivals by thinning against the
        schedule's peak rate; the returned list is sorted by arrival
        time (the order the front door consumes).
        """
        if duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        peak = self.rate * self.schedule.peak()
        end = start_seconds + duration_seconds
        t = start_seconds
        out: list[ServingRequest] = []
        while True:
            t += self.rng.exponential(1.0 / peak)
            if t >= end:
                break
            accept = self.rate * self.schedule.multiplier(t) / peak
            if self.rng.random() >= accept:
                continue
            tenant = self.tenants[
                self.rng.choice(len(self.tenants), p=self._tenant_weights)
            ]
            out.append(ServingRequest(
                tenant=tenant,
                vector=self._vector(tenant),
                k=self.k,
                arrival_seconds=t,
            ))
        return out

    def __repr__(self) -> str:
        return (
            f"TrafficGenerator({len(self.tenants)} tenants, dim={self.dim},"
            f" rate={self.rate:g}/s, peak x{self.schedule.peak():g})"
        )
