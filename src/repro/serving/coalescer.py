"""Request coalescing: many concurrent single queries, one kernel call.

Under load, a serving tier sees many independent single-vector queries
in flight at once.  Dispatching each alone pays the full pure-Python
query overhead (planning, validation, operator setup) per request —
the observability baseline puts that near a millisecond, dwarfing the
vectorized kernels it wraps.  The coalescer funnels queued requests
that share a coalesce key (same tenant, k, predicate, and params —
only the vectors differ) into **one** call:

* graph index plans run the whole group through
  :func:`repro.core.batched.batched_graph_search` — the merged-frontier
  kernel with shared k-means routes and one fused score pass per round.
  The bounded-recall contract carries over verbatim: a coalesced
  member's recall must not trail its solo execution by more than the
  documented 0.05 (asserted by the serving tests and the E23 bench).
* every other plan falls back to the executor's batch path, which still
  shares the predicate bitmask and (on brute-force plans) the pairwise
  distance kernel, and for quantized indexes reaches the blocked
  FastScan ADC scan per member with the coarse centroids and LUT
  machinery warm in cache.

Results and statistics are split back per request: integer work
counters are partitioned so the per-request parts **sum exactly** to
the batch totals (largest-remainder split), keeping cost accounting
conserved across the coalescing boundary.
"""

from __future__ import annotations

import numpy as np

from ..core.batched import batched_graph_search
from ..core.query import BatchQuery, SearchQuery
from ..core.types import SearchHit, SearchStats
from .request import ServingRequest

__all__ = ["execute_coalesced", "split_stats"]

#: SearchStats integer counters conserved by :func:`split_stats`.
_SPLIT_COUNTERS = (
    "distance_computations",
    "nodes_visited",
    "page_reads",
    "candidates_examined",
    "predicate_evaluations",
    "predicate_rejections",
    "shards_ok",
    "shards_failed",
)


def split_stats(total: SearchStats, parts: int) -> list[SearchStats]:
    """Partition batch-level stats into ``parts`` per-request shares.

    Integer counters use a largest-remainder split: each part gets
    ``v // parts`` and the first ``v % parts`` parts one extra, so the
    shares sum to the batch total *exactly* (asserted in tests — cost
    accounting is conserved, never inflated or lost, across
    coalescing).  ``elapsed_seconds`` is divided evenly (float).
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    out = []
    for i in range(parts):
        share = SearchStats(plan_name=total.plan_name)
        for name in _SPLIT_COUNTERS:
            value = getattr(total, name)
            base, remainder = divmod(value, parts)
            setattr(share, name, base + (1 if i < remainder else 0))
        share.elapsed_seconds = total.elapsed_seconds / parts
        share.partial = total.partial
        share.coverage_fraction = total.coverage_fraction
        out.append(share)
    return out


def _graph_batchable(db, plan, requests) -> bool:
    """May this group run through the merged-frontier graph kernel?

    Requires an unpredicated index scan over a graph index with no
    tombstones (``batched_graph_search`` has no liveness mask; the
    executor's member path applies one when deletions exist).
    """
    if plan.strategy != "index_scan" or plan.index_name is None:
        return False
    if any(r.predicate is not None for r in requests):
        return False
    index = db.indexes.get(plan.index_name)
    if index is None or getattr(index, "family", "") != "graph":
        return False
    return bool(db.collection.alive.all())


def _audit_members(db, plan, requests, hits_list) -> None:
    """Offer every batched member to the recall auditor.

    The solo path audits inside ``QueryExecutor.execute``; the batched
    kernels bypass it, so without this hook a fully-coalesced workload
    would produce **zero** audit samples and the recall-drift detector
    would be blind exactly when the serving tier is busiest.
    """
    obs = db.observability
    if not (obs.enabled and obs.auditor is not None):
        return
    for request, hits in zip(requests, hits_list):
        obs.auditor.consider(
            request.vector, request.k, hits,
            collection=db.collection, score=db._executor.score,
            predicate=request.predicate, strategy=plan.strategy,
            index=plan.index_name,
        )


def execute_coalesced(
    db, requests: list[ServingRequest], span=None
) -> tuple[list[list[SearchHit]], list[SearchStats], str, str]:
    """Execute one coalesced group through the cheapest shared path.

    Returns ``(per_request_hits, per_request_stats, mode, strategy)``
    where ``mode`` names the execution path taken
    (``"batched_graph"`` / ``"batched_scan"`` / ``"solo"``) and
    ``strategy`` is the chosen plan's strategy.  The group must share a
    coalesce key (the admission controller guarantees it), so the lead
    request's plan decision — served from the prepared-query plan cache
    on repeats — covers every member.  ``span`` (the front door's batch
    span) becomes the parent of the planning span so plan selection is
    visible inside the request journey's trace.
    """
    lead = requests[0]
    query = SearchQuery(
        lead.vector, lead.k, predicate=lead.predicate, params=dict(lead.params)
    )
    plan, _ = db.plan(query, parent=span)
    n = len(requests)
    label = f"coalesced[{n}]:{plan.describe()}"

    if n == 1:
        result = db._executor.execute(query, plan)
        result.stats.plan_name = label
        return [result.hits], [result.stats], "solo", plan.strategy

    vectors = np.stack([r.vector for r in requests])
    if _graph_batchable(db, plan, requests):
        stats = SearchStats(plan_name=label)
        index = db.indexes[plan.index_name]
        per_request = batched_graph_search(
            index, vectors, lead.k, stats=stats,
            ef_search=lead.params.get("ef_search"),
        )
        _audit_members(db, plan, requests, per_request)
        return per_request, split_stats(stats, n), "batched_graph", plan.strategy

    batch = BatchQuery(
        vectors, lead.k, predicate=lead.predicate, params=dict(lead.params)
    )
    results = db._executor.execute_batch(batch, plan)
    hits = [r.hits for r in results]
    if n > 1 and all(r.stats is results[0].stats for r in results):
        # Brute-force batches share one merged stats object; re-split it
        # so per-request accounting stays conserved and independent.
        stats_list = split_stats(results[0].stats, n)
        for share in stats_list:
            share.plan_name = label
    else:
        stats_list = [r.stats for r in results]
        for share in stats_list:
            share.plan_name = label
    _audit_members(db, plan, requests, hits)
    return hits, stats_list, "batched_scan", plan.strategy
