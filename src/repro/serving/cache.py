"""Per-tenant exact query-result caches with structural invalidation.

Serving workloads are heavy-tailed: a few hot queries (popular search
strings, dashboard refreshes) repeat verbatim.  An exact-match result
cache answers those without touching the executor at all.

Correctness follows the plan cache's structural-invalidation idiom
(:class:`repro.core.planner.PlanCache`): the key embeds the collection's
mutation ``generation``, so any insert / delete / update makes every
previously cached entry unreachable — there is no flush path to get
wrong.  The value is the tuple of frozen :class:`SearchHit` objects the
cold execution produced, so a hit is bit-identical to re-running the
query (asserted by the serving tests).

The cache is *per tenant* on purpose: capacity is part of the tenant's
serving contract, one tenant's churn cannot evict another's hot set,
and hit-rate accounting stays attributable.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

import numpy as np

from ..core.types import SearchHit

__all__ = ["QueryResultCache", "result_cache_key"]


def result_cache_key(
    generation: int,
    vector: np.ndarray,
    k: int,
    predicate: Any = None,
    params: dict[str, Any] | None = None,
) -> Hashable | None:
    """Hashable identity of one exact query against one collection state.

    ``vector.tobytes()`` keys on the exact float32 payload (no epsilon:
    approximate matches are the coalescer's job, not the cache's).
    Predicates are frozen dataclasses and hash structurally; queries
    carrying unhashable params are simply not cacheable (returns None),
    mirroring the plan cache's contract.
    """
    try:
        key = (
            generation,
            vector.tobytes(),
            k,
            predicate,
            tuple(sorted(params.items())) if params else (),
        )
        hash(key)
        return key
    except TypeError:
        return None


class QueryResultCache:
    """LRU cache of exact (collection-state, query) -> result hits."""

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, tuple[SearchHit, ...]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable | None) -> list[SearchHit] | None:
        """Cached hits for ``key`` (a fresh list), or None; counts the probe."""
        if key is None:
            self.misses += 1
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return list(entry)

    def put(self, key: Hashable | None, hits: list[SearchHit]) -> None:
        if key is None:
            return
        self._entries[key] = tuple(hits)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_ratio(self) -> float:
        """Fraction of probes served from cache (0.0 before any probe)."""
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    def info(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "size": len(self._entries),
            "capacity": self.capacity,
        }
