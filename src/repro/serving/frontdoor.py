"""The serving front door: one event loop tying admission, coalescing,
caching, and per-tenant SLOs together in front of a database.

:class:`ServingFrontDoor` runs an open-loop discrete-event simulation on
the repo's simulated clock (the same device as the distributed layer):
arrivals and batch completions are the events, *service time is a
deterministic function of the work counters the batch actually incurred*
(:class:`~repro.serving.request.ServiceModel`).  Nothing here reads a
wall clock or an unseeded RNG, so a run is reproducible bit-for-bit —
and still rewards real efficiency, because a coalesced batch pays one
dispatch overhead instead of N and a shared frontier does fewer
distance computations.

Lifecycle of one request::

    arrive ──cache hit──────────────────────────────▶ "cache_hit"
      │ miss
      ▼
    admission (token bucket, bounded queue) ──refuse─▶ "rejected"
      │ admit
      ▼
    priority queue ──deadline passed at dispatch────▶ "shed"
      │ dispatch (respecting per-tenant in-flight caps)
      ▼
    coalesced batch ──▶ executor / batched kernel ──▶ "ok"

Per-tenant accounting is first-class: latency and queue-wait quantile
sketches, cache hit ratios, rejection counts by reason, and optional
per-tenant p99 latency SLOs with the burn-rate alerting machinery from
the observability layer.  ``health()`` returns the database's
:class:`~repro.observability.slo.HealthReport` with a ``serving``
section attached, and ``report()`` produces the standalone
:class:`ServingReport` the E23 experiment renders.

**Journey tracing**: every arriving request opens a ``serve_request``
root span (a fresh trace), and the request's ``trace_id`` rides along
through admission, queueing, and coalescing.  A dispatched batch gets
one ``serve_batch`` span *linked* (not parented — the members keep
their own traces) to every member's root, the plan span nests under the
batch span, and completion closes each root with the member's
largest-remainder stats share, so ``attribution_residual() == 0`` holds
across the serving spans too.  Latency exemplars (histogram bucket →
trace id) and slow-log entries cross-reference the same ids.

**Telemetry** (``telemetry=True``): a
:class:`~repro.observability.timeseries.TimeSeriesStore` scrapes the
registry and the per-tenant sketches into fixed windows on the
simulated clock, a :class:`~repro.observability.journey.JourneyLog`
keeps phase-decomposed journeys, and an
:class:`~repro.observability.anomaly.AnomalyMonitor` evaluates each
closed window, attributing any firing to a phase and tenant by walking
exemplar journeys — surfaced via ``health()``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Sequence

from ..observability.sketch import QuantileSketch
from ..observability.tracing import STAT_FIELDS
from .admission import AdmissionController, AdmissionRejected
from .cache import QueryResultCache, result_cache_key
from .coalescer import execute_coalesced
from .quota import TenantSpec
from .request import ServedResponse, ServiceModel, ServingRequest

__all__ = ["ServingFrontDoor", "ServingReport"]

#: Serving latency quantiles: the p999 tail is the whole point of
#: admission control, so track it explicitly.
_SERVING_QUANTILES = (0.5, 0.9, 0.99, 0.999)


class _TenantState:
    """Mutable per-tenant serving-side bookkeeping."""

    __slots__ = (
        "spec", "cache", "latency", "queue_wait", "submitted", "executed",
        "cache_hits", "rejected", "shed", "coalesced", "inflight",
    )

    def __init__(self, spec: TenantSpec):
        self.spec = spec
        self.cache = QueryResultCache(spec.cache_capacity)
        self.latency = QuantileSketch(_SERVING_QUANTILES)
        self.queue_wait = QuantileSketch(_SERVING_QUANTILES)
        self.submitted = 0
        self.executed = 0
        self.cache_hits = 0
        self.rejected: dict[str, int] = {}
        self.shed = 0
        self.coalesced = 0  # executed as a member of a multi-request batch
        self.inflight = 0

    def summary(self) -> dict[str, Any]:
        latency = {
            f"p{q * 100:g}": self.latency.quantile(q)
            for q in _SERVING_QUANTILES
        }
        return {
            "submitted": self.submitted,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "rejected": dict(self.rejected),
            "shed": self.shed,
            "coalesced": self.coalesced,
            "latency_seconds": latency,
            "queue_wait_p99_seconds": self.queue_wait.quantile(0.99),
            "cache": self.cache.info(),
            "priority": self.spec.priority,
            "qps": self.spec.qps,
        }


@dataclass
class _Inflight:
    """One dispatched batch awaiting its simulated completion."""

    members: list[ServingRequest]
    hits: list[list]
    stats: list
    cache_keys: list[Hashable | None]
    dispatched_seconds: float
    service_seconds: float
    strategy: str
    mode: str
    plan_cached: bool = True


@dataclass
class ServingReport:
    """End-of-run (or point-in-time) serving summary.

    ``tenants`` maps tenant name to its accounting summary;
    ``totals`` aggregates the run (request disposition, batch count and
    mean size, coalescing ratio); ``slos`` carries per-tenant SLO status
    dicts when latency objectives were configured.
    """

    tenants: dict[str, dict[str, Any]] = field(default_factory=dict)
    totals: dict[str, Any] = field(default_factory=dict)
    slos: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "tenants": self.tenants,
            "totals": self.totals,
            "slos": self.slos,
        }

    def render(self) -> str:
        lines = ["serving:"]
        info = ", ".join(f"{k}={v}" for k, v in self.totals.items())
        lines.append(f"  totals: {info}")
        for name in sorted(self.tenants):
            t = self.tenants[name]
            lat = t["latency_seconds"]
            quantiles = "  ".join(
                f"{q}={value * 1e3:.3f}ms"
                for q, value in lat.items()
                if value == value
            )
            lines.append(
                f"  tenant[{name}] prio={t['priority']}"
                f" submitted={t['submitted']} ok={t['executed']}"
                f" cached={t['cache_hits']} shed={t['shed']}"
                f" rejected={sum(t['rejected'].values())}"
            )
            if quantiles:
                lines.append(f"    latency: {quantiles}")
        for status in self.slos:
            flag = "OK " if status.get("ok") else "FIRING"
            lines.append(
                f"  slo[{status['name']}] {flag} {status['objective']}"
                f" good={status['good_fraction']:.3f}"
                f" n={status['observations']}"
            )
        return "\n".join(lines)


class ServingFrontDoor:
    """Multi-tenant admission + coalescing + caching in front of a database.

    Parameters
    ----------
    database:
        The :class:`~repro.core.database.VectorDatabase` to serve.
    tenants:
        Tenant contracts (:class:`~repro.serving.quota.TenantSpec`).
    workers:
        Concurrent batch executions the simulated backend sustains.
    coalesce_max:
        Upper bound on requests merged into one dispatched batch.
    service_model:
        Work-counters -> simulated-seconds mapping (see
        :class:`~repro.serving.request.ServiceModel`).
    start_seconds:
        Initial simulated clock value.
    telemetry:
        Enable windowed time-series scraping, the journey log, and the
        anomaly monitor (``health()`` then carries attributed
        anomalies).  Off by default: the plain front door stays as
        cheap as before.
    window_seconds / telemetry_retention:
        Fixed window width and ring retention for the time-series
        store (telemetry only).
    detectors:
        Override the anomaly detector set (telemetry only; defaults to
        :func:`~repro.observability.anomaly.default_detectors`).
    """

    def __init__(
        self,
        database,
        tenants: Iterable[TenantSpec],
        *,
        workers: int = 2,
        coalesce_max: int = 16,
        service_model: ServiceModel | None = None,
        start_seconds: float = 0.0,
        telemetry: bool = False,
        window_seconds: float = 1.0,
        telemetry_retention: int = 120,
        detectors: Sequence[Any] | None = None,
    ):
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if coalesce_max <= 0:
            raise ValueError(f"coalesce_max must be positive, got {coalesce_max}")
        specs = list(tenants)
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self.db = database
        self.obs = database.observability
        self.workers = workers
        self.coalesce_max = coalesce_max
        self.service_model = service_model or ServiceModel()
        self.now = start_seconds
        self.admission = AdmissionController(
            {s.name: s for s in specs}, now=start_seconds
        )
        self._states = {s.name: _TenantState(s) for s in specs}
        self._busy = 0
        self._completions: list[tuple[float, int, _Inflight]] = []
        self._tick = 0  # heap tie-breaker: dispatch order
        self.batches = 0
        self.batch_members = 0
        self.modes: dict[str, int] = {}
        self.responses: list[ServedResponse] = []
        # Per-tenant latency objectives ride the observability layer's
        # burn-rate machinery; slo is a heavyweight module, imported
        # lazily per the layering contract.
        slo_specs = [s for s in specs if s.slo_p99_seconds is not None]
        if slo_specs:
            from ..observability.slo import SLO, SLOMonitor

            self.slo: Any = SLOMonitor(
                [
                    SLO(
                        name=f"serving:{s.name}:latency",
                        signal=f"serving_latency:{s.name}",
                        threshold=s.slo_p99_seconds,
                        op="<=",
                        budget=s.slo_budget,
                        description=f"tenant {s.name} serving latency ceiling",
                    )
                    for s in slo_specs
                ],
                metrics=self.obs.metrics,
                tracer=self.obs.tracer,
            )
        else:
            self.slo = None
        #: Open ``serve_request`` root spans by trace id.  Spans are
        #: *handed off* here at arrival (they outlive the queueing gap)
        #: and finished by their terminal disposition.
        self._spans: dict[int, Any] = {}
        if telemetry:
            # Journey/time-series/anomaly are heavyweight observability
            # modules; per the layering contract they load lazily, only
            # when telemetry is actually requested.
            from ..observability.anomaly import AnomalyMonitor
            from ..observability.journey import Journey, JourneyLog
            from ..observability.timeseries import TimeSeriesStore

            self._journey_cls: Any = Journey
            self.telemetry: Any = TimeSeriesStore(
                self.obs.metrics,
                width_seconds=window_seconds,
                retention=telemetry_retention,
                start_seconds=start_seconds,
            )
            for name, state in self._states.items():
                self.telemetry.track_sketch(f"latency:{name}", state.latency)
                self.telemetry.track_sketch(
                    f"queue_wait:{name}", state.queue_wait
                )
            self.journeys: Any = JourneyLog()
            self.monitor: Any = AnomalyMonitor(
                self.telemetry,
                journeys=self.journeys,
                detectors=detectors,
                metrics=self.obs.metrics,
                exemplar_fn=self._latency_exemplar,
            )
            if self.obs.enabled:
                # DISABLED is a shared singleton; only a real bundle may
                # carry the monitor into Database.health().
                self.obs.anomalies = self.monitor
        else:
            self._journey_cls = None
            self.telemetry = None
            self.journeys = None
            self.monitor = None

    # -------------------------------------------------------------- the loop

    def run(self, requests: Sequence[ServingRequest]) -> list[ServedResponse]:
        """Serve an open-loop request trace to completion.

        Events are processed in simulated-time order (completions before
        arrivals on ties, so a freed worker can pick up work arriving at
        the same instant).  Returns one :class:`ServedResponse` per
        request, in arrival order; the run's responses are also appended
        to :attr:`responses` for later reporting.
        """
        arrivals = sorted(requests, key=lambda r: r.arrival_seconds)
        first_new = len(self.responses)
        i = 0
        while True:
            self._dispatch()
            next_arrival = (
                arrivals[i].arrival_seconds if i < len(arrivals) else None
            )
            next_completion = (
                self._completions[0][0] if self._completions else None
            )
            if next_completion is not None and (
                next_arrival is None or next_completion <= next_arrival
            ):
                finish, _, entry = heapq.heappop(self._completions)
                self.now = finish
                self._complete(entry, finish)
            elif next_arrival is not None:
                self.now = max(self.now, next_arrival)
                self._arrive(arrivals[i])
                i += 1
            else:
                break
            self._telemetry_tick()
        return self.responses[first_new:]

    def _telemetry_tick(self) -> None:
        """Close any elapsed windows and run the detectors over them."""
        if self.monitor is None:
            return
        gauge = self.obs.metrics.gauge(
            "vdbms_serving_queue_depth", "Queued requests per tenant"
        )
        for tenant, depth in self.admission.depths().items():
            gauge.set(depth, tenant=tenant)
        self.monitor.tick(self.now)

    def _latency_exemplar(self, tenant: str | None) -> int | None:
        """p99 exemplar trace id from the serving latency histogram."""
        labels = {"kind": "serving"}
        if tenant is not None:
            labels["tenant"] = tenant
        witness = self.obs.metrics.histogram(
            "vdbms_query_seconds", "Per-query latency"
        ).exemplar(0.99, **labels)
        return None if witness is None else witness[0]

    def _finish_journey(
        self,
        request: ServingRequest,
        status: str,
        latency: float,
        phases: dict[str, float],
        batch_size: int = 0,
        stats: Any = None,
        **attributes: Any,
    ) -> None:
        """Close the request's root span and record its journey.

        For executed requests ``stats`` carries the member's
        largest-remainder share of the batch counters; it is attributed
        to an ``execute`` child *and* set as the root's delta, so the
        root's self-stats are exactly zero and the profile partition
        stays exact across the serving spans.
        """
        root = self._spans.pop(request.trace_id, None)
        if root is not None:
            if stats is not None:
                share = {name: getattr(stats, name) for name in STAT_FIELDS}
                execute = root.child("execute", batch=batch_size)
                execute.set_stats_delta(share)
                execute.finish()
                root.set_stats_delta(share)
            root.set(status=status, latency_seconds=latency, **attributes)
            root.finish()
        if self.journeys is not None:
            self.journeys.record(self._journey_cls(
                trace_id=request.trace_id or 0,
                tenant=request.tenant,
                status=status,
                arrival_seconds=request.arrival_seconds,
                completed_seconds=self.now,
                latency_seconds=latency,
                phases=phases,
                batch_size=batch_size,
            ))

    # --------------------------------------------------------------- arrival

    def _arrive(self, request: ServingRequest) -> None:
        state = self._states.get(request.tenant)
        # Every request gets a journey root span (a fresh trace); its id
        # is the cross-reference exemplars and the slow log resolve.
        root = self.obs.tracer.start_span(
            "serve_request", tenant=request.tenant,
            arrival_seconds=request.arrival_seconds,
        )
        request.trace_id = root.trace_id
        self._spans[root.trace_id] = root
        if state is not None:
            state.submitted += 1
            if request.deadline_seconds is None:
                request.deadline_seconds = state.spec.deadline_seconds
            # Exact-match cache first: a hot repeat costs neither quota
            # tokens nor a queue slot — the cache absorbs hot-key load
            # before it ever contends with cold traffic.
            key = result_cache_key(
                self.db.collection.generation, request.vector, request.k,
                request.predicate, request.params,
            )
            cached = state.cache.get(key)
            lookup = root.child("cache_lookup", hit=cached is not None)
            lookup.finish()
            if cached is not None:
                self.obs.metrics.counter(
                    "vdbms_serving_cache_hits_total",
                    "Result-cache hits at the front door",
                ).inc(tenant=request.tenant)
                state.cache_hits += 1
                latency = self.service_model.cache_hit_seconds
                self._finish_journey(
                    request, "cache_hit", latency,
                    phases={"cache_lookup": latency},
                )
                self._emit_response(ServedResponse(
                    request, "cache_hit", hits=cached,
                    queue_wait_seconds=0.0, service_seconds=latency,
                    latency_seconds=latency,
                ))
                self._observe_latency(state, request.tenant, latency, 0.0)
                return
            self.obs.metrics.counter(
                "vdbms_serving_cache_misses_total",
                "Result-cache misses at the front door",
            ).inc(tenant=request.tenant)
        try:
            self.admission.admit(request, self.now)
        except AdmissionRejected as exc:
            if state is not None:
                state.rejected[exc.reason] = state.rejected.get(exc.reason, 0) + 1
            self.obs.metrics.counter(
                "vdbms_serving_rejected_total",
                "Requests refused at the front door",
            ).inc(tenant=request.tenant, reason=exc.reason)
            quota = root.child(
                "admission", outcome="rejected", reason=exc.reason,
                retry_after_seconds=exc.retry_after_seconds,
            )
            quota.finish()
            self._finish_journey(
                request, "rejected", 0.0, phases={}, reason=exc.reason,
            )
            self._emit_response(ServedResponse(
                request, "rejected", reason=exc.reason,
                retry_after_seconds=exc.retry_after_seconds,
            ))

    # -------------------------------------------------------------- dispatch

    def _capacity(self, tenant: str) -> int:
        state = self._states[tenant]
        return state.spec.max_inflight - state.inflight

    def _dispatch(self) -> None:
        while self._busy < self.workers and self.admission.pending():
            batch, shed = self.admission.next_batch(
                self.now, self.coalesce_max, self._capacity
            )
            for request in shed:
                self._record_shed(request)
            if not batch:
                if not shed:
                    break  # everything queued is at its in-flight cap
                continue
            self._execute(batch)

    def _record_shed(self, request: ServingRequest) -> None:
        state = self._states[request.tenant]
        state.shed += 1
        waited = self.now - request.arrival_seconds
        self.obs.metrics.counter(
            "vdbms_serving_shed_total",
            "Admitted requests dropped at dispatch (deadline passed)",
        ).inc(tenant=request.tenant)
        root = self._spans.get(request.trace_id)
        if root is not None:
            drop = root.child(
                "shed", reason="deadline", waited_seconds=waited,
            )
            drop.finish()
        self._finish_journey(
            request, "shed", waited,
            phases={"admission_wait": waited}, reason="deadline",
        )
        self._emit_response(ServedResponse(
            request, "shed", reason="deadline",
            queue_wait_seconds=waited,
        ))

    def _execute(self, batch: list[ServingRequest]) -> None:
        lead = batch[0]
        generation = self.db.collection.generation
        plan_cache = self.db.plan_cache
        hits_before = plan_cache.hits if plan_cache is not None else -1
        with self.obs.tracer.start_span(
            "serve_batch", tenant=lead.tenant, members=len(batch),
            simulated_seconds=self.now,
        ) as span:
            # Coalescer fan-in: the batch span and each member's root
            # are in different traces, so they reference each other via
            # span *links*, not parent edges.
            for request in batch:
                root = self._spans.get(request.trace_id)
                if root is not None:
                    waited = root.child(
                        "queue_wait",
                        seconds=self.now - request.arrival_seconds,
                    )
                    waited.finish()
                    span.link(root, role="member")
                    root.link(span, role="batch")
            hits, stats, mode, strategy = execute_coalesced(
                self.db, batch, span=span
            )
            plan_cached = (
                plan_cache is not None and plan_cache.hits > hits_before
            )
            service = self.service_model.batch_service_seconds(
                stats, plan_cached=plan_cached
            )
            span.set(
                mode=mode, strategy=strategy, service_seconds=service,
                plan_cached=plan_cached,
            )
        keys = [
            result_cache_key(
                generation, r.vector, r.k, r.predicate, r.params
            )
            for r in batch
        ]
        self._states[lead.tenant].inflight += len(batch)
        self._busy += 1
        self.batches += 1
        self.batch_members += len(batch)
        self.modes[mode] = self.modes.get(mode, 0) + 1
        self.obs.metrics.counter(
            "vdbms_serving_batches_total", "Coalesced batches dispatched"
        ).inc(mode=mode)
        self.obs.metrics.histogram(
            "vdbms_serving_batch_size", "Requests per dispatched batch",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        ).observe(len(batch))
        entry = _Inflight(
            members=batch, hits=hits, stats=stats, cache_keys=keys,
            dispatched_seconds=self.now, service_seconds=service,
            strategy=strategy, mode=mode, plan_cached=plan_cached,
        )
        heapq.heappush(
            self._completions, (self.now + service, self._tick, entry)
        )
        self._tick += 1

    # ------------------------------------------------------------ completion

    def _complete(self, entry: _Inflight, finish: float) -> None:
        n = len(entry.members)
        state = self._states[entry.members[0].tenant]
        state.inflight -= n
        self._busy -= 1
        for request, hits, stats, key in zip(
            entry.members, entry.hits, entry.stats, entry.cache_keys
        ):
            queue_wait = entry.dispatched_seconds - request.arrival_seconds
            latency = finish - request.arrival_seconds
            state.executed += 1
            if n > 1:
                state.coalesced += 1
            state.cache.put(key, hits)
            self.obs.record_query(
                "serving", entry.strategy, stats,
                elapsed_seconds=latency, simulated=True,
                labels={"tenant": request.tenant},
                trace_id=request.trace_id,
            )
            self._observe_latency(state, request.tenant, latency, queue_wait)
            phases = {"admission_wait": queue_wait}
            phases.update(self.service_model.member_phase_seconds(
                stats, n, plan_cached=entry.plan_cached
            ))
            if n > 1:
                # A member rides the whole batch, not just its own work
                # share; the excess residency is the price of being
                # coalesced, charged to coalesce_batch so a journey's
                # phases always partition its latency exactly.
                share = sum(phases.values()) - queue_wait
                phases["coalesce_batch"] = (
                    phases.get("coalesce_batch", 0.0)
                    + entry.service_seconds
                    - share
                )
            self._finish_journey(
                request, "ok", latency, phases,
                batch_size=n, stats=stats, mode=entry.mode,
            )
            self._emit_response(ServedResponse(
                request, "ok", hits=hits, stats=stats,
                queue_wait_seconds=queue_wait,
                service_seconds=entry.service_seconds,
                latency_seconds=latency, batch_size=n,
            ))

    def _observe_latency(
        self, state: _TenantState, tenant: str, latency: float, queue_wait: float
    ) -> None:
        state.latency.observe(latency)
        state.queue_wait.observe(queue_wait)
        if self.slo is not None:
            self.slo.observe(f"serving_latency:{tenant}", latency)

    def _emit_response(self, response: ServedResponse) -> None:
        self.obs.metrics.counter(
            "vdbms_serving_requests_total", "Front-door request dispositions"
        ).inc(tenant=response.request.tenant, status=response.status)
        self.responses.append(response)

    # -------------------------------------------------------------- reporting

    def report(self) -> ServingReport:
        """Point-in-time serving summary (rendered by E23)."""
        tenants = {
            name: state.summary() for name, state in self._states.items()
        }
        executed = sum(t["executed"] for t in tenants.values())
        totals: dict[str, Any] = {
            "requests": len(self.responses),
            "executed": executed,
            "cache_hits": sum(t["cache_hits"] for t in tenants.values()),
            "rejected": sum(
                sum(t["rejected"].values()) for t in tenants.values()
            ),
            "shed": sum(t["shed"] for t in tenants.values()),
            "batches": self.batches,
            "mean_batch_size": (
                self.batch_members / self.batches if self.batches else math.nan
            ),
            "coalesced_fraction": (
                sum(t["coalesced"] for t in tenants.values()) / executed
                if executed
                else 0.0
            ),
            "modes": dict(self.modes),
            "simulated_seconds": self.now,
        }
        slos = (
            [status.to_dict() for status in self.slo.status()]
            if self.slo is not None
            else []
        )
        return ServingReport(tenants=tenants, totals=totals, slos=slos)

    def health(self):
        """The database's health report with a ``serving`` section."""
        report = self.db.health()
        report.serving = self.report().to_dict()
        return report

    def __repr__(self) -> str:
        return (
            f"ServingFrontDoor({len(self._states)} tenants,"
            f" workers={self.workers}, coalesce_max={self.coalesce_max},"
            f" t={self.now:.4g}s, {len(self.responses)} responses)"
        )
