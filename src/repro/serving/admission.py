"""Admission control: priority queueing, bounded backlog, deadline shedding.

The admission controller is the front door's gatekeeper.  Every arriving
request passes three checks *before* any execution resource is spent:

1. **Quota** — the tenant's token bucket (:mod:`repro.serving.quota`).
   An empty bucket rejects with ``reason="throttled"`` and a computable
   ``retry_after_seconds`` — the backpressure signal a well-behaved
   client uses to back off instead of retry-storming.
2. **Bounded queue** — each tenant owns at most ``max_queue`` waiting
   slots.  A full queue rejects with ``reason="queue_full"``; unbounded
   queues just convert overload into unbounded latency, which is worse
   than an honest no.
3. **Deadline shedding** — at *dispatch* time, a queued request whose
   latency budget has already elapsed (or provably cannot be met) is
   shed rather than executed: work spent on an answer the client has
   stopped waiting for is pure waste under overload.

Admitted requests wait in one priority queue ordered by
``(tenant priority, arrival sequence)``.  Dispatch respects per-tenant
in-flight caps, so a backlogged low-priority tenant cannot monopolize
the workers even when its queue is long — this is the isolation
property the E23 benchmark demonstrates numerically.
"""

from __future__ import annotations

import heapq
from typing import Callable, Hashable

from ..core.errors import VdbmsError
from .request import ServingRequest
from .quota import TenantSpec, TokenBucket

__all__ = ["AdmissionController", "AdmissionRejected"]


class AdmissionRejected(VdbmsError):
    """A request was refused at the front door (backpressure signal).

    ``reason`` is ``"throttled"`` (token bucket empty), ``"queue_full"``
    (bounded backlog reached), or ``"unknown_tenant"``.
    ``retry_after_seconds`` tells the caller when trying again has a
    chance of succeeding — the token-refill gap when throttled, a
    backlog-drain estimate when the queue is full.
    """

    def __init__(self, tenant: str, reason: str, retry_after_seconds: float):
        super().__init__(
            f"tenant {tenant!r} rejected: {reason}"
            f" (retry after {retry_after_seconds:.4g}s)"
        )
        self.tenant = tenant
        self.reason = reason
        self.retry_after_seconds = retry_after_seconds


class AdmissionController:
    """Quota enforcement plus one priority queue over all tenants."""

    def __init__(self, tenants: dict[str, TenantSpec], now: float = 0.0):
        self.tenants = dict(tenants)
        self.buckets = {
            name: TokenBucket(spec.qps, spec.burst, now=now)
            for name, spec in self.tenants.items()
        }
        self._heap: list[tuple[int, int]] = []  # (priority, seq)
        self._queued: dict[int, ServingRequest] = {}  # seq -> request
        self._by_key: dict[Hashable, list[int]] = {}  # coalesce key -> seqs
        self._depth: dict[str, int] = {name: 0 for name in self.tenants}
        self._seq = 0

    # ------------------------------------------------------------- admission

    def queue_depth(self, tenant: str) -> int:
        return self._depth[tenant]

    def depths(self) -> dict[str, int]:
        """Per-tenant queued-request counts (a copy; telemetry scrapes
        this into the ``vdbms_serving_queue_depth`` gauge each event)."""
        return dict(self._depth)

    def pending(self) -> int:
        return len(self._queued)

    def admit(self, request: ServingRequest, now: float) -> int:
        """Admit (enqueue) one request or raise :class:`AdmissionRejected`.

        Returns the queue sequence number assigned to the request.
        Quota is charged before the queue-bound check on purpose: a
        request that beats the rate limit but finds the queue full has
        still consumed its token — queue_full is a capacity signal, not
        a free retry.
        """
        spec = self.tenants.get(request.tenant)
        if spec is None:
            raise AdmissionRejected(request.tenant, "unknown_tenant", 0.0)
        bucket = self.buckets[request.tenant]
        if not bucket.try_take(now):
            raise AdmissionRejected(
                request.tenant, "throttled", bucket.retry_after(now)
            )
        if self._depth[request.tenant] >= spec.max_queue:
            # Drain estimate: the backlog at the tenant's own admitted
            # rate is the soonest a queue slot can plausibly free up.
            raise AdmissionRejected(
                request.tenant,
                "queue_full",
                self._depth[request.tenant] / spec.qps,
            )
        seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (spec.priority, seq))
        self._queued[seq] = request
        key = request.coalesce_key()
        if key is not None:
            self._by_key.setdefault(key, []).append(seq)
        self._depth[request.tenant] += 1
        return seq

    # -------------------------------------------------------------- dispatch

    def _remove(self, seq: int, request: ServingRequest) -> None:
        del self._queued[seq]
        self._depth[request.tenant] -= 1
        key = request.coalesce_key()
        if key is not None:
            seqs = self._by_key.get(key)
            if seqs is not None:
                seqs.remove(seq)
                if not seqs:
                    del self._by_key[key]

    @staticmethod
    def _expired(request: ServingRequest, now: float) -> bool:
        deadline = request.deadline_seconds
        return deadline is not None and now > request.arrival_seconds + deadline

    def next_batch(
        self,
        now: float,
        coalesce_max: int,
        capacity: Callable[[str], int],
    ) -> tuple[list[ServingRequest], list[ServingRequest]]:
        """Pop the next dispatchable (coalesced) batch.

        Returns ``(batch, shed)``: ``batch`` is the highest-priority
        eligible request plus up to ``coalesce_max - 1`` queued requests
        sharing its coalesce key (same tenant, collection state, and
        query shape — only the vectors differ), and ``shed`` lists
        requests dropped because their deadline already passed.  Both
        may be empty; an empty batch with queued requests remaining
        means every queued tenant is at its in-flight cap.

        ``capacity(tenant)`` reports how many more of the tenant's
        requests may enter execution right now.
        """
        shed: list[ServingRequest] = []
        deferred: list[tuple[int, int]] = []
        lead: ServingRequest | None = None
        lead_seq = -1
        while self._heap:
            priority, seq = heapq.heappop(self._heap)
            request = self._queued.get(seq)
            if request is None:
                continue  # already coalesced into an earlier batch
            if self._expired(request, now):
                self._remove(seq, request)
                shed.append(request)
                continue
            if capacity(request.tenant) <= 0:
                deferred.append((priority, seq))
                continue
            lead, lead_seq = request, seq
            break
        for entry in deferred:
            heapq.heappush(self._heap, entry)
        if lead is None:
            return [], shed
        self._remove(lead_seq, lead)
        batch = [lead]
        key = lead.coalesce_key()
        # capacity() still counts the lead (it leaves the queue only
        # now), so the whole batch — lead included — must fit in it.
        room = min(coalesce_max, capacity(lead.tenant)) - 1
        if key is not None and room > 0:
            # Members ride in arrival order; expired ones are shed here
            # rather than executed.
            for seq in list(self._by_key.get(key, ())):
                if room <= 0:
                    break
                member = self._queued[seq]
                self._remove(seq, member)
                if self._expired(member, now):
                    shed.append(member)
                    continue
                batch.append(member)
                room -= 1
        return batch, shed
