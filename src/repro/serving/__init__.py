"""Multi-tenant serving front door (§ production serving concerns).

The tutorial's systems survey treats a vector DBMS as more than its
indexes: a served system needs admission control, request coalescing,
and per-tenant quality objectives in front of the query engine.  This
package provides that tier on the repo's simulated clock:

* :mod:`repro.serving.quota` — tenant contracts and token buckets.
* :mod:`repro.serving.admission` — priority queueing, bounded backlog,
  deadline shedding, explicit backpressure.
* :mod:`repro.serving.coalescer` — many concurrent queries, one batched
  kernel call, with exactly-conserved stats splitting.
* :mod:`repro.serving.cache` — per-tenant exact result caches with
  structural (generation-keyed) invalidation.
* :mod:`repro.serving.frontdoor` — the event loop tying it together,
  with per-tenant latency sketches, SLO burn-rate alerts, per-request
  journey tracing (span links across the coalescing boundary, latency
  exemplars), and opt-in windowed telemetry feeding the anomaly
  monitor (``telemetry=True``).
* :mod:`repro.serving.traffic` — seeded open-loop load (Poisson
  arrivals, Zipf tenant/query skew, diurnal bursts).
"""

from .admission import AdmissionController, AdmissionRejected
from .cache import QueryResultCache, result_cache_key
from .coalescer import execute_coalesced, split_stats
from .frontdoor import ServingFrontDoor, ServingReport
from .quota import TenantSpec, TokenBucket
from .request import ServedResponse, ServiceModel, ServingRequest
from .traffic import Burst, DiurnalSchedule, TrafficGenerator

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "Burst",
    "DiurnalSchedule",
    "QueryResultCache",
    "ServedResponse",
    "ServiceModel",
    "ServingFrontDoor",
    "ServingReport",
    "ServingRequest",
    "TenantSpec",
    "TokenBucket",
    "TrafficGenerator",
    "execute_coalesced",
    "result_cache_key",
    "split_stats",
]
