"""Per-tenant namespaces and rate quotas (§2.1 operational concerns).

A production VDBMS is shared infrastructure: many applications ("tenants")
drive one database, and without quotas the noisiest one starves the rest.
The serving tier models each tenant with a :class:`TenantSpec` — an
admission contract, not a data partition: tenants share the collection
and indexes but get their own rate limit, concurrency cap, bounded
queue, result cache, and latency objective.

Rate limiting is the classic token bucket on the *simulated* clock (the
same currency as :mod:`repro.reliability.retry`): tokens refill at
``qps`` per simulated second up to ``burst``; a request that finds the
bucket empty is rejected with a computable retry-after instead of being
queued, so overload turns into backpressure at the edge rather than
unbounded queueing inside.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TenantSpec", "TokenBucket"]


@dataclass(frozen=True)
class TenantSpec:
    """The serving contract for one tenant.

    Parameters
    ----------
    qps / burst:
        Token-bucket rate limit: sustained ``qps`` requests per simulated
        second with bursts up to ``burst`` back-to-back requests.
    max_inflight:
        Concurrency cap — at most this many of the tenant's requests may
        be executing at once (queued requests beyond it wait).
    max_queue:
        Bounded admission queue; a request arriving to a full queue is
        rejected (``queue_full``) rather than buffered without bound.
    priority:
        Dispatch priority, lower is served first.  Ties dispatch in
        arrival order.
    cache_capacity:
        Entries in the tenant's exact query-result cache (0 disables).
    deadline_seconds:
        Default per-request latency budget from arrival; a queued
        request that can no longer meet it is shed instead of executed.
    slo_p99_seconds:
        Optional per-tenant latency objective fed to the SLO burn-rate
        monitor (``None`` = no objective).
    slo_budget:
        Fraction of requests allowed over the objective.
    """

    name: str
    qps: float = 100.0
    burst: float = 10.0
    max_inflight: int = 8
    max_queue: int = 64
    priority: int = 1
    cache_capacity: int = 256
    deadline_seconds: float | None = None
    slo_p99_seconds: float | None = None
    slo_budget: float = 0.05

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.qps <= 0:
            raise ValueError(f"qps must be positive, got {self.qps}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        if self.slo_p99_seconds is not None and self.slo_p99_seconds <= 0:
            raise ValueError("slo_p99_seconds must be positive")
        if not 0.0 < self.slo_budget < 1.0:
            raise ValueError("slo_budget must be in (0, 1)")


class TokenBucket:
    """Token-bucket rate limiter on the simulated clock.

    ``rate`` tokens arrive per simulated second, capped at ``capacity``.
    The bucket starts full, so a fresh tenant can burst immediately.
    All methods take ``now`` explicitly — the bucket holds no clock of
    its own, which keeps replayed simulations deterministic.
    """

    __slots__ = ("rate", "capacity", "tokens", "updated")

    def __init__(self, rate: float, capacity: float, now: float = 0.0):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self.tokens = float(capacity)
        self.updated = float(now)

    def _refill(self, now: float) -> None:
        if now > self.updated:
            self.tokens = min(
                self.capacity, self.tokens + (now - self.updated) * self.rate
            )
        self.updated = max(self.updated, now)

    def try_take(self, now: float, amount: float = 1.0) -> bool:
        """Consume ``amount`` tokens if available; False means throttled."""
        self._refill(now)
        if self.tokens + 1e-12 >= amount:
            self.tokens -= amount
            return True
        return False

    def retry_after(self, now: float, amount: float = 1.0) -> float:
        """Simulated seconds until ``amount`` tokens will be available."""
        self._refill(now)
        deficit = amount - self.tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate

    def __repr__(self) -> str:
        return (
            f"TokenBucket(rate={self.rate:g}/s, capacity={self.capacity:g},"
            f" tokens={self.tokens:.2f})"
        )
