"""repro — a vector database management system.

A from-scratch Python reproduction of the system landscape surveyed in
*Vector Database Management Techniques and Systems* (Pan, Wang, Li;
SIGMOD-Companion 2024): similarity scores, every index family (table /
tree / graph, in-memory and disk-resident), quantization, hybrid query
operators, plan enumeration and selection, batched and distributed
execution, out-of-place updates, and an ANN-benchmarks-style harness.

Quickstart::

    import numpy as np
    from repro import VectorDatabase, Field

    db = VectorDatabase(dim=32, score="l2")
    db.insert_many(np.random.rand(1000, 32),
                   [{"category": i % 5, "price": float(i), "rating": 3}
                    for i in range(1000)])
    db.create_index("main", "hnsw", m=16)
    result = db.search(np.random.rand(32), k=5,
                       predicate=(Field("category") == 2) & (Field("price") < 500))
    for hit in result:
        print(hit.id, hit.distance)
"""

from .core import (
    BatchQuery,
    BufferedVectorIndex,
    CostModel,
    EmpiricalCostModel,
    IncrementalSearcher,
    MultiVectorEntityCollection,
    MultiVectorQuery,
    QueryPlan,
    RangeQuery,
    SearchHit,
    SearchQuery,
    SearchResult,
    SearchStats,
    VdbmsError,
    VectorCollection,
    VectorDatabase,
    batched_graph_search,
    execute_sql,
    parse_sql,
)
from .core import (
    AllReplicasDownError,
    DeadlineExceededError,
    PartialResultWarning,
    ReplicaUnavailableError,
)
from .hybrid import Field, Predicate
from .index import VectorIndex, available_indexes, make_index
from .observability import (
    HealthReport,
    Observability,
    QuantileSketch,
    QueryProfile,
    RecallAuditor,
    SLO,
    SLOMonitor,
    SlowQueryLog,
    validate_span_tree,
    write_metrics_text,
    write_trace_jsonl,
)
from .reliability import CircuitBreaker, FaultInjector, FaultPlan, RetryPolicy
from .scores import Score, available_scores, get_score

__version__ = "1.0.0"

__all__ = [
    "AllReplicasDownError",
    "BatchQuery",
    "BufferedVectorIndex",
    "CircuitBreaker",
    "CostModel",
    "DeadlineExceededError",
    "FaultInjector",
    "FaultPlan",
    "PartialResultWarning",
    "ReplicaUnavailableError",
    "RetryPolicy",
    "EmpiricalCostModel",
    "Field",
    "IncrementalSearcher",
    "MultiVectorEntityCollection",
    "HealthReport",
    "MultiVectorQuery",
    "Observability",
    "Predicate",
    "QuantileSketch",
    "QueryPlan",
    "QueryProfile",
    "RangeQuery",
    "RecallAuditor",
    "SLO",
    "SLOMonitor",
    "SlowQueryLog",
    "Score",
    "SearchHit",
    "SearchQuery",
    "SearchResult",
    "SearchStats",
    "VdbmsError",
    "VectorCollection",
    "VectorDatabase",
    "VectorIndex",
    "available_indexes",
    "available_scores",
    "batched_graph_search",
    "execute_sql",
    "get_score",
    "make_index",
    "parse_sql",
    "validate_span_tree",
    "write_metrics_text",
    "write_trace_jsonl",
    "__version__",
]
