"""repro — a vector database management system.

A from-scratch Python reproduction of the system landscape surveyed in
*Vector Database Management Techniques and Systems* (Pan, Wang, Li;
SIGMOD-Companion 2024): similarity scores, every index family (table /
tree / graph, in-memory and disk-resident), quantization, hybrid query
operators, plan enumeration and selection, batched and distributed
execution, out-of-place updates, and an ANN-benchmarks-style harness.

Quickstart::

    import numpy as np
    from repro import VectorDatabase, Field

    rng = np.random.default_rng(0)   # seeded: every run is reproducible
    db = VectorDatabase(dim=32, score="l2")
    db.insert_many(rng.random((1000, 32), dtype=np.float32),
                   [{"category": i % 5, "price": float(i), "rating": 3}
                    for i in range(1000)])
    db.create_index("main", "hnsw", m=16)
    result = db.search(rng.random(32, dtype=np.float32), k=5,
                       predicate=(Field("category") == 2) & (Field("price") < 500))
    for hit in result:
        print(hit.id, hit.distance)
"""

from .core import (
    AllReplicasDownError,
    BatchQuery,
    BufferedVectorIndex,
    CostModel,
    DeadlineExceededError,
    EmpiricalCostModel,
    IncrementalSearcher,
    MultiVectorEntityCollection,
    MultiVectorQuery,
    PartialResultWarning,
    QueryPlan,
    RangeQuery,
    ReplicaUnavailableError,
    SearchHit,
    SearchQuery,
    SearchResult,
    SearchStats,
    VdbmsError,
    VectorCollection,
    VectorDatabase,
    batched_graph_search,
    execute_sql,
    parse_sql,
)
from .hybrid import Field, Predicate
from .index import VectorIndex, available_indexes, make_index
from .observability import (
    SLO,
    HealthReport,
    Observability,
    QuantileSketch,
    QueryProfile,
    RecallAuditor,
    SLOMonitor,
    SlowQueryLog,
    validate_span_tree,
    write_metrics_text,
    write_trace_jsonl,
)
from .reliability import CircuitBreaker, FaultInjector, FaultPlan, RetryPolicy
from .scores import Score, available_scores, get_score

__version__ = "1.0.0"

__all__ = [
    "AllReplicasDownError",
    "BatchQuery",
    "BufferedVectorIndex",
    "CircuitBreaker",
    "CostModel",
    "DeadlineExceededError",
    "FaultInjector",
    "FaultPlan",
    "PartialResultWarning",
    "ReplicaUnavailableError",
    "RetryPolicy",
    "EmpiricalCostModel",
    "Field",
    "IncrementalSearcher",
    "MultiVectorEntityCollection",
    "HealthReport",
    "MultiVectorQuery",
    "Observability",
    "Predicate",
    "QuantileSketch",
    "QueryPlan",
    "QueryProfile",
    "RangeQuery",
    "RecallAuditor",
    "SLO",
    "SLOMonitor",
    "SlowQueryLog",
    "Score",
    "SearchHit",
    "SearchQuery",
    "SearchResult",
    "SearchStats",
    "VdbmsError",
    "VectorCollection",
    "VectorDatabase",
    "VectorIndex",
    "available_indexes",
    "available_scores",
    "batched_graph_search",
    "execute_sql",
    "get_score",
    "make_index",
    "parse_sql",
    "validate_span_tree",
    "write_metrics_text",
    "write_trace_jsonl",
    "__version__",
]
