"""Tests for metric learning and score selection diagnostics."""

import numpy as np
import pytest

from repro.scores import (
    CosineScore,
    EuclideanScore,
    HammingScore,
    InnerProductScore,
    concentration_ratio,
    learn_mahalanobis,
    normalize_rows,
    recommend_score,
    relative_contrast,
)


class TestLearnMahalanobis:
    def test_loss_decreases(self, rng):
        data = rng.standard_normal((30, 4))
        sim = [(0, 1), (2, 3)]
        dis = [(0, 10), (5, 20)]
        result = learn_mahalanobis(data, sim, dis, iterations=50, seed=0)
        assert result.loss_history[-1] <= result.loss_history[0]

    def test_constraints_respected(self, rng):
        # Two clusters separated along dim 0; "similar" pairs straddle the
        # noisy dim 1.  The learned metric should downweight dim 1.
        n = 40
        labels = np.repeat([0, 1], n // 2)
        data = np.stack(
            [labels * 4.0 + 0.1 * rng.standard_normal(n), rng.standard_normal(n) * 3],
            axis=1,
        )
        sim = [(i, j) for i in range(5) for j in range(5, 10)]  # same cluster
        dis = [(i, j) for i in range(5) for j in range(n // 2, n // 2 + 5)]
        result = learn_mahalanobis(data, sim, dis, iterations=100)
        m = result.matrix
        assert m[0, 0] > m[1, 1]  # informative dim weighted higher

    def test_requires_constraints(self, rng):
        with pytest.raises(ValueError):
            learn_mahalanobis(rng.standard_normal((5, 2)), [], [])

    def test_result_is_usable_score(self, rng):
        data = rng.standard_normal((20, 3))
        result = learn_mahalanobis(data, [(0, 1)], [(0, 2)], iterations=10)
        d = result.score.distances(data[0], data)
        assert d.shape == (20,)
        assert d[0] == pytest.approx(0.0, abs=1e-6)


class TestDiagnostics:
    def test_contrast_decreases_with_dimension(self, rng):
        """The curse of dimensionality: relative contrast of uniform data
        shrinks as d grows [30]."""
        low = relative_contrast(rng.uniform(size=(300, 2)))
        high = relative_contrast(rng.uniform(size=(300, 256)))
        assert low > high
        assert high > 1.0

    def test_clustered_beats_uniform_contrast(self, rng):
        from repro.bench.datasets import gaussian_mixture

        clustered = gaussian_mixture(n=300, dim=32, cluster_std=0.1, seed=1).train
        uniform = rng.standard_normal((300, 32))
        assert relative_contrast(clustered) > relative_contrast(uniform)

    def test_concentration_ratio_drops_with_dim(self, rng):
        low = concentration_ratio(rng.uniform(size=(200, 2)))
        high = concentration_ratio(rng.uniform(size=(200, 512)))
        assert low > high


class TestRecommendScore:
    def test_binary_data_gets_hamming(self, rng):
        data = (rng.uniform(size=(50, 16)) > 0.5).astype(np.float64)
        rec = recommend_score(data)
        assert isinstance(rec.score, HammingScore)

    def test_normalized_data_gets_ip(self, rng):
        data = normalize_rows(rng.standard_normal((50, 16))).astype(np.float64)
        rec = recommend_score(data)
        assert isinstance(rec.score, InnerProductScore)

    def test_varying_norms_get_cosine(self, rng):
        scales = np.exp(rng.standard_normal(50) * 2)[:, None]
        data = scales * normalize_rows(rng.standard_normal((50, 8))).astype(float)
        rec = recommend_score(data)
        assert isinstance(rec.score, CosineScore)

    def test_default_euclidean_with_diagnostics(self, rng):
        data = rng.standard_normal((50, 8)) + 5.0
        data = data * (1.0 + 0.05 * rng.standard_normal((50, 1)))
        rec = recommend_score(data)
        assert isinstance(rec.score, EuclideanScore)
        assert "relative_contrast" in rec.diagnostics
