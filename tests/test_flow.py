"""Tests for the vdbflow interprocedural tier (repro.analysis.flow).

Covers the engine itself (symbol table resolution through aliases,
re-exports, and lazy imports; call-graph edges; fixed-point
termination on cycles), each VDB7xx rule with positive and negative
fixtures, the new driver features (--jobs, --changed-only, --info,
--graph, --budget-seconds, per-rule timing), and the repo self-check:
the tree at head must carry zero failing VDB7xx findings.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline, Suppression
from repro.analysis.driver import (
    analyze_project_sources,
    analyze_source,
    main,
    parse_module,
    run_analysis,
)
from repro.analysis.flow.engine import Project
from repro.analysis.flow.lattice import FixedPoint, reachable
from repro.analysis.registry import get_rule

ROOT = Path(__file__).resolve().parents[1]


def project(sources: dict[str, str]) -> Project:
    return Project(
        [parse_module(textwrap.dedent(src), rel) for rel, src in sources.items()]
    )


def flow_lint(sources: dict[str, str], rule_id: str):
    dedented = {rel: textwrap.dedent(src) for rel, src in sources.items()}
    return analyze_project_sources(dedented, [get_rule(rule_id)])


# --------------------------------------------------------------------------
# call-graph resolution


class TestCallGraphResolution:
    def test_direct_import_and_alias(self):
        proj = project({
            "src/repro/core/a.py": """
                def helper(x):
                    return x
            """,
            "src/repro/core/b.py": """
                from .a import helper
                from .a import helper as h2

                def caller(x):
                    return helper(x) + h2(x)
            """,
        })
        succ = proj.callgraph.successors("repro.core.b.caller")
        assert set(succ) == {"repro.core.a.helper"}
        assert sum(
            1 for s in proj.callgraph.out_edges("repro.core.b.caller")
        ) == 2

    def test_reexport_through_package_init(self):
        proj = project({
            "src/repro/core/inner.py": """
                def helper(x):
                    return x
            """,
            "src/repro/core/__init__.py": """
                from .inner import helper
            """,
            "src/repro/storage/b.py": """
                from repro.core import helper

                def caller(x):
                    return helper(x)
            """,
        })
        assert proj.callgraph.successors("repro.storage.b.caller") == [
            "repro.core.inner.helper"
        ]

    def test_lazy_function_scope_import(self):
        proj = project({
            "src/repro/core/a.py": """
                def helper(x):
                    return x
            """,
            "src/repro/storage/b.py": """
                def caller(x):
                    from repro.core.a import helper
                    return helper(x)
            """,
        })
        assert proj.callgraph.successors("repro.storage.b.caller") == [
            "repro.core.a.helper"
        ]

    def test_method_call_on_locally_constructed_instance(self):
        proj = project({
            "src/repro/core/a.py": """
                class Engine:
                    def run(self, x):
                        return x

                def caller(x):
                    eng = Engine()
                    return eng.run(x)
            """,
        })
        assert proj.callgraph.successors("repro.core.a.caller") == [
            "repro.core.a.Engine.run"
        ]
        (site,) = proj.callgraph.out_edges("repro.core.a.caller")
        callee = proj.symtab.functions["repro.core.a.Engine.run"]
        # implicit self: positional args bind past the self slot.
        assert "x" in site.bind_args(callee)

    def test_callers_is_the_reverse_of_successors(self):
        proj = project({
            "src/repro/core/a.py": """
                def leaf(x):
                    return x

                def mid(x):
                    return leaf(x)

                def top(x):
                    return mid(x)
            """,
        })
        assert proj.callgraph.callers("repro.core.a.leaf") == [
            "repro.core.a.mid"
        ]
        assert proj.callgraph.callers("repro.core.a.mid") == [
            "repro.core.a.top"
        ]


class TestFixedPoint:
    def test_terminates_on_cyclic_graph(self):
        # a <-> b mutual recursion: facts must reach the closed-over
        # union and stop.
        deps = {"a": ["b"], "b": ["a"]}

        def transfer(node, facts):
            other = facts.get("b" if node == "a" else "a", frozenset())
            return frozenset({node}) | other

        solver = FixedPoint(transfer, dependents=lambda n: deps[n])
        facts = solver.solve(["a", "b"], frozenset())
        assert facts["a"] == facts["b"] == frozenset({"a", "b"})

    def test_non_monotone_transfer_raises(self):
        flip = {"n": False}

        def transfer(node, facts):
            flip["n"] = not flip["n"]
            return flip["n"]

        solver = FixedPoint(
            transfer, dependents=lambda n: ["n"], max_rounds=50
        )
        with pytest.raises(RuntimeError, match="not monotone"):
            solver.solve(["n"], None)

    def test_reachable_cuts_nothing_it_should_keep(self):
        succ = {"r": ["a"], "a": ["b", "r"], "b": [], "x": ["y"], "y": []}
        assert reachable(["r"], lambda n: succ[n]) == {"r", "a", "b"}


# --------------------------------------------------------------------------
# VDB701 — interprocedural blessing


class TestInterproceduralBlessing:
    def test_unblessed_matrix_through_wrapper_flags_first_edge(self):
        found = flow_lint({
            "src/repro/index/wrap.py": """
                from ._kernels import beam_search

                def route(adj, raw, q):
                    return beam_search(adj, raw, q)
            """,
            "src/repro/index/use.py": """
                import numpy as np
                from .wrap import route

                def query(adj, xs, q):
                    mat = np.stack(xs)
                    return route(adj, mat, q)
            """,
        }, "VDB701")
        edge = [f for f in found if f.path == "src/repro/index/use.py"]
        assert len(edge) == 1
        assert edge[0].severity == "error"
        # The blame chain walks caller -> wrapper -> kernel.
        assert "repro.index.use.query" in edge[0].via
        assert "repro.index.wrap.route" in edge[0].via
        assert "beam_search" in edge[0].via

    def test_blessing_at_the_first_edge_is_clean(self):
        found = flow_lint({
            "src/repro/index/wrap.py": """
                from ._kernels import beam_search

                def route(adj, raw, q):
                    return beam_search(adj, raw, q)
            """,
            "src/repro/index/use.py": """
                import numpy as np
                from .wrap import route
                from ._kernels import ensure_f32c

                def query(adj, xs, q):
                    mat = ensure_f32c(np.stack(xs))
                    return route(adj, mat, q)
            """,
        }, "VDB701")
        assert [f for f in found if f.severity == "error"] == []

    def test_uncalled_public_wrapper_gets_boundary_warning(self):
        found = flow_lint({
            "src/repro/index/wrap.py": """
                from ._kernels import beam_search

                def route(adj, raw, q):
                    return beam_search(adj, raw, q)
            """,
        }, "VDB701")
        (f,) = found
        assert f.severity == "warning"
        assert "no in-repo callers" in f.message
        assert "beam_search" in f.via

    def test_packed_demand_propagates_too(self):
        found = flow_lint({
            "src/repro/quantization/wrap.py": """
                from .fastscan import fastscan_accumulate

                def scan(luts, packed):
                    return fastscan_accumulate(luts, packed)
            """,
            "src/repro/quantization/use.py": """
                import numpy as np
                from .wrap import scan

                def query(luts, codes):
                    raw = np.ascontiguousarray(codes)
                    return scan(luts, raw)
            """,
        }, "VDB701")
        edge = [f for f in found if f.path.endswith("use.py")]
        assert len(edge) == 1 and edge[0].severity == "error"

    def test_packer_blessed_at_edge_is_clean(self):
        found = flow_lint({
            "src/repro/quantization/wrap.py": """
                from .fastscan import fastscan_accumulate

                def scan(luts, packed):
                    return fastscan_accumulate(luts, packed)
            """,
            "src/repro/quantization/use.py": """
                from .wrap import scan
                from .fastscan import pack_codes_blocked

                def query(luts, codes, ks):
                    blocked = pack_codes_blocked(codes, ks)
                    return scan(luts, blocked.packed)
            """,
        }, "VDB701")
        assert [f for f in found if f.severity == "error"] == []


# --------------------------------------------------------------------------
# VDB702 — clock-domain taint


class TestClockDomainTaint:
    PATH = "src/repro/core/fixture.py"

    def test_duration_steering_control_flow_fires(self):
        found = flow_lint({self.PATH: """
            import time

            def adapt(work):
                start = time.perf_counter()
                work()
                elapsed = time.perf_counter() - start
                if elapsed > 0.1:
                    return "slow"
                return "fast"
        """}, "VDB702")
        (f,) = found
        assert "control-flow decision" in f.message or "decision" in f.message
        assert f.via == "repro.core.fixture.adapt"

    def test_taint_crosses_function_returns(self):
        found = flow_lint({self.PATH: """
            import time

            def probe():
                return time.perf_counter()

            def adapt(work):
                start = probe()
                work()
                took = probe() - start
                while took > 1.0:
                    took -= 1.0
        """}, "VDB702")
        assert len(found) == 1
        assert found[0].via == "repro.core.fixture.adapt"

    def test_taint_reaching_callee_decision_param_fires_at_call(self):
        found = flow_lint({self.PATH: """
            import time

            def pick(budget):
                if budget > 1.0:
                    return "wide"
                return "narrow"

            def adapt(work):
                start = time.perf_counter()
                work()
                spent = time.perf_counter() - start
                return pick(spent)
        """}, "VDB702")
        assert any("decision inside" in f.message for f in found)

    def test_recording_into_stats_is_the_approved_pattern(self):
        found = flow_lint({self.PATH: """
            import time

            def measure(work, stats):
                start = time.perf_counter()
                work()
                elapsed = time.perf_counter() - start
                if stats is not None:
                    stats.elapsed_seconds = elapsed
                return SearchStats(elapsed_seconds=elapsed)
        """}, "VDB702")
        assert found == []

    def test_persisted_artifact_sink_fires(self):
        found = flow_lint({self.PATH: """
            import time

            def snapshot(path, arr):
                start = time.perf_counter()
                build = time.perf_counter() - start
                atomic_write_bytes(path, npz_bytes(arr=arr, took=build))
        """}, "VDB702")
        assert any("persisted artifact" in f.message for f in found)

    def test_timing_owning_packages_are_exempt(self):
        found = flow_lint({"src/repro/bench/fixture.py": """
            import time

            def adapt(work):
                start = time.perf_counter()
                work()
                if time.perf_counter() - start > 0.1:
                    return "slow"
        """}, "VDB702")
        assert found == []


# --------------------------------------------------------------------------
# VDB703 — hot-path allocation


class TestHotPathAllocation:
    # ``beam_search`` is a contract-declared hot entry point; ``helper``
    # is unreachable from any hot root, so the same pattern downgrades
    # to an info advisory there.
    def test_self_growth_in_loop_is_error_when_hot(self):
        found = flow_lint({"src/repro/index/fixture.py": """
            import numpy as np

            def beam_search(adj, vectors, q):
                frontier = np.empty(0, dtype=np.int64)
                for step in range(8):
                    frontier = np.append(frontier, adj[step])
                return frontier
        """}, "VDB703")
        growth = [f for f in found if "array growth" in f.message]
        assert len(growth) == 1
        assert growth[0].severity == "error" and growth[0].fails

    def test_same_pattern_off_hot_path_is_advisory(self):
        found = flow_lint({"src/repro/index/fixture.py": """
            import numpy as np

            def helper(adj):
                acc = np.empty(0, dtype=np.int64)
                for step in range(8):
                    acc = np.append(acc, adj[step])
                return acc
        """}, "VDB703")
        growth = [f for f in found if "array growth" in f.message]
        assert len(growth) == 1
        assert growth[0].severity == "info" and not growth[0].fails

    def test_fresh_per_round_merge_is_not_growth(self):
        found = flow_lint({"src/repro/index/fixture.py": """
            import numpy as np

            def beam_search(adj, vectors, q):
                for step in range(8):
                    nbrs = np.concatenate([adj[step], adj[step + 1]])
                return nbrs
        """}, "VDB703")
        assert [f for f in found if "array growth" in f.message] == []

    def test_matrix_float64_promotion_is_error_when_hot(self):
        found = flow_lint({"src/repro/index/fixture.py": """
            import numpy as np

            def beam_search(adj, index, q):
                mat = index._vectors.astype(np.float64)
                return mat @ q
        """}, "VDB703")
        promo = [f for f in found if "float64 promotion" in f.message]
        assert len(promo) == 1 and promo[0].severity == "error"

    def test_query_float64_promotion_stays_advisory(self):
        found = flow_lint({"src/repro/index/fixture.py": """
            import numpy as np

            def beam_search(adj, vectors, q):
                qd = q.astype(np.float64)
                return vectors @ qd
        """}, "VDB703")
        promo = [f for f in found if "float64 promotion" in f.message]
        assert len(promo) == 1 and promo[0].severity == "info"

    def test_hidden_copy_policed_only_on_hot_path(self):
        hot = flow_lint({"src/repro/index/fixture.py": """
            import numpy as np

            def beam_search(adj, vectors, ids):
                return ids.astype(np.int64)
        """}, "VDB703")
        assert any("hidden copy" in f.message for f in hot)
        fixed = flow_lint({"src/repro/index/fixture.py": """
            import numpy as np

            def beam_search(adj, vectors, ids):
                return ids.astype(np.int64, copy=False)
        """}, "VDB703")
        assert [f for f in fixed if "hidden copy" in f.message] == []
        cold = flow_lint({"src/repro/index/fixture.py": """
            import numpy as np

            def helper(ids):
                return ids.astype(np.int64)
        """}, "VDB703")
        assert [f for f in cold if "hidden copy" in f.message] == []

    def test_loop_invariant_gather_flagged_rebinding_is_not(self):
        invariant = flow_lint({"src/repro/index/fixture.py": """
            import numpy as np

            def beam_search(adj, vectors, order):
                idx = np.argsort(order)
                mat = np.asarray(vectors)
                for step in range(8):
                    sub = mat[idx]
                return sub
        """}, "VDB703")
        assert any("loop-invariant" in f.message for f in invariant)
        rebinding = flow_lint({"src/repro/index/fixture.py": """
            import numpy as np

            def beam_search(adj, vectors, order):
                mat = np.asarray(vectors)
                idx = np.argsort(order)
                for step in range(8):
                    idx = np.argsort(mat[idx][:, 0])
                return idx
        """}, "VDB703")
        assert [f for f in rebinding if "loop-invariant" in f.message] == []

    def test_hand_tuned_kernel_modules_are_exempt(self):
        found = flow_lint({"src/repro/index/_kernels.py": """
            import numpy as np

            def beam_search(adj, vectors, q):
                acc = np.empty(0, dtype=np.int64)
                for step in range(8):
                    acc = np.append(acc, adj[step])
                return acc
        """}, "VDB703")
        assert found == []


# --------------------------------------------------------------------------
# driver features


@pytest.fixture()
def flow_repo(tmp_path):
    """A miniature repo with one interprocedural VDB701 violation."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    pkg = tmp_path / "src" / "repro" / "index"
    pkg.mkdir(parents=True)
    (pkg / "wrap.py").write_text(
        "from ._kernels import beam_search\n\n\n"
        "def route(adj, raw, q):\n"
        "    return beam_search(adj, raw, q)\n"
    )
    (pkg / "use.py").write_text(
        "import numpy as np\n\nfrom .wrap import route\n\n\n"
        "def query(adj, xs, q):\n"
        "    mat = np.stack(xs)\n"
        "    return route(adj, mat, q)\n"
    )
    return tmp_path


class TestDriverFeatures:
    def test_project_rules_run_from_the_cli(self, flow_repo, capsys):
        assert main(["--root", str(flow_repo), "src/repro"]) == 1
        out = capsys.readouterr().out
        assert "VDB701" in out and "use.py" in out
        assert "via" in out  # the blame chain is rendered

    def test_jobs_matches_serial_results(self, flow_repo, capsys):
        serial = main(["--root", str(flow_repo), "src/repro"])
        serial_out = capsys.readouterr().out
        parallel = main(["--root", str(flow_repo), "src/repro", "--jobs", "2"])
        parallel_out = capsys.readouterr().out
        assert serial == parallel == 1
        assert sorted(serial_out.splitlines()) == sorted(
            parallel_out.splitlines()
        )

    def test_info_findings_do_not_fail_and_are_summarized(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        pkg = tmp_path / "src" / "repro" / "index"
        pkg.mkdir(parents=True)
        (pkg / "cold.py").write_text(
            "import numpy as np\n\n\ndef helper(adj):\n"
            "    acc = np.empty(0, dtype=np.int64)\n"
            "    for step in range(8):\n"
            "        acc = np.append(acc, adj[step])\n"
            "    return acc\n"
        )
        assert main(["--root", str(tmp_path), "src/repro"]) == 0
        out = capsys.readouterr().out
        assert "advisor" in out and "VDB703" not in out
        assert main(["--root", str(tmp_path), "src/repro", "--info"]) == 0
        assert "VDB703" in capsys.readouterr().out

    def test_graph_dump_is_json(self, flow_repo, capsys):
        assert main(["--root", str(flow_repo), "src/repro", "--graph"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["functions"] == 2
        edges = {(e["caller"], e["callee"]) for e in doc["edges"]}
        assert ("repro.index.use.query", "repro.index.wrap.route") in edges

    def test_budget_seconds_gate(self, flow_repo, capsys):
        assert main(
            ["--root", str(flow_repo), "src/repro", "--select", "VDB101",
             "--budget-seconds", "60"]
        ) == 0
        assert main(
            ["--root", str(flow_repo), "src/repro", "--select", "VDB101",
             "--budget-seconds", "0"]
        ) == 1
        capsys.readouterr()

    def test_changed_only_outside_git_falls_back_to_full_scan(
        self, flow_repo, capsys
    ):
        assert main(
            ["--root", str(flow_repo), "src/repro", "--changed-only"]
        ) == 1
        assert "VDB701" in capsys.readouterr().out

    def test_list_rules_reports_per_rule_time(self, flow_repo, capsys):
        assert main(
            ["--root", str(flow_repo), "src/repro", "--list-rules"]
        ) == 0
        out = capsys.readouterr().out
        assert "VDB701" in out and "s)" in out

    def test_via_pinned_suppression_matches_one_chain(self):
        found = flow_lint({
            "src/repro/index/wrap.py": """
                from ._kernels import beam_search

                def route(adj, raw, q):
                    return beam_search(adj, raw, q)
            """,
            "src/repro/index/use.py": """
                import numpy as np
                from .wrap import route

                def query(adj, xs, q):
                    mat = np.stack(xs)
                    return route(adj, mat, q)
            """,
        }, "VDB701")
        (finding,) = [f for f in found if f.severity == "error"]
        pinned = Suppression(
            rule="VDB701",
            path=finding.path,
            via=finding.via,
            justification="grandfathered edge",
        )
        wrong_chain = Suppression(
            rule="VDB701",
            path=finding.path,
            via="repro.other.path -> beam_search",
            justification="covers a different chain",
        )
        new, suppressed, stale = Baseline(suppressions=[pinned]).split([finding])
        assert new == [] and len(suppressed) == 1
        new, suppressed, stale = Baseline(
            suppressions=[wrong_chain]
        ).split([finding])
        assert len(new) == 1 and stale == [wrong_chain]

    def test_write_baseline_emits_via_and_round_trips(self, flow_repo, capsys):
        root = ["--root", str(flow_repo), "src/repro"]
        assert main(root + ["--write-baseline", "grandfathered"]) == 0
        capsys.readouterr()
        text = (flow_repo / "analysis" / "baseline.toml").read_text()
        assert 'via = "' in text
        assert main(root + ["--check"]) == 0


# --------------------------------------------------------------------------
# repo self-check


class TestRepoSelfCheck:
    def test_flow_rules_are_clean_at_head(self):
        result = run_analysis(
            ["src/repro"],
            ROOT,
            [get_rule("VDB701"), get_rule("VDB702"), get_rule("VDB703")],
        )
        failing = [f for f in result.findings if f.fails]
        assert failing == [], "\n".join(f.render() for f in failing)
        assert {"VDB701", "VDB702", "VDB703"} <= set(result.rule_seconds)

    def test_hot_region_covers_the_kernel_stack(self):
        from repro.analysis.driver import iter_python_files, load_modules

        files = iter_python_files(["src/repro"], ROOT)
        modules, _ = load_modules(files, ROOT)
        proj = Project(modules)
        hot = proj.hot_region()
        assert "repro.index._graph.beam_search" in hot
        assert "repro.core.executor.QueryExecutor.execute" in hot
        # Build-time work is cut at the cold boundary.
        assert not any(q.endswith(".build") for q in hot)

    def test_file_rule_fixture_helper_still_skips_project_rules(self):
        # analyze_source is the per-file fixture path: VDB7xx must not
        # run there (they need whole-project context).
        found = analyze_source(
            "import numpy as np\nx = np.zeros(3)\n",
            "src/repro/index/fixture.py",
        )
        assert all(not f.rule.startswith("VDB7") for f in found)
