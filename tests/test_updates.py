"""Tests for out-of-place updates (BufferedVectorIndex, §2.3)."""

import numpy as np
import pytest

from repro.core.updates import BufferedVectorIndex
from repro.index import FlatIndex, HnswIndex
from repro.scores import EuclideanScore


def make_buffered(merge_threshold=50, factory=None):
    factory = factory or (lambda: FlatIndex(EuclideanScore()))
    return BufferedVectorIndex(factory, dim=8, merge_threshold=merge_threshold)


@pytest.fixture
def vectors(rng):
    return rng.standard_normal((120, 8)).astype(np.float32)


class TestInsertSearch:
    def test_search_sees_buffered_items_immediately(self, vectors):
        buf = make_buffered(merge_threshold=None)
        ids = [buf.insert(v) for v in vectors[:20]]
        hits = buf.search(vectors[5], 3)
        assert hits[0].id == ids[5]
        assert buf.merges == 0  # nothing merged yet

    def test_search_merges_index_and_buffer(self, vectors):
        buf = make_buffered(merge_threshold=None)
        for v in vectors[:50]:
            buf.insert(v)
        buf.merge()
        late_ids = [buf.insert(v) for v in vectors[50:60]]
        # A query equal to a late (buffered) vector must find it first.
        hits = buf.search(vectors[55], 1)
        assert hits[0].id == late_ids[5]
        # And an early (indexed) vector is still findable.
        hits = buf.search(vectors[3], 1)
        assert hits[0].id == 3

    def test_results_globally_sorted(self, vectors):
        buf = make_buffered(merge_threshold=60)
        for v in vectors:
            buf.insert(v)
        hits = buf.search(vectors[0], 10)
        d = [h.distance for h in hits]
        assert d == sorted(d)

    def test_matches_flat_oracle_exactly(self, vectors):
        """With a flat inner index, buffered search must be exact."""
        buf = make_buffered(merge_threshold=40)
        for v in vectors:
            buf.insert(v)
        oracle = FlatIndex(EuclideanScore()).build(vectors)
        q = vectors[77] + 0.01
        got = [h.id for h in buf.search(q, 10)]
        expected = [h.id for h in oracle.search(q, 10)]
        assert got == expected


class TestMerge:
    def test_auto_merge_at_threshold(self, vectors):
        buf = make_buffered(merge_threshold=30)
        for v in vectors[:65]:
            buf.insert(v)
        assert buf.merges >= 2
        assert buf.buffered_count < 30

    def test_manual_merge_empties_buffer(self, vectors):
        buf = make_buffered(merge_threshold=None)
        for v in vectors[:20]:
            buf.insert(v)
        buf.merge()
        assert buf.buffered_count == 0
        assert len(buf) == 20

    def test_merge_time_recorded(self, vectors):
        buf = make_buffered(merge_threshold=None)
        for v in vectors[:10]:
            buf.insert(v)
        buf.merge()
        assert buf.merge_seconds > 0


class TestDeleteUpdate:
    def test_delete_hides_item(self, vectors):
        buf = make_buffered(merge_threshold=None)
        ids = [buf.insert(v) for v in vectors[:30]]
        buf.merge()
        buf.delete(ids[7])
        hits = buf.search(vectors[7], 5)
        assert ids[7] not in [h.id for h in hits]
        assert buf.get(ids[7]) is None
        assert len(buf) == 29

    def test_update_replaces_vector(self, vectors):
        buf = make_buffered(merge_threshold=None)
        ids = [buf.insert(v) for v in vectors[:30]]
        buf.merge()
        buf.update(ids[3], vectors[100])
        np.testing.assert_array_equal(buf.get(ids[3]), vectors[100])
        hits = buf.search(vectors[100], 1)
        assert hits[0].id == ids[3]

    def test_delete_survives_merge(self, vectors):
        buf = make_buffered(merge_threshold=None)
        ids = [buf.insert(v) for v in vectors[:30]]
        buf.delete(ids[0])
        buf.merge()
        assert buf.get(ids[0]) is None
        assert len(buf) == 29

    def test_update_survives_merge(self, vectors):
        buf = make_buffered(merge_threshold=None)
        ids = [buf.insert(v) for v in vectors[:30]]
        buf.update(ids[1], vectors[110])
        buf.merge()
        np.testing.assert_array_equal(buf.get(ids[1]), vectors[110])

    def test_delete_unmerged_buffered_item(self, vectors):
        buf = make_buffered(merge_threshold=None)
        item = buf.insert(vectors[0])
        buf.delete(item)
        assert buf.get(item) is None
        assert len(buf) == 0


class TestWithGraphIndex:
    def test_graph_backed_buffer(self, vectors):
        buf = BufferedVectorIndex(
            lambda: HnswIndex(m=8, ef_construction=32, seed=0),
            dim=8,
            merge_threshold=64,
        )
        ids = [buf.insert(v) for v in vectors]
        assert buf.merges >= 1
        hits = buf.search(vectors[10], 5)
        assert ids[10] in [h.id for h in hits]

    def test_write_throughput_advantage(self, vectors):
        """Buffered inserts must be much cheaper than rebuild-per-insert
        (the whole point of out-of-place updates)."""
        import time

        buffered = BufferedVectorIndex(
            lambda: HnswIndex(m=8, ef_construction=32, seed=0),
            dim=8, merge_threshold=None,
        )
        start = time.perf_counter()
        for v in vectors[:60]:
            buffered.insert(v)
        buffered_time = time.perf_counter() - start

        start = time.perf_counter()
        grown = []
        for v in vectors[:15]:  # 4x fewer inserts for the naive baseline
            grown.append(v)
            HnswIndex(m=8, ef_construction=32, seed=0).build(np.vstack(grown))
        naive_time = (time.perf_counter() - start) * 4  # scale to 60

        assert buffered_time < naive_time
