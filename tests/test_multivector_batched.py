"""Tests for multi-vector entity collections and batched graph search."""

import numpy as np
import pytest

from repro.bench.datasets import multi_vector_entities
from repro.core.batched import batched_graph_search
from repro.core.errors import CollectionError, QueryError
from repro.core.multivector import MultiVectorEntityCollection
from repro.core.types import SearchStats
from repro.index import HnswIndex


@pytest.fixture(scope="module")
def entity_collection():
    entities, queries = multi_vector_entities(
        num_entities=200, vectors_per_entity=3, dim=16, num_queries=10,
        query_vectors=2, seed=6,
    )
    coll = MultiVectorEntityCollection(
        dim=16, index_factory=lambda: HnswIndex(m=8, ef_construction=48, seed=0)
    )
    coll.insert_many(entities, [{"group": i % 4} for i in range(len(entities))])
    coll.build_index()
    return coll, queries


class TestEntityCollection:
    def test_counts(self, entity_collection):
        coll, _ = entity_collection
        assert len(coll) == 200
        assert coll.num_facets == 600

    def test_exact_finds_target_entity(self, entity_collection):
        coll, queries = entity_collection
        # Queries were generated around entity centers with matching seed
        # ordering; the nearest entity should appear at rank 1 most times.
        top1 = [coll.search_exact(group, k=1).ids[0] for group in queries]
        assert len(set(top1)) > 1  # sanity: not a degenerate answer

    def test_index_matches_exact(self, entity_collection):
        coll, queries = entity_collection
        agree = 0
        for group in queries:
            exact = coll.search_exact(group, k=5).ids
            accel = coll.search(group, k=5).ids
            agree += len(set(exact) & set(accel))
        assert agree >= 0.8 * 5 * len(queries)

    def test_index_touches_fewer_facets(self, entity_collection):
        coll, queries = entity_collection
        exact = coll.search_exact(queries[0], k=5)
        accel = coll.search(queries[0], k=5)
        assert accel.stats.candidates_examined < len(coll)
        assert exact.stats.distance_computations > 0

    def test_aggregators_change_ranking(self, entity_collection):
        coll, queries = entity_collection
        mean = coll.search_exact(queries[0], k=20, aggregator="mean").ids
        maxa = coll.search_exact(queries[0], k=20, aggregator="max").ids
        assert mean != maxa

    def test_weighted_query(self, entity_collection):
        coll, queries = entity_collection
        result = coll.search_exact(queries[0], k=3, weights=[10.0, 0.1])
        assert len(result) == 3

    def test_entity_accessors(self, entity_collection):
        coll, _ = entity_collection
        assert coll.entity_vectors(0).shape == (3, 16)
        assert coll.attributes(7) == {"group": 3}

    def test_validation(self):
        coll = MultiVectorEntityCollection(dim=4)
        with pytest.raises(CollectionError):
            coll.insert(np.empty((0, 4), dtype=np.float32))
        with pytest.raises(QueryError):
            coll.search(np.zeros((1, 4)), k=1)  # index not built
        with pytest.raises(CollectionError):
            MultiVectorEntityCollection(dim=0)

    def test_variable_facet_counts(self):
        coll = MultiVectorEntityCollection(dim=4)
        rng = np.random.default_rng(0)
        coll.insert(rng.standard_normal((1, 4)))
        coll.insert(rng.standard_normal((5, 4)))
        coll.build_index()
        assert coll.num_facets == 6
        result = coll.search(rng.standard_normal((2, 4)), k=2)
        assert set(result.ids) <= {0, 1}

    def test_insert_invalidates_index(self, entity_collection):
        coll = MultiVectorEntityCollection(dim=4)
        rng = np.random.default_rng(0)
        coll.insert(rng.standard_normal((2, 4)))
        coll.build_index()
        coll.insert(rng.standard_normal((2, 4)))
        with pytest.raises(QueryError):
            coll.search(np.zeros((1, 4)), k=1)


class TestBatchedGraphSearch:
    @pytest.fixture(scope="class")
    def graph(self, small_data):
        return HnswIndex(m=8, ef_construction=64, seed=0).build(small_data)

    def test_matches_individual_search_quality(self, graph, small_data,
                                               small_queries, ground_truth_10):
        batched = batched_graph_search(graph, small_queries, 10, ef_search=64)
        recalls = []
        for qi, hits in enumerate(batched):
            truth = set(int(t) for t in ground_truth_10[qi])
            recalls.append(len(truth & set(h.id for h in hits)) / 10)
        assert float(np.mean(recalls)) >= 0.9

    def test_results_sorted(self, graph, small_queries):
        batched = batched_graph_search(graph, small_queries, 5)
        for hits in batched:
            d = [h.distance for h in hits]
            assert d == sorted(d)

    def test_batch_order_preserved(self, graph, small_queries):
        batched = batched_graph_search(graph, small_queries, 1, ef_search=64)
        # Each query's top-1 should match its own individual search.
        agree = sum(
            batched[i][0].id == graph.search(q, 1, ef_search=64)[0].id
            for i, q in enumerate(small_queries)
        )
        assert agree >= len(small_queries) - 2

    def test_sharing_saves_work_on_similar_queries(self, graph, small_data):
        # A batch of 16 near-duplicate queries: shared entries should cut
        # total distance computations vs independent searches.
        rng = np.random.default_rng(1)
        base = small_data[0]
        batch = base + 0.01 * rng.standard_normal((16, small_data.shape[1]))
        batch = batch.astype(np.float32)

        shared = SearchStats()
        batched_graph_search(graph, batch, 10, ef_search=48, stats=shared,
                             group_size=16)
        independent = SearchStats()
        for q in batch:
            graph.search(q, 10, ef_search=48, stats=independent)
        assert shared.distance_computations < independent.distance_computations * 1.1

    def test_empty_batch(self, graph):
        assert batched_graph_search(graph, np.empty((0, 12), np.float32), 5) == []

    def test_works_on_plain_graph(self, small_data, small_queries):
        from repro.index import VamanaIndex

        vamana = VamanaIndex(max_degree=10, beam_width=32, seed=0).build(small_data)
        batched = batched_graph_search(vamana, small_queries[:4], 5)
        assert all(len(hits) == 5 for hits in batched)


class TestMergedFrontierDifferential:
    """Merged-frontier kernel vs the retained per-member reference.

    The merged traversal is deliberately not bitwise-identical to
    per-member beams (its bound is the loosest member's solo bound), so
    the contract tested here is the bounded-recall one the module
    docstring states: deterministic output, sorted pools, and recall on
    clustered batches at or above the per-member reference within a
    small slack.
    """

    @pytest.fixture(scope="class")
    def workload(self):
        rng = np.random.default_rng(9)
        centers = rng.standard_normal((8, 24)) * 4.0
        data = (
            centers[rng.integers(0, 8, size=1200)]
            + rng.standard_normal((1200, 24))
        ).astype(np.float32)
        graph = HnswIndex(m=8, ef_construction=64, seed=0).build(data)
        base = data[rng.integers(0, 1200, size=6)]
        queries = (
            base[rng.integers(0, 6, size=24)]
            + 0.02 * rng.standard_normal((24, 24))
        ).astype(np.float32)
        return graph, data, queries

    @staticmethod
    def _recall(results, data, queries, k):
        hits = 0
        for qi, pairs in enumerate(results):
            truth = np.argsort(
                np.sum((data - queries[qi]) ** 2, axis=1), kind="stable"
            )[:k]
            hits += len(set(int(t) for t in truth) & {h.id for h in pairs})
        return hits / (len(queries) * k)

    def test_recall_not_below_reference(self, workload):
        from repro.core.batched import batched_graph_search_reference

        graph, data, queries = workload
        k = 10
        merged = batched_graph_search(
            graph, queries, k, ef_search=48, group_size=8
        )
        reference = batched_graph_search_reference(
            graph, queries, k, ef_search=48, group_size=8
        )
        merged_recall = self._recall(merged, data, queries, k)
        ref_recall = self._recall(reference, data, queries, k)
        assert merged_recall >= ref_recall - 0.05

    def test_deterministic(self, workload):
        graph, _, queries = workload
        a = batched_graph_search(graph, queries, 10, ef_search=48, group_size=8)
        b = batched_graph_search(graph, queries, 10, ef_search=48, group_size=8)
        for ha, hb in zip(a, b):
            assert [h.id for h in ha] == [h.id for h in hb]
            assert [h.distance for h in ha] == [h.distance for h in hb]

    def test_group_expansions_counted_once(self, workload):
        from repro.core.batched import batched_graph_search_reference

        graph, _, queries = workload
        merged_stats = SearchStats()
        batched_graph_search(
            graph, queries, 10, ef_search=48, group_size=8, stats=merged_stats
        )
        ref_stats = SearchStats()
        batched_graph_search_reference(
            graph, queries, 10, ef_search=48, group_size=8, stats=ref_stats
        )
        # nodes_visited counts *group* expansions: on a clustered batch
        # the shared frontier must expand far fewer nodes than the
        # per-member loops do in aggregate — that reduction is the win.
        assert merged_stats.nodes_visited < ref_stats.nodes_visited

    def test_kernel_allowed_mask(self, workload):
        from repro.hybrid.visitfirst import graph_entry_and_adjacency
        from repro.index._graph import batched_beam_search

        graph, data, queries = workload
        surface, entries = graph_entry_and_adjacency(graph)
        allowed = np.zeros(data.shape[0], dtype=bool)
        allowed[::2] = True
        results = batched_beam_search(
            queries[:6], graph._vectors, surface, entries, 16, graph.score,
            allowed=allowed,
        )
        assert len(results) == 6
        for pairs in results:
            assert pairs, "allowed mask should not empty the pools"
            assert all(node % 2 == 0 for _, node in pairs)
            d = [dist for dist, _ in pairs]
            assert d == sorted(d)

    def test_kernel_empty_and_degenerate_inputs(self, workload):
        from repro.hybrid.visitfirst import graph_entry_and_adjacency
        from repro.index._graph import batched_beam_search

        graph, _, queries = workload
        surface, entries = graph_entry_and_adjacency(graph)
        assert batched_beam_search(
            np.empty((0, 24), np.float32), graph._vectors, surface, entries,
            8, graph.score,
        ) == []
        out = batched_beam_search(
            queries[:3], graph._vectors, surface, entries, 0, graph.score
        )
        assert out == [[], [], []]
        out = batched_beam_search(
            queries[:2], graph._vectors, surface, [], 8, graph.score
        )
        assert out == [[], []]
