"""Property-based tests (hypothesis) for index invariants.

These run on tiny random collections so hypothesis can explore many
shapes quickly; the invariants are the ones the executor and hybrid
operators rely on for *any* data.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.index import (
    AnnoyIndex,
    HnswIndex,
    IvfFlatIndex,
    KdTreeIndex,
    LshIndex,
)
from repro.index.flat import FlatIndex
from repro.scores import EuclideanScore

finite = st.floats(min_value=-50, max_value=50, allow_nan=False, width=32)


def collections(min_rows=4, max_rows=40, dim=4):
    return arrays(np.float32, st.tuples(
        st.integers(min_value=min_rows, max_value=max_rows),
        st.just(dim),
    ), elements=finite)


class TestFlatOracleProperties:
    @given(data=collections(), k=st.integers(min_value=1, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_results_sorted_unique_bounded(self, data, k):
        index = FlatIndex(EuclideanScore()).build(data)
        hits = index.search(data[0], k)
        assert len(hits) <= k
        ids = [h.id for h in hits]
        assert len(ids) == len(set(ids))
        d = [h.distance for h in hits]
        assert d == sorted(d)

    @given(data=collections())
    @settings(max_examples=50, deadline=None)
    def test_member_query_top1_is_self_or_duplicate(self, data):
        index = FlatIndex(EuclideanScore()).build(data)
        top = index.search(data[0], 1)[0]
        # Either itself, or an exact duplicate row at distance 0.
        assert top.id == 0 or top.distance == pytest.approx(0.0, abs=1e-5)

    @given(data=collections(), radius=st.floats(min_value=0, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_range_search_complete_and_correct(self, data, radius):
        index = FlatIndex(EuclideanScore()).build(data)
        hits = index.range_search(data[0], radius)
        got = set(h.id for h in hits)
        dists = EuclideanScore().distances(data[0], data)
        expected = set(int(i) for i in np.flatnonzero(dists <= radius))
        assert got == expected

    @given(data=collections(min_rows=6))
    @settings(max_examples=50, deadline=None)
    def test_mask_is_respected_and_complete(self, data):
        index = FlatIndex(EuclideanScore()).build(data)
        mask = np.zeros(data.shape[0], dtype=bool)
        mask[::2] = True
        hits = index.search(data[1], data.shape[0], allowed=mask)
        assert all(h.id % 2 == 0 for h in hits)
        assert len(hits) == int(mask.sum())


class TestExactKdTreeEquivalence:
    @given(
        data=collections(min_rows=8, max_rows=60),
        k=st.integers(min_value=1, max_value=8),
        qi=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=40, deadline=None)
    def test_kdtree_exact_equals_flat(self, data, k, qi):
        """Branch-and-bound k-d search is exact for L2 on any data."""
        q = data[qi % data.shape[0]] + np.float32(0.1)
        flat = FlatIndex(EuclideanScore()).build(data)
        kd = KdTreeIndex(leaf_size=4).build(data)
        expected = [(h.id, round(h.distance, 4)) for h in flat.search(q, k)]
        got = [(h.id, round(h.distance, 4)) for h in kd.search(q, k)]
        # Distances must match exactly; ids may differ only on ties.
        assert [d for _, d in got] == [d for _, d in expected]


APPROX_INDEXES = [
    lambda: LshIndex(num_tables=6, hashes_per_table=3, seed=0),
    lambda: IvfFlatIndex(nlist=4, nprobe=2, seed=0),
    lambda: AnnoyIndex(num_trees=3, search_k=16, seed=0),
    lambda: HnswIndex(m=4, ef_construction=16, ef_search=16, seed=0),
]


@pytest.mark.parametrize("factory", APPROX_INDEXES,
                         ids=["lsh", "ivf", "annoy", "hnsw"])
class TestApproximateIndexInvariants:
    @given(data=collections(min_rows=10, max_rows=40))
    @settings(max_examples=15, deadline=None)
    def test_no_hallucinated_ids(self, factory, data):
        index = factory().build(data)
        hits = index.search(data[0], 5)
        assert all(0 <= h.id < data.shape[0] for h in hits)

    @given(data=collections(min_rows=10, max_rows=40))
    @settings(max_examples=15, deadline=None)
    def test_distances_are_true_distances(self, factory, data):
        """Whatever an index returns, the reported distance must equal
        the true score distance of that id (no stale/approx values)."""
        index = factory().build(data)
        q = data[2]
        score = EuclideanScore()
        for hit in index.search(q, 5):
            true = float(score.distances(q, data[hit.id][None, :])[0])
            assert hit.distance == pytest.approx(true, rel=1e-3, abs=1e-3)

    @given(data=collections(min_rows=10, max_rows=40))
    @settings(max_examples=15, deadline=None)
    def test_mask_never_violated(self, factory, data):
        index = factory().build(data)
        mask = np.zeros(data.shape[0], dtype=bool)
        mask[: data.shape[0] // 2] = True
        hits = index.search(data[0], 5, allowed=mask)
        assert all(mask[h.id] for h in hits)
