"""Data-dependence caveats (§2.2): learned structures degrade
out-of-distribution; random ones don't care.

The tutorial's recurring warning — learned partitionings "are data
dependent and cannot easily handle out-of-distribution updates" —
made measurable: train on distribution A, evaluate on shifted
distribution B, and compare against the data-*independent* baseline
(LSH / random trees), which by construction cannot degrade.
"""

import numpy as np
import pytest

from repro.bench.datasets import gaussian_mixture
from repro.bench.metrics import exact_ground_truth, recall_at_k
from repro.index import ItqHashIndex, LshIndex, SpectralHashIndex
from repro.quantization import ProductQuantizer, ScalarQuantizer
from repro.scores import EuclideanScore


@pytest.fixture(scope="module")
def shifted_distributions():
    in_dist = gaussian_mixture(n=400, dim=16, num_clusters=6, seed=11).train
    # Same generator family, translated far outside the training support.
    out_dist = gaussian_mixture(n=400, dim=16, num_clusters=6, seed=12).train + 25.0
    return in_dist, out_dist


class TestQuantizerDataDependence:
    def test_sq_error_explodes_out_of_distribution(self, shifted_distributions):
        in_dist, out_dist = shifted_distributions
        sq = ScalarQuantizer(bits=8).train(in_dist)
        in_err = float(np.abs(sq.decode(sq.encode(in_dist)) - in_dist).mean())
        out_err = float(np.abs(sq.decode(sq.encode(out_dist)) - out_dist).mean())
        # Out-of-range values clip to the trained min/max.
        assert out_err > 10 * in_err

    def test_pq_error_grows_out_of_distribution(self, shifted_distributions):
        in_dist, out_dist = shifted_distributions
        pq = ProductQuantizer(m=4, ks=32, seed=0).train(in_dist)
        assert pq.quantization_error(out_dist) > 3 * pq.quantization_error(in_dist)


class TestHashDataDependence:
    @staticmethod
    def _stale_hash_recall(index_cls, train, serve, **kwargs):
        """Recall on ``serve`` data using a hash *fit on* ``train``.

        We fit the learned components on ``train`` (first build), then
        graft the stale hash onto a ``serve`` collection by re-encoding
        serve rows with it — exactly what happens when a system keeps
        ingesting after the distribution drifted.
        """
        fitted = index_cls(**kwargs).build(train)
        stale = index_cls(**kwargs)
        # Clone the learned parameters, then attach the new collection.
        for attr in ("_mean", "_axes", "_modes", "_lo", "_span", "_rotation"):
            if hasattr(fitted, attr):
                setattr(stale, attr, getattr(fitted, attr))
        stale._ids = np.arange(serve.shape[0], dtype=np.int64)
        stale._vectors = serve
        from repro.index.l2h import pack_bits

        stale._codes = pack_bits(stale._bits(serve.astype(np.float64)))

        queries = serve[:15] + 0.05
        truth = exact_ground_truth(serve, queries, 10, EuclideanScore())
        recalls = [
            recall_at_k([h.id for h in stale.search(q, 10, rerank=40)], truth[i])
            for i, q in enumerate(queries)
        ]
        return float(np.mean(recalls))

    @pytest.mark.parametrize("cls", [SpectralHashIndex, ItqHashIndex])
    def test_stale_learned_hash_degrades(self, cls, shifted_distributions):
        in_dist, out_dist = shifted_distributions
        fresh = self._stale_hash_recall(cls, in_dist, in_dist, nbits=24)
        stale = self._stale_hash_recall(cls, in_dist, out_dist, nbits=24)
        assert stale <= fresh + 0.05  # drifted data: no better, usually worse

    def test_lsh_is_distribution_free(self, shifted_distributions):
        """Random hyperplanes through a shifted cloud still separate it:
        LSH recall in-distribution ~= out-of-distribution."""
        in_dist, out_dist = shifted_distributions

        def recall(data):
            index = LshIndex(num_tables=12, hashes_per_table=6, seed=0).build(data)
            queries = data[:15] + 0.05
            truth = exact_ground_truth(data, queries, 10, EuclideanScore())
            return float(np.mean([
                recall_at_k([h.id for h in index.search(q, 10)], truth[i])
                for i, q in enumerate(queries)
            ]))

        in_recall = recall(in_dist)
        out_recall = recall(out_dist)
        assert abs(in_recall - out_recall) < 0.25
