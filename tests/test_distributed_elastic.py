"""Tests for async replica writes and elastic scale-out (§2.3)."""

import numpy as np
import pytest

from repro.core.errors import VdbmsError
from repro.distributed import (
    DistributedSearchCluster,
    IndexGuidedSharding,
    UniformSharding,
)


@pytest.fixture
def cluster(small_data):
    cluster = DistributedSearchCluster(
        sharding=UniformSharding(4), replication_factor=2, index_type="flat"
    )
    cluster.load(small_data)
    return cluster


class TestAsyncReplication:
    def test_primary_sees_write_immediately(self, cluster, rng):
        new_vec = rng.standard_normal(12).astype(np.float32)
        shard = cluster.insert(new_vec, item_id=1000)
        primary = cluster.nodes[shard][0]
        hits, _, _ = primary.search(new_vec, 1)
        assert hits[0].id == 1000

    def test_replica_stale_until_sync(self, cluster, rng):
        new_vec = 100 + rng.standard_normal(12).astype(np.float32)
        shard = cluster.insert(new_vec, item_id=1000)
        assert cluster.pending_replication() == 1
        replica = cluster.nodes[shard][1]
        hits, _, _ = replica.search(new_vec, 1)
        assert hits[0].id != 1000  # not yet applied
        applied = cluster.sync_replicas()
        assert applied >= 1
        assert cluster.pending_replication() == 0
        hits, _, _ = replica.search(new_vec, 1)
        assert hits[0].id == 1000

    def test_search_finds_write_after_sync_regardless_of_replica(
        self, cluster, rng
    ):
        new_vec = 50 + rng.standard_normal(12).astype(np.float32)
        cluster.insert(new_vec, item_id=2000)
        cluster.sync_replicas()
        for _ in range(4):  # cycles through replicas round-robin
            result, _ = cluster.search(new_vec, 1)
            assert result.ids == [2000]

    def test_insert_requires_load(self):
        cluster = DistributedSearchCluster(num_shards=2, index_type="flat")
        with pytest.raises(VdbmsError):
            cluster.insert(np.zeros(4, np.float32), 1)

    def test_index_guided_insert_routes_by_geometry(self, small_data, rng):
        sharding = IndexGuidedSharding(4, cells_per_shard=2, seed=0)
        cluster = DistributedSearchCluster(sharding=sharding, index_type="flat")
        cluster.load(small_data)
        # Insert a copy of an existing vector: must land on its shard.
        probe = small_data[0]
        expected = int(sharding.assign(probe[None, :])[0])
        got = cluster.insert(probe, item_id=5000)
        assert got == expected


class TestScaleOut:
    def test_results_identical_after_scale_out(self, cluster, small_data,
                                               small_queries):
        before, _ = cluster.search(small_queries[0], 10)
        moved = cluster.scale_out(8)
        after, dstats = cluster.search(small_queries[0], 10)
        assert after.ids == before.ids
        assert moved > 0
        assert dstats.shards_contacted == 8

    def test_shards_balanced_after_scale_out(self, cluster):
        cluster.scale_out(8)
        sizes = cluster.shard_sizes()
        assert len(sizes) == 8
        assert max(sizes) - min(sizes) <= 1

    def test_movement_bounded(self, cluster, small_data):
        """Modulo resharding moves at most all vectors; record it."""
        moved = cluster.scale_out(8)
        assert 0 < moved <= len(small_data)
        assert cluster.vectors_moved == moved

    def test_pending_writes_flushed_before_move(self, cluster, rng):
        cluster.insert(rng.standard_normal(12).astype(np.float32), 999)
        assert cluster.pending_replication() > 0
        cluster.scale_out(8)
        assert cluster.pending_replication() == 0
        # The write survives resharding.
        total = sum(cluster.shard_sizes())
        assert total == 301

    def test_validation(self, cluster):
        with pytest.raises(VdbmsError, match="more shards"):
            cluster.scale_out(4)
        guided = DistributedSearchCluster(
            sharding=IndexGuidedSharding(2, seed=0), index_type="flat"
        )
        guided.load(np.zeros((10, 4), dtype=np.float32))
        with pytest.raises(VdbmsError, match="UniformSharding"):
            guided.scale_out(4)
