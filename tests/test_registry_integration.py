"""Registry tests plus end-to-end integration scenarios."""

import numpy as np
import pytest

from repro import (
    VectorDatabase,
    available_indexes,
    make_index,
)
from repro.core.errors import UnknownIndexError
from repro.core.planner import QueryPlan
from repro.hybrid.predicates import Field
from repro.index import index_families, register_index
from repro.index.flat import FlatIndex


class TestIndexRegistry:
    def test_all_families_present(self):
        families = index_families()
        assert set(families) >= {"flat", "table", "tree", "graph"}
        assert "hnsw" in families["graph"]
        assert "lsh" in families["table"]
        assert "annoy" in families["tree"]
        assert "diskann" in families["graph"]

    def test_unknown_index(self):
        with pytest.raises(UnknownIndexError, match="available"):
            make_index("btree")

    def test_register_custom(self):
        class MyIndex(FlatIndex):
            name = "my_custom"

        register_index("my_custom", MyIndex)
        assert isinstance(make_index("my_custom"), MyIndex)
        assert "my_custom" in available_indexes()

    def test_opq_alias_sets_optimized(self):
        index = make_index("opq", m=2, ks=4)
        assert index.name == "opq"

    def test_kwargs_forwarded(self):
        index = make_index("hnsw", m=5)
        assert index.m == 5


class TestEndToEnd:
    """Integration scenarios exercising the full Figure-1 pipeline."""

    def test_ecommerce_scenario(self, rng):
        """Product search: insert catalog, hybrid query, delete, re-query."""
        dim = 16
        db = VectorDatabase(dim=dim, score="cosine", selector="rule")
        n = 300
        vectors = rng.standard_normal((n, dim)).astype(np.float32)
        attrs = [
            {"category": ["shoes", "bags", "hats"][i % 3],
             "price": float(10 + i % 90)}
            for i in range(n)
        ]
        db.insert_many(vectors, attrs)
        db.create_index("main", "hnsw", m=8, ef_construction=48, seed=0)

        predicate = (Field("category") == "shoes") & (Field("price") < 50)
        result = db.search(vectors[0], k=5, predicate=predicate)
        cols = db.collection.columns
        for i in result.ids:
            assert cols["category"][i] == "shoes"
            assert cols["price"][i] < 50

        # Business rule change: delete an item and verify it vanishes.
        victim = result.ids[0]
        db.delete(victim)
        again = db.search(vectors[0], k=5, predicate=predicate)
        assert victim not in again.ids

    def test_all_query_types_one_database(self, hybrid_dataset):
        db = VectorDatabase(dim=hybrid_dataset.dim)
        db.insert_many(hybrid_dataset.train, hybrid_dataset.attributes)
        db.create_index("g", "hnsw", m=8, seed=0)
        q = hybrid_dataset.queries[0]

        knn = db.search(q, k=5)
        ann = db.search(q, k=5, c=0.5)
        rng_q = db.range_search(q, radius=3.0)
        batch = db.batch_search(hybrid_dataset.queries[:3], k=5)
        mv = db.multi_vector_search(hybrid_dataset.queries[:2], k=5)
        hybrid = db.search(q, k=5, predicate=Field("rating") >= 2)

        assert len(knn) == 5 and len(ann) == 5
        assert all(d <= 3.0 for d in rng_q.distances)
        assert len(batch) == 3
        assert len(mv) == 5
        assert len(hybrid) == 5

    def test_ck_guarantee_on_exact_plans(self, hybrid_dataset):
        from repro.core.query import satisfies_ck

        db = VectorDatabase(dim=hybrid_dataset.dim)
        db.insert_many(hybrid_dataset.train, hybrid_dataset.attributes)
        q = hybrid_dataset.queries[0]
        exact = db.search(q, k=10, plan=QueryPlan("brute_force"))
        true_kth = exact.distances[-1]
        assert satisfies_ck(exact.distances, true_kth, c=0.0)

    def test_score_consistency_across_plans(self, hybrid_dataset):
        """Every plan must agree on the distance of a shared result."""
        db = VectorDatabase(dim=hybrid_dataset.dim)
        db.insert_many(hybrid_dataset.train, hybrid_dataset.attributes)
        db.create_index("g", "hnsw", m=8, ef_construction=64, seed=0)
        q = hybrid_dataset.queries[0]
        predicate = Field("rating") >= 2
        by_plan = {}
        for plan in (QueryPlan("pre_filter"),
                     QueryPlan("block_first", "g"),
                     QueryPlan("post_filter", "g", oversample=10.0)):
            result = db.search(q, k=5, predicate=predicate, plan=plan)
            by_plan[plan.strategy] = {h.id: h.distance for h in result}
        shared = set.intersection(*(set(v) for v in by_plan.values()))
        assert shared
        for item in shared:
            distances = {round(v[item], 4) for v in by_plan.values()}
            assert len(distances) == 1

    def test_mixed_score_database(self, rng):
        """Inner-product database ranks by similarity descending."""
        db = VectorDatabase(dim=8, score="ip")
        vectors = rng.standard_normal((100, 8)).astype(np.float32)
        db.insert_many(vectors)
        q = vectors[0]
        result = db.search(q, k=10, plan=QueryPlan("brute_force"))
        sims = vectors[result.ids] @ q
        assert (np.diff(sims) <= 1e-5).all()  # descending inner product

    def test_document_retrieval_via_embedder(self):
        from repro.embed import HashingTextEmbedder

        db = VectorDatabase(embedder=HashingTextEmbedder(dim=64), score="cosine")
        corpus = [
            "postgresql relational database transactions",
            "vector similarity search with hnsw graphs",
            "chocolate chip cookie recipe with butter",
            "approximate nearest neighbor search algorithms",
            "gardening tips for tomato plants in summer",
        ]
        db.insert_many(entities=corpus)
        result = db.search(entity="nearest neighbor vector search", k=2)
        assert set(result.ids) <= {1, 3}
