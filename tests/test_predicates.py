"""Tests for the predicate AST and selectivity estimation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import PredicateError
from repro.hybrid.predicates import Between, Comparison, Field, In, TruePredicate


@pytest.fixture
def columns():
    return {
        "price": np.array([5.0, 15.0, 25.0, 35.0, 45.0]),
        "category": np.array(["a", "b", "a", "c", "b"]),
        "stock": np.array([0, 10, 20, 30, 40]),
    }


class TestComparison:
    def test_all_operators(self, columns):
        assert Comparison("price", "<", 20).evaluate(columns).tolist() == [
            True, True, False, False, False,
        ]
        assert Comparison("price", ">=", 35).evaluate(columns).sum() == 2
        assert Comparison("category", "==", "a").evaluate(columns).sum() == 2
        assert Comparison("category", "!=", "a").evaluate(columns).sum() == 3

    def test_unknown_operator(self):
        with pytest.raises(PredicateError):
            Comparison("price", "~", 3)

    def test_unknown_attribute(self, columns):
        with pytest.raises(PredicateError, match="known attributes"):
            Comparison("color", "==", "red").evaluate(columns)

    def test_attributes(self):
        assert Comparison("x", "<", 1).attributes() == {"x"}


class TestCombinators:
    def test_and_or_not(self, columns):
        p = (Field("price") > 10) & (Field("category") == "a")
        assert p.evaluate(columns).tolist() == [False, False, True, False, False]
        q = (Field("price") < 10) | (Field("price") > 40)
        assert q.evaluate(columns).sum() == 2
        assert (~q).evaluate(columns).sum() == 3

    def test_nested_attributes_union(self):
        p = (Field("a") > 1) & ((Field("b") == 2) | ~(Field("c") < 3))
        assert p.attributes() == {"a", "b", "c"}

    def test_in(self, columns):
        p = Field("category").isin(["a", "c"])
        assert p.evaluate(columns).tolist() == [True, False, True, True, False]

    def test_between_inclusive(self, columns):
        p = Field("price").between(15, 35)
        assert p.evaluate(columns).tolist() == [False, True, True, True, False]

    def test_true_predicate(self, columns):
        assert TruePredicate().evaluate(columns).all()
        assert TruePredicate().attributes() == set()

    def test_true_predicate_needs_columns(self):
        with pytest.raises(PredicateError):
            TruePredicate().evaluate({})


class TestSelectivity:
    def test_exact(self, columns):
        assert Comparison("price", "<", 20).selectivity(columns) == pytest.approx(0.4)

    def test_sampled_close_to_exact(self, rng):
        columns = {"x": rng.uniform(size=5000)}
        p = Field("x") < 0.3
        exact = p.selectivity(columns)
        sampled = p.selectivity(columns, sample_size=1000, seed=1)
        assert abs(exact - sampled) < 0.08

    def test_no_attributes_is_one(self, columns):
        assert TruePredicate().selectivity(columns) == 1.0

    def test_empty_columns(self):
        assert Comparison("x", "<", 1).selectivity({"x": np.array([])}) == 0.0


class TestFieldBuilder:
    def test_builders_produce_expected_types(self):
        assert isinstance(Field("x") == 1, Comparison)
        assert isinstance(Field("x") != 1, Comparison)
        assert isinstance(Field("x") < 1, Comparison)
        assert isinstance(Field("x") <= 1, Comparison)
        assert isinstance(Field("x") > 1, Comparison)
        assert isinstance(Field("x") >= 1, Comparison)
        assert isinstance(Field("x").isin([1]), In)
        assert isinstance(Field("x").between(0, 1), Between)


class TestDeMorganProperty:
    """Hypothesis: boolean algebra identities hold for any data."""

    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=10), min_size=1, max_size=40
        ),
        a=st.integers(min_value=0, max_value=10),
        b=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_de_morgan(self, values, a, b):
        columns = {"x": np.asarray(values)}
        p = Field("x") < a
        q = Field("x") > b
        lhs = (~(p & q)).evaluate(columns)
        rhs = ((~p) | (~q)).evaluate(columns)
        np.testing.assert_array_equal(lhs, rhs)

    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=10), min_size=1, max_size=40
        ),
        a=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_double_negation(self, values, a):
        columns = {"x": np.asarray(values)}
        p = Field("x") >= a
        np.testing.assert_array_equal(
            p.evaluate(columns), (~~p).evaluate(columns)
        )

    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=6), min_size=1, max_size=40
        ),
        picks=st.lists(st.integers(min_value=0, max_value=6), min_size=1,
                       max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_in_equals_or_chain(self, values, picks):
        columns = {"x": np.asarray(values)}
        in_pred = In("x", picks).evaluate(columns)
        or_pred = Comparison("x", "==", picks[0])
        for p in picks[1:]:
            or_pred = or_pred | Comparison("x", "==", p)
        np.testing.assert_array_equal(in_pred, or_pred.evaluate(columns))
