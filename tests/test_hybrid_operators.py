"""Tests for the hybrid scan operators (§2.3)."""

import pytest

from repro.core.collection import VectorCollection
from repro.core.types import SearchStats
from repro.hybrid import (
    AttributePartitionedIndex,
    adaptive_postfilter_scan,
    blocked_index_scan,
    online_bitmask,
    postfilter_scan,
    prefilter_scan,
    visit_first_scan,
)
from repro.hybrid.predicates import Field
from repro.index import FlatIndex, HnswIndex, IvfFlatIndex
from repro.scores import EuclideanScore


@pytest.fixture(scope="module")
def hybrid_coll(hybrid_dataset):
    coll = VectorCollection(hybrid_dataset.dim)
    coll.insert_many(hybrid_dataset.train, hybrid_dataset.attributes)
    return coll


@pytest.fixture(scope="module")
def graph_index(hybrid_dataset):
    return HnswIndex(m=8, ef_construction=48, seed=0).build(hybrid_dataset.train)


@pytest.fixture(scope="module")
def flat_index(hybrid_dataset):
    return FlatIndex(EuclideanScore()).build(hybrid_dataset.train)


def exact_filtered(coll, flat, query, k, predicate):
    mask = coll.predicate_mask(predicate)
    return [h.id for h in flat.search(query, k, allowed=mask)]


class TestBlockFirst:
    def test_matches_exact_filtered_results(self, hybrid_coll, graph_index,
                                            flat_index, hybrid_dataset):
        predicate = Field("category") == 2
        q = hybrid_dataset.queries[0]
        expected = exact_filtered(hybrid_coll, flat_index, q, 5, predicate)
        got = [
            h.id
            for h in blocked_index_scan(
                graph_index, hybrid_coll, q, 5, predicate, ef_search=128
            )
        ]
        # Graph search is approximate; demand >= 4/5 overlap and full
        # predicate compliance.
        assert len(set(got) & set(expected)) >= 4
        cats = hybrid_coll.columns["category"]
        assert all(cats[i] == 2 for i in got)

    def test_bitmask_counts_stats(self, hybrid_coll, graph_index, hybrid_dataset):
        stats = SearchStats()
        blocked_index_scan(
            graph_index, hybrid_coll, hybrid_dataset.queries[0], 5,
            Field("rating") >= 3, stats=stats,
        )
        assert stats.predicate_evaluations >= hybrid_coll.capacity

    def test_online_bitmask(self, hybrid_coll):
        mask = online_bitmask(hybrid_coll, Field("price") < 20)
        assert mask.dtype == bool
        assert mask.sum() == (hybrid_coll.columns["price"] < 20).sum()


class TestPreFilter:
    def test_exact_under_any_selectivity(self, hybrid_coll, flat_index,
                                         hybrid_dataset):
        for predicate in (Field("category") == 0, Field("price") < 15,
                          Field("rating") >= 2):
            q = hybrid_dataset.queries[1]
            expected = exact_filtered(hybrid_coll, flat_index, q, 5, predicate)
            got = [
                h.id
                for h in prefilter_scan(
                    hybrid_coll, q, 5, predicate, EuclideanScore()
                )
            ]
            assert got == expected

    def test_cost_proportional_to_selectivity(self, hybrid_coll, hybrid_dataset):
        stats = SearchStats()
        prefilter_scan(
            hybrid_coll, hybrid_dataset.queries[0], 5, Field("category") == 1,
            EuclideanScore(), stats=stats,
        )
        expected_survivors = int(hybrid_coll.predicate_mask(Field("category") == 1).sum())
        assert stats.distance_computations == expected_survivors

    def test_empty_result_when_nothing_matches(self, hybrid_coll, hybrid_dataset):
        hits = prefilter_scan(
            hybrid_coll, hybrid_dataset.queries[0], 5, Field("price") < -1,
            EuclideanScore(),
        )
        assert hits == []


class TestPostFilter:
    def test_may_return_fewer_than_k(self, hybrid_coll, flat_index,
                                     hybrid_dataset):
        """The §2.6(3) hazard: without oversampling, a selective filter
        starves the result set."""
        predicate = Field("category") == 0  # ~20% selectivity
        q = hybrid_dataset.queries[0]
        hits = postfilter_scan(
            flat_index, hybrid_coll, q, 10, predicate, oversample=1.0
        )
        assert len(hits) < 10

    def test_oversampling_fills_result(self, hybrid_coll, flat_index,
                                       hybrid_dataset):
        predicate = Field("category") == 0
        q = hybrid_dataset.queries[0]
        hits = postfilter_scan(
            flat_index, hybrid_coll, q, 10, predicate, oversample=20.0
        )
        assert len(hits) == 10

    def test_adaptive_retries_until_k(self, hybrid_coll, flat_index,
                                      hybrid_dataset):
        predicate = Field("rating") == 1  # ~20%
        q = hybrid_dataset.queries[2]
        result = adaptive_postfilter_scan(
            flat_index, hybrid_coll, q, 10, predicate,
            selectivity_hint=1.0,  # deliberately wrong: forces retries
        )
        assert len(result.hits) == 10
        assert result.attempts >= 2
        assert result.final_oversample > 1.0

    def test_adaptive_first_try_with_good_hint(self, hybrid_coll, flat_index,
                                               hybrid_dataset):
        predicate = Field("rating") >= 2  # ~80%
        result = adaptive_postfilter_scan(
            flat_index, hybrid_coll, hybrid_dataset.queries[0], 10, predicate
        )
        assert result.attempts == 1

    def test_results_satisfy_predicate(self, hybrid_coll, flat_index,
                                       hybrid_dataset):
        predicate = Field("price") > 30
        hits = postfilter_scan(
            flat_index, hybrid_coll, hybrid_dataset.queries[0], 10, predicate,
            oversample=8.0,
        )
        prices = hybrid_coll.columns["price"]
        assert all(prices[h.id] > 30 for h in hits)


class TestVisitFirst:
    def test_returns_only_passing(self, hybrid_coll, graph_index, hybrid_dataset):
        predicate = Field("category") == 3
        hits = visit_first_scan(
            graph_index, hybrid_coll, hybrid_dataset.queries[0], 5, predicate
        )
        cats = hybrid_coll.columns["category"]
        assert all(cats[h.id] == 3 for h in hits)
        assert len(hits) > 0

    def test_quality_close_to_exact(self, hybrid_coll, graph_index, flat_index,
                                    hybrid_dataset):
        predicate = Field("rating") >= 3
        q = hybrid_dataset.queries[1]
        expected = exact_filtered(hybrid_coll, flat_index, q, 5, predicate)
        hits = visit_first_scan(
            graph_index, hybrid_coll, q, 5, predicate, ef=96
        )
        assert len(set(h.id for h in hits) & set(expected)) >= 3

    def test_traverses_through_blocked_nodes(self, hybrid_coll, graph_index,
                                             hybrid_dataset):
        # A very selective predicate still finds results because blocked
        # nodes remain traversable.
        predicate = (Field("category") == 1) & (Field("rating") == 5)
        sel = hybrid_coll.selectivity(predicate)
        assert sel < 0.1
        hits = visit_first_scan(
            graph_index, hybrid_coll, hybrid_dataset.queries[0], 3, predicate,
            ef=64,
        )
        expected = int(hybrid_coll.predicate_mask(predicate).sum())
        assert len(hits) == min(3, expected) or len(hits) > 0

    def test_requires_graph_index(self, hybrid_coll, hybrid_dataset):
        ivf = IvfFlatIndex(nlist=8).build(hybrid_dataset.train)
        with pytest.raises(TypeError, match="graph index"):
            visit_first_scan(
                ivf, hybrid_coll, hybrid_dataset.queries[0], 5,
                Field("category") == 0,
            )

    def test_works_on_plain_graph_index(self, hybrid_coll, hybrid_dataset):
        from repro.index import VamanaIndex

        vamana = VamanaIndex(max_degree=10, beam_width=32, seed=0).build(
            hybrid_dataset.train
        )
        hits = visit_first_scan(
            vamana, hybrid_coll, hybrid_dataset.queries[0], 5,
            Field("category") == 2,
        )
        cats = hybrid_coll.columns["category"]
        assert all(cats[h.id] == 2 for h in hits)


class TestPartitioned:
    def test_offline_blocking_exact_per_partition(self, hybrid_coll, flat_index,
                                                  hybrid_dataset):
        part = AttributePartitionedIndex(
            lambda: FlatIndex(EuclideanScore()), "category"
        ).build(hybrid_coll)
        predicate = Field("category") == 2
        q = hybrid_dataset.queries[0]
        expected = exact_filtered(hybrid_coll, flat_index, q, 5, predicate)
        got = [h.id for h in part.search(q, 5, predicate)]
        assert got == expected

    def test_partition_sizes_cover_collection(self, hybrid_coll):
        part = AttributePartitionedIndex(
            lambda: FlatIndex(EuclideanScore()), "category"
        ).build(hybrid_coll)
        assert sum(part.partition_sizes().values()) == len(hybrid_coll)

    def test_covers_only_equality_and_in(self, hybrid_coll):
        part = AttributePartitionedIndex(
            lambda: FlatIndex(EuclideanScore()), "category"
        ).build(hybrid_coll)
        assert part.covers(Field("category") == 1)
        assert part.covers(Field("category").isin([1, 2]))
        assert not part.covers(Field("category") > 1)
        assert not part.covers(Field("price") == 1)
        assert not part.covers(None)

    def test_in_predicate_searches_multiple_partitions(self, hybrid_coll,
                                                       flat_index,
                                                       hybrid_dataset):
        part = AttributePartitionedIndex(
            lambda: FlatIndex(EuclideanScore()), "category"
        ).build(hybrid_coll)
        predicate = Field("category").isin([0, 4])
        q = hybrid_dataset.queries[3]
        expected = exact_filtered(hybrid_coll, flat_index, q, 5, predicate)
        got = [h.id for h in part.search(q, 5, predicate)]
        assert got == expected

    def test_uncovered_predicate_rejected(self, hybrid_coll, hybrid_dataset):
        from repro.core.errors import PlanningError

        part = AttributePartitionedIndex(
            lambda: FlatIndex(EuclideanScore()), "category"
        ).build(hybrid_coll)
        with pytest.raises(PlanningError):
            part.search(hybrid_dataset.queries[0], 5, Field("price") < 10)

    def test_missing_attribute_rejected(self, hybrid_coll):
        from repro.core.errors import PlanningError

        part = AttributePartitionedIndex(
            lambda: FlatIndex(EuclideanScore()), "brand"
        )
        with pytest.raises(PlanningError):
            part.build(hybrid_coll)
