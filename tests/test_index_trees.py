"""Behavioral tests specific to tree-based indexes (§2.2)."""

import numpy as np
import pytest

from repro.core.types import SearchStats
from repro.index import (
    AnnoyIndex,
    KdTreeIndex,
    PcaTreeIndex,
    RandomizedKdForestIndex,
    RpTreeIndex,
)
from repro.index._tree import best_first_search, build_tree, tree_stats


class TestTreeMachinery:
    def test_build_respects_leaf_size(self, small_data):
        from repro.index.kdtree import _kd_split

        rng = np.random.default_rng(0)
        root = build_tree(
            np.arange(300, dtype=np.int64),
            small_data.astype(np.float64),
            _kd_split,
            leaf_size=10,
            rng=rng,
        )
        stats = tree_stats(root)
        assert stats["mean_leaf_size"] <= 10

    def test_leaves_partition_points(self, small_data):
        from repro.index.kdtree import _kd_split

        root = build_tree(
            np.arange(300, dtype=np.int64),
            small_data.astype(np.float64),
            _kd_split,
            leaf_size=10,
            rng=np.random.default_rng(0),
        )
        seen = []

        def walk(node):
            if node.is_leaf:
                seen.extend(node.positions.tolist())
            else:
                walk(node.left)
                walk(node.right)

        walk(root)
        assert sorted(seen) == list(range(300))

    def test_identical_points_become_leaf(self):
        from repro.index.kdtree import _kd_split

        data = np.ones((50, 4))
        root = build_tree(
            np.arange(50, dtype=np.int64), data, _kd_split, 8,
            np.random.default_rng(0),
        )
        assert root.is_leaf

    def test_best_first_budget_respected(self, small_data):
        from repro.index.kdtree import _kd_split

        root = build_tree(
            np.arange(300, dtype=np.int64),
            small_data.astype(np.float64),
            _kd_split,
            leaf_size=8,
            rng=np.random.default_rng(0),
        )
        _, leaves = best_first_search(
            [root], small_data[0].astype(np.float64), max_leaves=3
        )
        assert leaves <= 3


class TestKdTree:
    def test_exact_mode_matches_flat(self, small_data, small_queries, flat_oracle):
        index = KdTreeIndex(leaf_size=8).build(small_data)
        for q in small_queries[:5]:
            exact = [h.id for h in flat_oracle.search(q, 10)]
            got = [h.id for h in index.search(q, 10)]
            assert got == exact

    def test_exact_mode_with_mask_matches_flat(self, small_data, small_queries,
                                               flat_oracle):
        allowed = np.zeros(300, dtype=bool)
        allowed[::2] = True
        index = KdTreeIndex(leaf_size=8).build(small_data)
        q = small_queries[0]
        exact = [h.id for h in flat_oracle.search(q, 8, allowed=allowed)]
        got = [h.id for h in index.search(q, 8, allowed=allowed)]
        assert got == exact

    def test_approximate_mode_cheaper(self, small_data, small_queries):
        index = KdTreeIndex(leaf_size=8).build(small_data)
        exact_stats, approx_stats = SearchStats(), SearchStats()
        index.search(small_queries[0], 10, stats=exact_stats)
        index.search(small_queries[0], 10, max_leaves=2, stats=approx_stats)
        assert approx_stats.distance_computations < exact_stats.distance_computations

    def test_logarithmic_depth(self, rng):
        data = rng.standard_normal((2048, 8)).astype(np.float32)
        index = KdTreeIndex(leaf_size=8).build(data)
        stats = index.stats()
        # Median splits give depth ~= log2(2048/8) = 8; allow slack.
        assert stats["max_depth"] <= 14

    def test_leaf_budget_recall_monotonic(self, small_data, small_queries,
                                          ground_truth_10):
        index = KdTreeIndex(leaf_size=8).build(small_data)

        def recall(budget):
            got = []
            for qi, q in enumerate(small_queries):
                hits = index.search(q, 10, max_leaves=budget)
                truth = set(int(t) for t in ground_truth_10[qi])
                got.append(len(truth.intersection(h.id for h in hits)) / 10)
            return float(np.mean(got))

        assert recall(32) >= recall(1)


class TestForests:
    @pytest.mark.parametrize(
        "cls,budget_kw",
        [
            (RpTreeIndex, "max_leaves"),
            (RandomizedKdForestIndex, "max_leaves"),
            (AnnoyIndex, "search_k"),
        ],
    )
    def test_more_trees_help_recall(self, cls, budget_kw, small_data,
                                    small_queries, ground_truth_10):
        def recall(num_trees):
            index = cls(num_trees=num_trees, seed=0)
            index.build(small_data)
            got = []
            for qi, q in enumerate(small_queries):
                hits = index.search(q, 10, **{budget_kw: 24})
                truth = set(int(t) for t in ground_truth_10[qi])
                got.append(len(truth.intersection(h.id for h in hits)) / 10)
            return float(np.mean(got))

        assert recall(8) >= recall(1) - 0.05

    def test_trees_are_distinct(self, small_data):
        index = RpTreeIndex(num_trees=3, seed=0).build(small_data)
        roots = index._roots
        # Different random seeds per tree -> different first splits.
        ws = [r.w for r in roots if r.w is not None]
        assert len(ws) == 3
        assert not np.allclose(ws[0], ws[1])

    def test_forest_stats_per_tree(self, small_data):
        index = AnnoyIndex(num_trees=4, seed=0).build(small_data)
        assert len(index.stats()) == 4


class TestPcaTree:
    def test_axes_are_orthonormal(self, small_data):
        index = PcaTreeIndex(num_axes=4, seed=0).build(small_data)
        gram = index.axes @ index.axes.T
        np.testing.assert_allclose(gram, np.eye(gram.shape[0]), atol=1e-6)

    def test_rotate_vs_local_choice(self, small_data, small_queries):
        for rotate in (True, False):
            index = PcaTreeIndex(rotate=rotate, seed=0).build(small_data)
            hits = index.search(small_queries[0], 5)
            assert len(hits) == 5

    def test_first_split_is_top_component(self, rng):
        # Data stretched along one axis: the root split must use it.
        data = np.zeros((200, 4), dtype=np.float32)
        data[:, 2] = rng.standard_normal(200) * 10
        data[:, 0] = rng.standard_normal(200) * 0.1
        index = PcaTreeIndex(num_axes=2, rotate=True, seed=0).build(data)
        w = index._root.w
        assert abs(w[2]) > 0.9
