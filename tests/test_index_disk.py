"""Tests for disk-resident indexes: DiskANN and SPANN (§2.2)."""

import numpy as np
import pytest

from repro.core.types import SearchStats
from repro.index import DiskAnnIndex, SpannIndex
from repro.storage import SimulatedDisk


@pytest.fixture(scope="module")
def diskann(small_data):
    return DiskAnnIndex(
        max_degree=10, build_beam_width=32, pq_m=4, pq_ks=32, beam_width=12, seed=0
    ).build(small_data)


class TestDiskAnn:
    def test_page_reads_counted(self, diskann, small_queries):
        stats = SearchStats()
        diskann.search(small_queries[0], 5, stats=stats)
        assert stats.page_reads > 0
        # One page per expanded node.
        assert stats.page_reads == stats.nodes_visited

    def test_beam_width_bounds_io(self, diskann, small_queries):
        narrow, wide = SearchStats(), SearchStats()
        diskann.search(small_queries[0], 5, beam_width=5, stats=narrow)
        diskann.search(small_queries[0], 5, beam_width=40, stats=wide)
        assert narrow.page_reads <= wide.page_reads
        assert narrow.page_reads <= 4 * 5 + 1

    def test_io_much_less_than_full_scan(self, diskann, small_queries, small_data):
        stats = SearchStats()
        diskann.search(small_queries[0], 5, stats=stats)
        assert stats.page_reads < len(small_data) / 4

    def test_memory_excludes_full_vectors(self, diskann, small_data):
        # RAM footprint (PQ codes etc.) must be well below raw vectors.
        assert diskann.memory_bytes() < small_data.nbytes

    def test_results_use_exact_rerank(self, diskann, small_data, flat_oracle):
        # Top-1 of a member query should match exact search most of the time;
        # check distance values are true distances, not PQ estimates.
        hits = diskann.search(small_data[3], 1)
        exact = flat_oracle.search(small_data[3], 1)
        assert hits[0].distance == pytest.approx(exact[0].distance, abs=1e-5)

    def test_shared_disk_accumulates(self, small_data, small_queries):
        disk = SimulatedDisk(page_size=8192)
        index = DiskAnnIndex(
            max_degree=8, build_beam_width=24, pq_m=4, pq_ks=16, disk=disk, seed=0
        ).build(small_data)
        disk.stats.reset()
        index.search(small_queries[0], 5)
        assert disk.stats.reads > 0


class TestSpann:
    def test_closure_replicates_boundary_vectors(self, small_data):
        plain = SpannIndex(num_postings=12, closure_epsilon=0.0, seed=0).build(
            small_data
        )
        closure = SpannIndex(
            num_postings=12, closure_epsilon=0.5, max_replicas=3, seed=0
        ).build(small_data)
        assert plain.replication_factor == pytest.approx(1.0)
        assert closure.replication_factor > 1.0

    def test_replication_capped(self, small_data):
        index = SpannIndex(
            num_postings=12, closure_epsilon=10.0, max_replicas=2, seed=0
        ).build(small_data)
        assert index.replication_factor <= 2.0

    def test_no_duplicate_results_despite_replication(self, small_data,
                                                      small_queries):
        index = SpannIndex(
            num_postings=12, closure_epsilon=0.6, max_replicas=3, seed=0
        ).build(small_data)
        hits = index.search(small_queries[0], 10, nprobe=6)
        ids = [h.id for h in hits]
        assert len(ids) == len(set(ids))

    def test_page_reads_scale_with_nprobe(self, small_data, small_queries):
        index = SpannIndex(num_postings=12, seed=0).build(small_data)
        one, many = SearchStats(), SearchStats()
        index.search(small_queries[0], 5, nprobe=1, stats=one)
        index.search(small_queries[0], 5, nprobe=8, stats=many)
        assert one.page_reads < many.page_reads

    def test_closure_improves_recall_at_fixed_nprobe(self, small_data,
                                                     small_queries,
                                                     ground_truth_10):
        def recall(eps):
            index = SpannIndex(
                num_postings=16, closure_epsilon=eps, max_replicas=3, seed=0
            ).build(small_data)
            got = []
            for qi, q in enumerate(small_queries):
                hits = index.search(q, 10, nprobe=2)
                truth = set(int(t) for t in ground_truth_10[qi])
                got.append(len(truth.intersection(h.id for h in hits)) / 10)
            return float(np.mean(got))

        assert recall(0.5) >= recall(0.0) - 1e-9

    def test_query_pruning_reduces_io(self, small_data, small_queries):
        pruned = SpannIndex(
            num_postings=16, prune_epsilon=0.1, seed=0
        ).build(small_data)
        unpruned = SpannIndex(num_postings=16, prune_epsilon=None, seed=0).build(
            small_data
        )
        p_stats, u_stats = SearchStats(), SearchStats()
        for q in small_queries:
            pruned.search(q, 5, nprobe=8, stats=p_stats)
            unpruned.search(q, 5, nprobe=8, stats=u_stats)
        assert p_stats.page_reads <= u_stats.page_reads

    def test_memory_is_centroids_not_vectors(self, small_data):
        index = SpannIndex(num_postings=12, seed=0).build(small_data)
        assert index.memory_bytes() < small_data.nbytes
