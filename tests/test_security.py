"""Tests for DCPE-based secure k-NN (§2.6(4))."""

import numpy as np
import pytest

from repro.scores import EuclideanScore
from repro.security import DcpeKey, SecureKnnClient, SecureSearchServer
from repro.security.dcpe import secure_knn_roundtrip


@pytest.fixture(scope="module")
def key():
    return DcpeKey.generate(12, scale=3.0, noise_radius=0.0, seed=1)


class TestKey:
    def test_rotation_orthogonal(self, key):
        r = key.rotation
        np.testing.assert_allclose(r @ r.T, np.eye(12), atol=1e-10)

    def test_validation(self):
        with pytest.raises(ValueError):
            DcpeKey.generate(4, scale=0.0)
        with pytest.raises(ValueError):
            DcpeKey.generate(4, noise_radius=-1.0)


class TestNoiselessScheme:
    def test_exact_distance_scaling(self, key, small_data):
        client = SecureKnnClient(key, seed=0)
        enc = client.encrypt(small_data[:50])
        score = EuclideanScore()
        plain = score.distances(small_data[0], small_data[:50])
        cipher = score.distances(enc[0], enc)
        np.testing.assert_allclose(cipher, key.scale * plain, rtol=1e-4,
                                   atol=1e-3)

    def test_topk_preserved_exactly(self, key, small_data, small_queries,
                                    flat_oracle):
        client = SecureKnnClient(key, seed=0)
        server = SecureSearchServer("flat").load(client.encrypt(small_data))
        for q in small_queries[:5]:
            expected = [h.id for h in flat_oracle.search(q, 10)]
            got = [h.id for h in server.search(client.encrypt(q)[0], 10)]
            assert got == expected

    def test_roundtrip_distances_in_plaintext_units(self, key, small_data,
                                                    small_queries, flat_oracle):
        client = SecureKnnClient(key, seed=0)
        hits = secure_knn_roundtrip(
            client, SecureSearchServer("flat"), small_data, small_queries[0], 5
        )
        expected = flat_oracle.search(small_queries[0], 5)
        for got, want in zip(hits, expected):
            assert got.distance == pytest.approx(want.distance, rel=1e-3,
                                                 abs=1e-3)

    def test_graph_index_on_ciphertexts(self, key, small_data, small_queries,
                                        flat_oracle):
        """DCPE preserves geometry, so even a graph index works server-side."""
        client = SecureKnnClient(key, seed=0)
        server = SecureSearchServer("hnsw", m=8, ef_construction=48, seed=0)
        server.load(client.encrypt(small_data))
        expected = set(h.id for h in flat_oracle.search(small_queries[0], 10))
        got = set(h.id for h in server.search(client.encrypt(small_queries[0])[0], 10))
        assert len(got & expected) >= 8

    def test_ciphertext_hides_plaintext(self, key, small_data):
        client = SecureKnnClient(key, seed=0)
        enc = client.encrypt(small_data[:10])
        # No coordinate should match, and norms should be scaled+shifted.
        assert not np.allclose(enc, small_data[:10], atol=0.1)
        correlation = np.corrcoef(
            enc.ravel().astype(np.float64), small_data[:10].ravel().astype(np.float64)
        )[0, 1]
        assert abs(correlation) < 0.5


class TestNoisyScheme:
    def test_noise_bounded(self, small_data):
        key = DcpeKey.generate(12, scale=2.0, noise_radius=0.1, seed=3)
        client_a = SecureKnnClient(key, seed=1)
        client_b = SecureKnnClient(key, seed=2)
        enc_a = client_a.encrypt(small_data[:20]).astype(np.float64)
        enc_b = client_b.encrypt(small_data[:20]).astype(np.float64)
        # Same key, different noise draws: ciphertexts differ by <= 2*eps.
        gap = np.linalg.norm(enc_a - enc_b, axis=1)
        assert (gap > 0).any()
        assert (gap <= 2 * 0.1 + 1e-6).all()

    def test_comparison_slack_honored(self, small_data, small_queries,
                                      flat_oracle):
        key = DcpeKey.generate(12, scale=2.0, noise_radius=0.05, seed=3)
        client = SecureKnnClient(key, seed=1)
        slack = client.comparison_slack()
        server = SecureSearchServer("flat").load(client.encrypt(small_data))
        q = small_queries[0]
        got = server.search(client.encrypt(q)[0], 10)
        exact = flat_oracle.search(q, 30)
        exact_d = {h.id: h.distance for h in exact}
        kth = exact[9].distance
        # Every reported item is within slack of the true top-10 boundary.
        for hit in got:
            assert exact_d.get(hit.id, np.inf) <= kth + slack + 1e-6

    def test_more_noise_less_recall(self, small_data, small_queries,
                                    flat_oracle):
        def recall(noise):
            key = DcpeKey.generate(12, scale=2.0, noise_radius=noise, seed=3)
            client = SecureKnnClient(key, seed=1)
            server = SecureSearchServer("flat").load(client.encrypt(small_data))
            total = 0
            for q in small_queries:
                expected = set(h.id for h in flat_oracle.search(q, 10))
                got = set(h.id for h in server.search(client.encrypt(q)[0], 10))
                total += len(got & expected)
            return total / (10 * len(small_queries))

        assert recall(0.0) == pytest.approx(1.0)
        assert recall(0.0) >= recall(1.0)

    def test_server_requires_load(self):
        with pytest.raises(RuntimeError):
            SecureSearchServer("flat").search(np.zeros(4, np.float32), 1)
