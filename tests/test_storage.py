"""Tests for the storage substrate: disk, pager, buffer pool."""

import numpy as np
import pytest

from repro.core.errors import StorageError
from repro.storage import BufferPool, PagedVectorStore, SimulatedDisk


class TestSimulatedDisk:
    def test_allocate_write_read(self):
        disk = SimulatedDisk(page_size=64)
        page = disk.allocate()
        disk.write_page(page, b"hello")
        assert disk.read_page(page) == b"hello"

    def test_io_accounting(self):
        disk = SimulatedDisk(page_size=64)
        page = disk.allocate()
        disk.write_page(page, b"abc")
        disk.read_page(page)
        disk.read_page(page)
        assert disk.stats.writes == 1
        assert disk.stats.reads == 2
        assert disk.stats.bytes_read == 6

    def test_page_overflow_rejected(self):
        disk = SimulatedDisk(page_size=4)
        page = disk.allocate()
        with pytest.raises(StorageError, match="overflow"):
            disk.write_page(page, b"too long")

    def test_unallocated_access_rejected(self):
        disk = SimulatedDisk()
        with pytest.raises(StorageError):
            disk.read_page(99)
        with pytest.raises(StorageError):
            disk.write_page(99, b"")

    def test_free(self):
        disk = SimulatedDisk()
        page = disk.allocate()
        disk.free(page)
        with pytest.raises(StorageError):
            disk.read_page(page)
        with pytest.raises(StorageError):
            disk.free(page)

    def test_stats_reset(self):
        disk = SimulatedDisk()
        page = disk.allocate()
        disk.write_page(page, b"x")
        disk.stats.reset()
        assert disk.stats.writes == 0


class TestBufferPool:
    def test_hit_and_miss_counting(self):
        pool = BufferPool(capacity=2)
        assert pool.get(1) is None
        pool.put(1, b"a")
        assert pool.get(1) == b"a"
        assert pool.hits == 1 and pool.misses == 1

    def test_lru_eviction(self):
        pool = BufferPool(capacity=2)
        pool.put(1, b"a")
        pool.put(2, b"b")
        pool.get(1)  # make 2 the LRU
        pool.put(3, b"c")
        assert pool.get(2) is None  # evicted
        assert pool.get(1) == b"a"

    def test_capacity_zero_disables(self):
        pool = BufferPool(capacity=0)
        pool.put(1, b"a")
        assert pool.get(1) is None


class TestPagedVectorStore:
    def test_roundtrip(self, rng):
        store = PagedVectorStore(dim=8, disk=SimulatedDisk(page_size=256))
        data = rng.standard_normal((20, 8)).astype(np.float32)
        slots = store.append(data)
        assert slots == list(range(20))
        for slot in (0, 7, 19):
            np.testing.assert_array_equal(store.get(slot), data[slot])

    def test_vectors_per_page_layout(self):
        # 8 float32 dims = 32 bytes; 128-byte pages hold 4 vectors.
        store = PagedVectorStore(dim=8, disk=SimulatedDisk(page_size=128))
        assert store.vectors_per_page == 4
        store.append(np.zeros((9, 8), dtype=np.float32))
        assert store.num_pages == 3

    def test_get_costs_one_page_read(self, rng):
        disk = SimulatedDisk(page_size=256)
        store = PagedVectorStore(dim=8, disk=disk)
        store.append(rng.standard_normal((20, 8)).astype(np.float32))
        disk.stats.reset()
        store.get(0)
        assert disk.stats.reads == 1

    def test_get_many_coalesces_same_page(self, rng):
        disk = SimulatedDisk(page_size=256)  # 8 vectors per page
        store = PagedVectorStore(dim=8, disk=disk)
        data = rng.standard_normal((16, 8)).astype(np.float32)
        store.append(data)
        disk.stats.reset()
        out = store.get_many([0, 1, 2, 3])  # same page
        assert disk.stats.reads == 1
        np.testing.assert_array_equal(out, data[:4])

    def test_buffer_pool_absorbs_repeat_reads(self, rng):
        disk = SimulatedDisk(page_size=256)
        store = PagedVectorStore(dim=8, disk=disk, buffer_pool_pages=4)
        store.append(rng.standard_normal((8, 8)).astype(np.float32))
        disk.stats.reset()
        store.get(0)
        store.get(1)  # same page, cached
        assert disk.stats.reads == 1
        assert store.pool.hits == 1

    def test_scan_reads_each_page_once(self, rng):
        disk = SimulatedDisk(page_size=256)
        store = PagedVectorStore(dim=8, disk=disk)
        data = rng.standard_normal((20, 8)).astype(np.float32)
        store.append(data)
        disk.stats.reset()
        out = store.scan()
        np.testing.assert_array_equal(out, data)
        assert disk.stats.reads == store.num_pages

    def test_out_of_range_slot(self):
        store = PagedVectorStore(dim=4)
        with pytest.raises(StorageError):
            store.get(0)

    def test_vector_too_large_for_page(self):
        with pytest.raises(StorageError, match="does not fit"):
            PagedVectorStore(dim=2048, disk=SimulatedDisk(page_size=4096))

    def test_empty_scan(self):
        store = PagedVectorStore(dim=4)
        assert store.scan().shape == (0, 4)
