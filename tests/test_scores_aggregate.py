"""Tests for aggregate (multi-vector) scores."""

import numpy as np
import pytest

from repro.scores import AggregateScore, EuclideanScore, WeightedSumAggregator
from repro.scores.aggregate import (
    AGGREGATORS,
    max_aggregator,
    mean_aggregator,
    min_aggregator,
    sum_of_min_aggregator,
)


@pytest.fixture
def block():
    # 2 query vectors x 3 entity vectors of distances.
    return np.array([[1.0, 2.0, 3.0], [4.0, 0.5, 6.0]])


class TestAggregators:
    def test_mean(self, block):
        assert mean_aggregator(block) == pytest.approx(block.mean())

    def test_min(self, block):
        assert min_aggregator(block) == pytest.approx(0.5)

    def test_max(self, block):
        assert max_aggregator(block) == pytest.approx(6.0)

    def test_sum_of_min(self, block):
        # row mins are 1.0 and 0.5
        assert sum_of_min_aggregator(block) == pytest.approx(1.5)

    def test_weighted_sum(self, block):
        agg = WeightedSumAggregator([2.0, 1.0])
        assert agg(block) == pytest.approx(2.0 * 1.0 + 1.0 * 0.5)

    def test_weighted_sum_length_check(self, block):
        with pytest.raises(ValueError):
            WeightedSumAggregator([1.0])(block)

    def test_registry_complete(self):
        assert set(AGGREGATORS) == {"mean", "min", "max", "sum_of_min"}


class TestAggregateScore:
    def test_single_vector_reduces_to_base(self, rng):
        base = EuclideanScore()
        agg = AggregateScore(base, "mean")
        q = rng.standard_normal(4)
        e = rng.standard_normal(4)
        assert agg.entity_distance(q, e) == pytest.approx(
            float(base.distances(q, e[None, :])[0]), rel=1e-5
        )

    def test_distances_over_entities(self, rng):
        agg = AggregateScore(EuclideanScore(), "min")
        q = rng.standard_normal((2, 4))
        entities = [rng.standard_normal((3, 4)) for _ in range(5)]
        d = agg.distances(q, entities)
        assert d.shape == (5,)
        # Entity equal to a query vector must have distance 0 under min.
        entities.append(np.vstack([q[0], rng.standard_normal(4)]))
        d2 = agg.distances(q, entities)
        assert d2[-1] == pytest.approx(0.0, abs=1e-5)

    def test_unknown_aggregator_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregator"):
            AggregateScore(EuclideanScore(), "median")

    def test_callable_aggregator(self, rng):
        agg = AggregateScore(EuclideanScore(), lambda b: float(b.sum()))
        q = rng.standard_normal((2, 3))
        e = rng.standard_normal((2, 3))
        expected = EuclideanScore().pairwise(q, e).sum()
        assert agg.entity_distance(q, e) == pytest.approx(expected, rel=1e-5)

    def test_ranking_respects_aggregate(self, rng):
        """min-aggregation ranks an entity sharing one facet above an
        entity that is moderately far on all facets."""
        agg = AggregateScore(EuclideanScore(), "min")
        q = np.zeros((1, 4))
        near_one_facet = np.vstack([np.zeros(4), 10 * np.ones(4)])
        all_medium = np.ones((2, 4))
        d = agg.distances(q, [near_one_facet, all_medium])
        assert d[0] < d[1]
