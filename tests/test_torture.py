"""Tests for the torture rig (repro.torture) and the crash-safe storage.

The heart of the file is the acceptance criterion of the rig itself:
killing ``save_database`` and the LSM flush at *every* journaled write
prefix (and at torn half-writes) must always reopen to a committed
state.  Around it: TortureFS journal/replay unit tests, corrupt-file
error hygiene, the metamorphic relations and differential search over
every registered index type, and the CLI contract.
"""

import io
import json
import zlib

import numpy as np
import pytest

from repro.core.database import VectorDatabase
from repro.core.errors import StorageError
from repro.index.registry import available_indexes
from repro.storage.atomic import atomic_write_bytes, checksum, npz_bytes
from repro.storage.lsm import LsmVectorStore
from repro.storage.persist import (
    MANIFEST_NAME,
    load_collection,
    load_database,
    save_database,
)
from repro.torture import (
    RELATIONS,
    TortureFS,
    TortureReport,
    run_crash,
    run_differential,
    run_metamorphic,
)
from repro.torture.driver import main


def small_database(seed=3, n=40, dim=6):
    rng = np.random.default_rng(seed)
    db = VectorDatabase(dim=dim)
    db.insert_many(
        rng.standard_normal((n, dim)).astype(np.float32),
        [{"tag": int(i % 3)} for i in range(n)],
    )
    db.create_index("exact", "flat")
    return db


# ---------------------------------------------------------------- TortureFS


class TestTortureFS:
    def test_journal_captures_writes_and_replays_prefixes(self, tmp_path):
        root = tmp_path / "root"
        root.mkdir()
        (root / "base.txt").write_bytes(b"base")
        fs = TortureFS(root)
        fs.write_file(root / "a.tmp", b"payload")
        fs.replace(root / "a.tmp", root / "a.txt")
        fs.remove(root / "base.txt")
        assert fs.num_ops == 3
        assert fs.describe_ops()[0].startswith("write a.tmp")

        # Prefix 0 is the untouched base image.
        dest = fs.replay_prefix(0, tmp_path / "replay")
        assert (dest / "base.txt").read_bytes() == b"base"
        assert not (dest / "a.tmp").exists()
        # Prefix 2: write + publish happened, remove did not.
        dest = fs.replay_prefix(2, tmp_path / "replay")
        assert (dest / "a.txt").read_bytes() == b"payload"
        assert (dest / "base.txt").exists()
        # Full replay matches the live directory.
        dest = fs.replay_prefix(3, tmp_path / "replay")
        assert not (dest / "base.txt").exists()

    def test_torn_replay_half_writes_the_next_op(self, tmp_path):
        root = tmp_path / "root"
        root.mkdir()
        fs = TortureFS(root)
        fs.write_file(root / "f.tmp", b"0123456789")
        dest = fs.replay_prefix(0, tmp_path / "replay", torn=True)
        assert (dest / "f.tmp").read_bytes() == b"01234"

    def test_operations_outside_root_are_rejected(self, tmp_path):
        fs = TortureFS(tmp_path / "root")
        with pytest.raises(StorageError, match="outside journaled root"):
            fs.write_file(tmp_path / "elsewhere.txt", b"x")

    def test_prefix_out_of_range_is_an_error(self, tmp_path):
        fs = TortureFS(tmp_path / "root")
        with pytest.raises(ValueError):
            fs.replay_prefix(1, tmp_path / "replay")


# ------------------------------------------------- crash-recovery acceptance


class TestCrashRecovery:
    def test_save_database_every_prefix_is_old_or_new(self, tmp_path):
        report = TortureReport()
        from repro.torture.crash import crash_recovery_database

        crash_recovery_database(11, tmp_path, report)
        assert report.checks["crash"] > 10  # the loop really enumerated
        assert report.findings == []

    def test_lsm_flush_every_prefix_is_a_committed_state(self, tmp_path):
        report = TortureReport()
        from repro.torture.crash import crash_recovery_lsm

        crash_recovery_lsm(11, tmp_path, report)
        assert report.checks["crash"] > 10
        assert report.findings == []

    def test_run_crash_merges_both_loops(self, tmp_path):
        report = run_crash(5, tmp_path, depth="smoke")
        assert report.ok
        assert report.checks["crash"] > 20

    def test_snapshot_overwrite_keeps_old_generation_until_commit(
        self, tmp_path
    ):
        db = small_database()
        save_database(db, tmp_path)
        db.insert(np.zeros(6, dtype=np.float32), {"tag": 9})
        fs = TortureFS(tmp_path)
        save_database(db, tmp_path, fs=fs)
        # Every journaled write lands under a fresh generation or a
        # temp name: committed files are never opened for overwrite.
        manifest_rel = MANIFEST_NAME
        for op in fs.ops:
            if op.kind == "write":
                assert op.path.endswith(".tmp")
            if op.kind == "replace" and op.dest == manifest_rel:
                break


# -------------------------------------------------------- corrupt snapshots


class TestCorruptSnapshots:
    def corrupt(self, directory, pattern, data):
        (victim,) = directory.glob(pattern)
        victim.write_bytes(data)
        return victim.name

    def test_truncated_npz_names_the_file(self, tmp_path):
        db = small_database()
        save_database(db, tmp_path)
        (victim,) = tmp_path.glob("collection-*.npz")
        payload = victim.read_bytes()
        victim.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(StorageError, match=victim.name):
            load_database(tmp_path)

    def test_garbage_json_names_the_file_not_jsondecodeerror(self, tmp_path):
        db = small_database()
        save_database(db, tmp_path)
        # Keep checksums consistent so the parse failure is what fires.
        (victim,) = tmp_path.glob("attributes-*.json")
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        garbage = b"{not json"
        manifest["files"][victim.name] = checksum(garbage)
        victim.write_bytes(garbage)
        atomic_write_bytes(
            tmp_path / MANIFEST_NAME,
            json.dumps(manifest).encode("utf-8"),
        )
        with pytest.raises(StorageError, match=victim.name):
            load_database(tmp_path)

    def test_checksum_mismatch_names_the_file(self, tmp_path):
        db = small_database()
        save_database(db, tmp_path)
        (victim,) = tmp_path.glob("attributes-*.json")
        victim.write_bytes(b'{"attributes": []}')
        with pytest.raises(StorageError, match=f"checksum.*{victim.name}"):
            load_database(tmp_path)

    def test_missing_data_file_names_the_file(self, tmp_path):
        db = small_database()
        save_database(db, tmp_path)
        (victim,) = tmp_path.glob("collection-*.npz")
        victim.unlink()
        with pytest.raises(StorageError, match=victim.name):
            load_database(tmp_path)

    def test_corrupt_manifest_names_the_manifest(self, tmp_path):
        db = small_database()
        save_database(db, tmp_path)
        (tmp_path / MANIFEST_NAME).write_bytes(b"\x00\x01")
        with pytest.raises(StorageError, match=MANIFEST_NAME):
            load_database(tmp_path)

    def test_missing_directory_is_a_storage_error(self, tmp_path):
        with pytest.raises(StorageError):
            load_collection(tmp_path / "nowhere")

    def test_corrupt_lsm_run_names_the_file(self, tmp_path):
        store = LsmVectorStore(4, directory=tmp_path)
        rng = np.random.default_rng(0)
        for key in range(6):
            store.put(key, rng.standard_normal(4).astype(np.float32))
        store.flush()
        (victim,) = tmp_path.glob("run-*.npz")
        victim.write_bytes(b"junk")
        with pytest.raises(StorageError, match=victim.name):
            LsmVectorStore.open(tmp_path)


# -------------------------------------------- metamorphic + differential


class TestMetamorphicRelations:
    def test_at_least_five_relations_are_registered(self):
        assert len(RELATIONS) >= 5
        for rel in RELATIONS.values():
            assert rel.description

    def test_smoke_over_every_registered_index_type(self):
        report = run_metamorphic(available_indexes(), seed=42)
        assert report.findings == [], report.render()
        assert report.checks["metamorphic"] > len(available_indexes())

    def test_violation_becomes_rule_tagged_finding_with_repro(self):
        # An intentionally broken "index" cannot sneak past the
        # delete-liveness oracle: monkeypatch-free, we just run the
        # relation against a seed and verify the finding schema via a
        # synthetic report.
        report = TortureReport()
        RELATIONS["delete-liveness"].run("flat", 7, report)
        assert report.ok
        # Schema check on a hand-built finding, as emit would produce.
        from repro.torture.reporting import TortureFinding

        f = TortureFinding(
            rule="MR-DELETE-LIVENESS",
            pillar="metamorphic",
            subject="delete-liveness:flat",
            seed=7,
            message="deleted ids [1] returned",
            repro="torture --pillar metamorphic --relation "
            "delete-liveness --index flat --seed 7",
        )
        assert "--seed 7" in f.render()
        assert f.to_dict()["rule"] == "MR-DELETE-LIVENESS"


class TestDifferentialSearch:
    def test_smoke_over_every_registered_index_type(self):
        report = run_differential(available_indexes(), seed=42)
        assert report.findings == [], report.render()
        assert report.checks["differential"] >= len(available_indexes())

    def test_exact_indexes_match_the_oracle_verbatim(self):
        # flat vs kdtree agree exactly on any seeded instance, so a
        # green differential run over just the exact pair proves the
        # DIFF-EXACT oracle is reachable and satisfied.
        report = run_differential(["flat", "kdtree"], seed=9)
        assert report.ok


# ----------------------------------------------------------------- the CLI


class TestTortureCli:
    def test_green_cell_exits_zero(self, capsys):
        code = main([
            "--pillar", "metamorphic", "--relation", "delete-liveness",
            "--index", "flat", "--seed", "7",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 finding(s)" in out

    def test_unknown_index_is_a_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["--index", "definitely-not-an-index"])
        assert exc.value.code == 2

    def test_unknown_relation_is_a_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["--relation", "definitely-not-a-relation"])
        assert exc.value.code == 2

    def test_list_relations(self, capsys):
        assert main(["--list-relations"]) == 0
        out = capsys.readouterr().out
        for name in RELATIONS:
            assert name in out

    def test_json_artifact_is_written(self, tmp_path, capsys):
        artifact = tmp_path / "findings.json"
        code = main([
            "--pillar", "differential", "--index", "flat",
            "--seed", "7", "--json", str(artifact),
        ])
        assert code == 0
        payload = json.loads(artifact.read_text())
        assert payload["ok"] is True
        assert payload["checks"]["differential"] > 0


# ------------------------------------------------------- atomic primitives


class TestAtomicPrimitives:
    def test_atomic_write_replaces_not_appends(self, tmp_path):
        target = tmp_path / "f.bin"
        atomic_write_bytes(target, b"longer original payload")
        atomic_write_bytes(target, b"short")
        assert target.read_bytes() == b"short"
        assert not list(tmp_path.glob("*.tmp"))

    def test_checksum_is_crc32(self):
        assert checksum(b"abc") == f"crc32:{zlib.crc32(b'abc'):08x}"

    def test_npz_bytes_roundtrip(self):
        data = npz_bytes(x=np.arange(4), y=np.zeros((2, 2)))
        with np.load(io.BytesIO(data)) as npz:
            assert npz["x"].tolist() == [0, 1, 2, 3]
