"""Tests for SQ, PQ, OPQ, and IVFADC quantizers."""

import numpy as np
import pytest

from repro.core.errors import IndexNotBuiltError
from repro.quantization import (
    IvfAdc,
    OptimizedProductQuantizer,
    ProductQuantizer,
    ScalarQuantizer,
)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(1)
    return rng.standard_normal((400, 16)) * np.linspace(0.5, 3.0, 16)


class TestScalarQuantizer:
    def test_roundtrip_error_bounded(self, data):
        sq = ScalarQuantizer(bits=8).train(data)
        recon = sq.decode(sq.encode(data))
        err = np.abs(recon - data)
        bound = sq.max_reconstruction_error()
        assert (err <= bound[None, :] + 1e-5).all()

    def test_more_bits_less_error(self, data):
        errs = []
        for bits in (2, 4, 8):
            sq = ScalarQuantizer(bits=bits).train(data)
            recon = sq.decode(sq.encode(data))
            errs.append(float(np.abs(recon - data).mean()))
        assert errs[0] > errs[1] > errs[2]

    def test_compression_ratio(self):
        assert ScalarQuantizer(bits=8).compression_ratio() == pytest.approx(4.0)
        assert ScalarQuantizer(bits=4).compression_ratio() == pytest.approx(8.0)

    def test_out_of_range_clipped(self, data):
        sq = ScalarQuantizer(bits=8).train(data)
        wild = np.full((1, 16), 1e6)
        codes = sq.encode(wild)
        assert codes.max() == sq.levels

    def test_constant_dimension_exact(self):
        data = np.ones((10, 3)) * [1.0, 2.0, 3.0]
        sq = ScalarQuantizer(bits=8).train(data)
        recon = sq.decode(sq.encode(data))
        np.testing.assert_allclose(recon, data, atol=1e-6)

    def test_untrained_raises(self):
        with pytest.raises(IndexNotBuiltError):
            ScalarQuantizer().encode(np.ones((1, 4)))

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            ScalarQuantizer(bits=0)
        with pytest.raises(ValueError):
            ScalarQuantizer(bits=17)

    def test_squared_distances_close_to_exact(self, data):
        sq = ScalarQuantizer(bits=8).train(data)
        codes = sq.encode(data[:50])
        approx = sq.squared_distances(data[0], codes)
        exact = np.sum((data[:50] - data[0]) ** 2, axis=1)
        assert np.corrcoef(approx, exact)[0, 1] > 0.999


class TestProductQuantizer:
    def test_code_shape_and_dtype(self, data):
        pq = ProductQuantizer(m=4, ks=16).train(data)
        codes = pq.encode(data[:10])
        assert codes.shape == (10, 4)
        assert codes.dtype == np.uint8

    def test_dim_divisibility_enforced(self, data):
        with pytest.raises(ValueError, match="divisible"):
            ProductQuantizer(m=5).train(data)  # 16 % 5 != 0

    def test_needs_enough_training_points(self):
        with pytest.raises(ValueError, match="training points"):
            ProductQuantizer(m=2, ks=256).train(np.random.rand(10, 4))

    def test_adc_matches_decoded_distance(self, data):
        pq = ProductQuantizer(m=4, ks=32).train(data)
        codes = pq.encode(data[:20])
        q = data[0]
        adc = pq.adc_distances(q, codes)
        decoded = pq.decode(codes).astype(np.float64)
        exact_to_decoded = np.sum((decoded - q) ** 2, axis=1)
        np.testing.assert_allclose(adc, exact_to_decoded, rtol=1e-4)

    def test_adc_correlates_with_true_distance(self, data):
        pq = ProductQuantizer(m=8, ks=64).train(data)
        codes = pq.encode(data)
        adc = pq.adc_distances(data[0], codes)
        exact = np.sum((data - data[0]) ** 2, axis=1)
        assert np.corrcoef(adc, exact)[0, 1] > 0.95

    def test_sdc_correlates(self, data):
        pq = ProductQuantizer(m=8, ks=64).train(data)
        codes = pq.encode(data)
        sdc = pq.sdc_distances(data[0], codes)
        exact = np.sum((data - data[0]) ** 2, axis=1)
        assert np.corrcoef(sdc, exact)[0, 1] > 0.9

    def test_more_subspaces_lower_error(self, data):
        e2 = ProductQuantizer(m=2, ks=32, seed=0).train(data).quantization_error(data)
        e8 = ProductQuantizer(m=8, ks=32, seed=0).train(data).quantization_error(data)
        assert e8 < e2

    def test_compression_ratio(self, data):
        pq = ProductQuantizer(m=8, ks=256).train(data)
        # 16 float32 dims = 64 bytes -> 8 bytes of codes.
        assert pq.compression_ratio() == pytest.approx(8.0)

    def test_ks_bounds(self):
        with pytest.raises(ValueError):
            ProductQuantizer(ks=1)
        with pytest.raises(ValueError):
            ProductQuantizer(ks=257)


class TestOPQ:
    def test_rotation_orthogonal(self, data):
        opq = OptimizedProductQuantizer(m=4, ks=16, opq_iterations=3).train(data)
        r = opq.rotation
        np.testing.assert_allclose(r @ r.T, np.eye(r.shape[0]), atol=1e-8)

    def test_opq_not_worse_than_pq(self, data):
        # Correlated data is where OPQ helps; build some.
        rng = np.random.default_rng(3)
        base = rng.standard_normal((400, 16))
        mix = rng.standard_normal((16, 16))
        correlated = base @ mix
        pq_err = (
            ProductQuantizer(m=4, ks=16, seed=0)
            .train(correlated)
            .quantization_error(correlated)
        )
        opq_err = (
            OptimizedProductQuantizer(m=4, ks=16, opq_iterations=8, seed=0)
            .train(correlated)
            .quantization_error(correlated)
        )
        assert opq_err <= pq_err * 1.05  # allow tiny slack for k-means noise

    def test_adc_consistent_with_decode(self, data):
        opq = OptimizedProductQuantizer(m=4, ks=16, opq_iterations=2).train(data)
        codes = opq.encode(data[:10])
        q = data[1]
        adc = opq.adc_distances(q, codes)
        # ADC operates in rotated space; distances are preserved by
        # orthogonality, so compare against decoded vectors in the
        # original space.
        decoded = opq.decode(codes).astype(np.float64)
        exact = np.sum((decoded - q) ** 2, axis=1)
        np.testing.assert_allclose(adc, exact, rtol=1e-3, atol=1e-3)


class TestIvfAdc:
    def test_search_finds_exact_match_region(self, data):
        ivf = IvfAdc(nlist=16, m=4, ks=32, seed=0).train(data)
        ivf.add(np.arange(len(data)), data)
        ids, dists, stats = ivf.search(data[5], k=5, nprobe=4)
        assert 5 in ids[:3]
        assert stats.cells_probed <= 4
        assert (np.diff(dists) >= -1e-9).all()

    def test_more_probes_scan_more(self, data):
        ivf = IvfAdc(nlist=16, m=4, ks=32, seed=0).train(data)
        ivf.add(np.arange(len(data)), data)
        _, _, s1 = ivf.search(data[0], k=5, nprobe=1)
        _, _, s8 = ivf.search(data[0], k=5, nprobe=8)
        assert s8.codes_scanned >= s1.codes_scanned
        assert s8.cells_probed >= s1.cells_probed

    def test_len_counts_added(self, data):
        ivf = IvfAdc(nlist=8, m=4, ks=16).train(data)
        ivf.add(np.arange(100), data[:100])
        assert len(ivf) == 100

    def test_untrained_raises(self, data):
        with pytest.raises(IndexNotBuiltError):
            IvfAdc().add(np.arange(2), data[:2])

    def test_memory_smaller_than_raw(self, data):
        ivf = IvfAdc(nlist=8, m=4, ks=32).train(data)
        ivf.add(np.arange(len(data)), data)
        raw = data.astype(np.float32).nbytes
        assert ivf.memory_bytes() < raw

    def test_empty_search(self, data):
        ivf = IvfAdc(nlist=8, m=4, ks=32).train(data)
        ids, dists, _ = ivf.search(data[0], k=5)
        assert ids.size == 0 and dists.size == 0

    def test_id_mapping_preserved(self, data):
        ivf = IvfAdc(nlist=8, m=4, ks=32, seed=0).train(data)
        external = np.arange(1000, 1000 + len(data))
        ivf.add(external, data)
        ids, _, _ = ivf.search(data[7], k=3, nprobe=8)
        assert all(1000 <= i < 1000 + len(data) for i in ids)
        assert 1007 in ids
