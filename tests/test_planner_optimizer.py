"""Tests for plan enumeration, the cost model, and plan selection."""

import pytest

from repro.core.cost import CostModel, CostWeights, WorkEstimate
from repro.core.errors import PlanningError
from repro.core.optimizer import (
    CostBasedSelector,
    FirstPlanSelector,
    RuleBasedSelector,
)
from repro.core.planner import AutomaticPlanner, PredefinedPlanner, QueryPlan
from repro.index import HnswIndex, IvfFlatIndex


@pytest.fixture(scope="module")
def indexes(small_data):
    return {
        "graph": HnswIndex(m=8, ef_construction=48, seed=0).build(small_data),
        "ivf": IvfFlatIndex(nlist=12, seed=0).build(small_data),
    }


class TestQueryPlan:
    def test_invalid_strategy(self):
        with pytest.raises(PlanningError):
            QueryPlan("teleport")

    def test_describe(self):
        plan = QueryPlan("post_filter", "main", oversample=4.0)
        text = plan.describe()
        assert "post_filter" in text and "main" in text and "a=4" in text


class TestAutomaticPlanner:
    def test_plain_plans(self, indexes):
        plans = AutomaticPlanner().enumerate(False, indexes)
        strategies = [p.strategy for p in plans]
        assert strategies.count("index_scan") == 2
        assert "brute_force" in strategies

    def test_hybrid_plans_cover_taxonomy(self, indexes):
        plans = AutomaticPlanner().enumerate(True, indexes)
        strategies = {p.strategy for p in plans}
        assert strategies == {"pre_filter", "block_first", "post_filter",
                              "visit_first"}
        # visit_first only for the graph index.
        vf = [p for p in plans if p.strategy == "visit_first"]
        assert [p.index_name for p in vf] == ["graph"]

    def test_partition_plans_when_covering(self, indexes):
        from repro.hybrid.predicates import Field

        class FakePart:
            def covers(self, predicate):
                return True

        plans = AutomaticPlanner().enumerate(
            True, indexes, {"bycat": FakePart()}, Field("cat") == 1
        )
        assert any(p.strategy == "partition" for p in plans)


class TestPredefinedPlanner:
    def test_single_plan(self, indexes):
        planner = PredefinedPlanner()
        plans = planner.enumerate(False, indexes)
        assert len(plans) == 1
        assert plans[0].strategy == "index_scan"
        assert plans[0].index_name == "graph"  # first registered

    def test_fallback_without_indexes(self):
        planner = PredefinedPlanner()
        assert planner.enumerate(False, {})[0].strategy == "brute_force"
        assert planner.enumerate(True, {})[0].strategy == "pre_filter"

    def test_custom_templates(self, indexes):
        planner = PredefinedPlanner(
            hybrid_plan=QueryPlan("block_first", "ivf")
        )
        plan = planner.enumerate(True, indexes)[0]
        assert plan.strategy == "block_first"
        assert plan.index_name == "ivf"


class TestCostModel:
    def test_prefilter_scales_with_selectivity(self, indexes):
        model = CostModel()
        lo = model.estimate(QueryPlan("pre_filter"), None, 10000, 10, 0.01)
        hi = model.estimate(QueryPlan("pre_filter"), None, 10000, 10, 0.9)
        assert lo < hi

    def test_block_first_inflates_at_low_selectivity(self, indexes):
        model = CostModel()
        plan = QueryPlan("block_first", "graph")
        lo = model.estimate(plan, indexes["graph"], 10000, 10, 0.01)
        hi = model.estimate(plan, indexes["graph"], 10000, 10, 0.9)
        assert lo > hi

    def test_postfilter_oversample_cost(self, indexes):
        model = CostModel()
        cheap = QueryPlan("post_filter", "graph", oversample=1.0)
        pricey = QueryPlan("post_filter", "graph", oversample=100.0)
        assert model.estimate(cheap, indexes["graph"], 10000, 10, 0.5) < \
            model.estimate(pricey, indexes["graph"], 10000, 10, 0.5)

    def test_brute_force_linear_in_n(self):
        model = CostModel()
        plan = QueryPlan("brute_force")
        assert model.estimate(plan, None, 20000, 10, 1.0) == pytest.approx(
            2 * model.estimate(plan, None, 10000, 10, 1.0)
        )

    def test_calibrate_produces_positive_weights(self, small_data):
        from repro.scores import EuclideanScore

        model = CostModel().calibrate(small_data, EuclideanScore())
        assert model.weights.distance > 0
        assert model.weights.predicate < model.weights.distance

    def test_work_estimate_total(self):
        est = WorkEstimate(distance_computations=10, page_reads=2)
        weights = CostWeights(distance=1.0, page_read=50.0)
        assert est.total(weights) == pytest.approx(10 + 100)

    def test_unknown_strategy_raises(self):
        model = CostModel()
        plan = QueryPlan("brute_force")
        plan.strategy = "warp"  # bypass validation
        with pytest.raises(ValueError):
            model.estimate(plan, None, 100, 10, 0.5)

    def test_measured_cost(self):
        from repro.core.types import SearchStats

        model = CostModel(CostWeights(distance=2.0))
        stats = SearchStats(distance_computations=5)
        assert model.measured_cost(stats) == pytest.approx(10.0)


class TestSelectors:
    def _hybrid_plans(self, indexes):
        return AutomaticPlanner().enumerate(True, indexes)

    def test_first_selector(self, indexes):
        plans = self._hybrid_plans(indexes)
        assert FirstPlanSelector().select(plans, indexes, 300, 10, 0.5) is plans[0]

    def test_first_selector_empty(self, indexes):
        with pytest.raises(PlanningError):
            FirstPlanSelector().select([], indexes, 300, 10, 0.5)

    def test_rule_based_thresholds(self, indexes):
        selector = RuleBasedSelector(prefilter_below=0.05, postfilter_above=0.5)
        plans = self._hybrid_plans(indexes)
        assert selector.select(plans, indexes, 300, 10, 0.01).strategy == "pre_filter"
        assert selector.select(plans, indexes, 300, 10, 0.8).strategy == "post_filter"
        mid = selector.select(plans, indexes, 300, 10, 0.2).strategy
        assert mid in ("visit_first", "block_first")

    def test_rule_based_sets_oversample(self, indexes):
        selector = RuleBasedSelector()
        plans = self._hybrid_plans(indexes)
        chosen = selector.select(plans, indexes, 300, 10, 0.8)
        assert chosen.oversample == pytest.approx(1 / 0.8)

    def test_rule_based_invalid_thresholds(self):
        with pytest.raises(PlanningError):
            RuleBasedSelector(prefilter_below=0.9, postfilter_above=0.1)

    def test_rule_based_plain_prefers_index(self, indexes):
        plans = AutomaticPlanner().enumerate(False, indexes)
        chosen = RuleBasedSelector().select(plans, indexes, 300, 10, 1.0)
        assert chosen.strategy == "index_scan"

    def test_cost_based_picks_prefilter_when_selective(self, indexes):
        selector = CostBasedSelector()
        plans = self._hybrid_plans(indexes)
        chosen = selector.select(plans, indexes, 100000, 10, 0.001)
        assert chosen.strategy == "pre_filter"

    def test_cost_based_annotates_costs(self, indexes):
        selector = CostBasedSelector()
        plans = self._hybrid_plans(indexes)
        selector.select(plans, indexes, 1000, 10, 0.3)
        assert all(p.estimated_cost is not None for p in plans)

    def test_cost_based_never_picks_dominated(self, indexes):
        selector = CostBasedSelector()
        plans = self._hybrid_plans(indexes)
        chosen = selector.select(plans, indexes, 1000, 10, 0.3)
        assert chosen.estimated_cost == min(p.estimated_cost for p in plans)


class TestPlanCache:
    def _plan(self, strategy="brute_force"):
        return QueryPlan(strategy)

    def test_invalid_capacity(self):
        from repro.core.planner import PlanCache

        with pytest.raises(PlanningError):
            PlanCache(capacity=0)

    def test_miss_then_hit_counts(self):
        from repro.core.planner import PlanCache

        cache = PlanCache()
        assert cache.get(("k",)) is None
        chosen = self._plan()
        cache.put(("k",), chosen, [chosen])
        got = cache.get(("k",))
        assert got is not None and got[0] is chosen
        assert got[1] == (chosen,)
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_lru_eviction_and_recency_refresh(self):
        from repro.core.planner import PlanCache

        cache = PlanCache(capacity=2)
        a, b, c = (self._plan() for _ in range(3))
        cache.put("a", a, [])
        cache.put("b", b, [])
        cache.get("a")  # refresh: "b" is now least recent
        cache.put("c", c, [])
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert len(cache) == 2

    def test_clear_and_info(self):
        from repro.core.planner import PlanCache

        cache = PlanCache(capacity=8)
        cache.put("x", self._plan(), [])
        cache.get("x")
        cache.get("y")
        cache.clear()
        assert len(cache) == 0
        info = cache.info()
        assert info == {"hits": 1, "misses": 1, "size": 0, "capacity": 8}
