"""Tests for attribute-aware (stitched) graph construction (§2.3)."""

import numpy as np
import pytest

from repro.index import FilteredHnswIndex, HnswIndex
from repro.index.flat import FlatIndex
from repro.scores import EuclideanScore


@pytest.fixture(scope="module")
def labeled(small_data):
    rng = np.random.default_rng(4)
    labels = rng.integers(8, size=small_data.shape[0])
    index = FilteredHnswIndex(
        m=8, ef_construction=48, label_k=6, seed=0
    ).build_with_labels(small_data, labels)
    return index, labels


class TestFilteredHnsw:
    def test_label_search_only_returns_label(self, labeled, small_queries):
        index, labels = labeled
        hits = index.search(small_queries[0], 5, label=3)
        assert all(labels[h.id] == 3 for h in hits)
        assert len(hits) == 5

    def test_label_search_matches_per_label_oracle(self, labeled, small_data,
                                                   small_queries):
        index, labels = labeled
        for label in (0, 4, 7):
            members = np.flatnonzero(labels == label)
            oracle = FlatIndex(EuclideanScore()).build(
                small_data[members], ids=members.astype(np.int64)
            )
            for q in small_queries[:4]:
                expected = set(h.id for h in oracle.search(q, 5))
                got = set(h.id for h in index.search(q, 5, label=label, ef_search=64))
                assert len(got & expected) >= 4, (label,)

    def test_unknown_label_returns_empty(self, labeled, small_queries):
        index, _ = labeled
        assert index.search(small_queries[0], 5, label=99) == []

    def test_unfiltered_search_still_works(self, labeled, small_queries,
                                           ground_truth_10):
        index, _ = labeled
        recalls = []
        for qi, q in enumerate(small_queries):
            hits = index.search(q, 10)
            truth = set(int(t) for t in ground_truth_10[qi])
            recalls.append(len(truth & set(h.id for h in hits)) / 10)
        assert float(np.mean(recalls)) >= 0.9

    def test_stitched_edges_exist(self, labeled):
        index, _ = labeled
        assert index.stitched_edge_count() > 0

    def test_label_subgraph_connected(self, labeled, small_data):
        """Every same-label node must be reachable from the label entry
        through same-label stitched edges — the property online blocking
        destroys and stitching restores."""
        index, labels = labeled
        for label in np.unique(labels):
            members = set(int(m) for m in np.flatnonzero(labels == label))
            key = int(label)
            entry = index._label_entries[key]
            mask = labels == label
            neighbors = index._label_subgraph_neighbors(mask)
            seen = {entry}
            stack = [entry]
            while stack:
                for nb in neighbors(stack.pop()):
                    nb = int(nb)
                    if nb not in seen:
                        seen.add(nb)
                        stack.append(nb)
            assert seen == members, f"label {label} subgraph disconnected"

    def test_beats_bitmask_blocking_at_low_selectivity(self, small_data,
                                                       small_queries):
        """The [3, 43, 87] motivation: with rare labels, bitmask blocking
        on a plain graph loses recall to disconnection/dead-ends, while
        the stitched index stays accurate."""
        rng = np.random.default_rng(9)
        # 30 labels over 300 points -> selectivity ~3%.
        labels = rng.integers(30, size=small_data.shape[0])
        stitched = FilteredHnswIndex(
            m=8, ef_construction=48, label_k=4, seed=0
        ).build_with_labels(small_data, labels)
        plain = HnswIndex(m=8, ef_construction=48, seed=0).build(small_data)

        def recall(searcher):
            total, hit = 0, 0
            for label in range(10):
                members = np.flatnonzero(labels == label)
                if members.size == 0:
                    continue
                oracle = FlatIndex(EuclideanScore()).build(
                    small_data[members], ids=members.astype(np.int64)
                )
                for q in small_queries[:3]:
                    expected = set(h.id for h in oracle.search(q, 3))
                    got = set(h.id for h in searcher(q, label))
                    hit += len(got & expected)
                    total += len(expected)
            return hit / max(1, total)

        mask_by_label = {
            label: labels == label for label in range(10)
        }
        stitched_recall = recall(
            lambda q, label: stitched.search(q, 3, label=label, ef_search=32)
        )
        blocked_recall = recall(
            lambda q, label: plain.search(
                q, 3, allowed=mask_by_label[label], ef_search=32
            )
        )
        assert stitched_recall >= blocked_recall - 0.02

    def test_build_with_labels_validates_length(self, small_data):
        with pytest.raises(ValueError):
            FilteredHnswIndex(m=8).build_with_labels(small_data, [1, 2, 3])

    def test_label_search_without_labels_raises(self, small_data,
                                                small_queries):
        index = FilteredHnswIndex(m=8, seed=0).build(small_data)
        with pytest.raises(ValueError, match="without labels"):
            index.search(small_queries[0], 5, label=1)

    def test_allowed_mask_composes_with_label(self, labeled, small_queries):
        index, labels = labeled
        allowed = np.zeros(300, dtype=bool)
        allowed[::2] = True
        hits = index.search(small_queries[0], 5, label=3, allowed=allowed)
        assert all(labels[h.id] == 3 and h.id % 2 == 0 for h in hits)
