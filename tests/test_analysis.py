"""Tests for vdblint (repro.analysis): rules, baseline, CLI, self-check.

Each rule family gets a positive fixture (the violation fires) and a
negative fixture (the approved idiom stays silent); the self-check at
the end runs the full linter over ``src/repro`` and asserts the tree is
clean modulo the checked-in baseline — i.e. the repo obeys its own
declared invariants.
"""

import dataclasses
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import contracts
from repro.analysis.baseline import Baseline, Suppression
from repro.analysis.driver import (
    analyze_paths,
    analyze_source,
    main,
    module_name_for,
)
from repro.analysis.registry import all_rules, get_rule
from repro.core.types import SearchStats

ROOT = Path(__file__).resolve().parents[1]


def lint(code: str, path: str, rule_id: str):
    """Run one rule over a dedented source fixture."""
    return analyze_source(textwrap.dedent(code), path, [get_rule(rule_id)])


class TestRegistry:
    def test_rules_registered_and_well_formed(self):
        rules = all_rules()
        ids = [r.id for r in rules]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))
        assert len(rules) == 15
        for rule in rules:
            assert rule.id.startswith("VDB")
            assert rule.invariant
            assert rule.severity in ("error", "warning", "info")

    def test_module_name_for(self):
        assert module_name_for("src/repro/index/hnsw.py") == "repro.index.hnsw"
        assert module_name_for("src/repro/core/__init__.py") == "repro.core"
        assert module_name_for("tests/test_sql.py") == "tests.test_sql"

    def test_finding_positions_are_one_based_columns(self):
        (f,) = lint(
            "import time\nx = time.time()\n",
            "src/repro/storage/fixture.py",
            "VDB101",
        )
        assert (f.line, f.col) == (2, 5)
        assert f.context == "x = time.time()"
        assert f.path in f.render()


class TestDeterminismRules:
    def test_wall_clock_fires(self):
        code = """
            import time
            from datetime import datetime

            def stamp():
                return time.time(), datetime.now()
        """
        found = lint(code, "src/repro/storage/fixture.py", "VDB101")
        assert {f.rule for f in found} == {"VDB101"}
        assert len(found) == 2

    def test_perf_counter_is_exempt(self):
        code = """
            import time

            def probe():
                return time.perf_counter()
        """
        assert lint(code, "src/repro/storage/fixture.py", "VDB101") == []

    def test_legacy_numpy_rng_fires(self):
        code = """
            import numpy as np

            def noise(n):
                return np.random.rand(n) + np.random.standard_normal(n)
        """
        found = lint(code, "src/repro/index/fixture.py", "VDB102")
        assert len(found) == 2

    def test_unseeded_default_rng_fires_seeded_is_clean(self):
        bad = "import numpy as np\nrng = np.random.default_rng()\n"
        good = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert len(lint(bad, "src/repro/index/fixture.py", "VDB102")) == 1
        assert lint(good, "src/repro/index/fixture.py", "VDB102") == []

    def test_stdlib_random_module_fires_seeded_instance_is_clean(self):
        code = """
            import random
            from random import shuffle

            def scramble(xs):
                shuffle(xs)
                return random.randint(0, 7)

            def approved(xs, seed):
                rng = random.Random(seed)
                rng.shuffle(xs)
        """
        found = lint(code, "src/repro/reliability/fixture.py", "VDB102")
        assert len(found) == 2  # shuffle(...) and random.randint(...)


class TestLayeringRules:
    def test_scores_may_not_import_index(self):
        code = "from repro.index.hnsw import HnswIndex\n"
        (f,) = lint(code, "src/repro/scores/fixture.py", "VDB201")
        assert "repro.index.hnsw" in f.message

    def test_relative_import_within_allowed_prefix_is_clean(self):
        code = "from ..core.types import SearchStats\n"
        assert lint(code, "src/repro/scores/fixture.py", "VDB201") == []

    def test_lazy_cycle_breaker_allowed_only_in_function_scope(self):
        lazy = """
            def thaw(path):
                from ..core.collection import VectorCollection
                return VectorCollection
        """
        eager = "from ..core.collection import VectorCollection\n"
        assert lint(lazy, "src/repro/storage/fixture.py", "VDB201") == []
        (f,) = lint(eager, "src/repro/storage/fixture.py", "VDB201")
        assert "module scope" in f.message

    def test_importing_the_facade_fires(self):
        (f,) = lint("import repro\n", "src/repro/scores/fixture.py", "VDB201")
        assert "facade" in f.message

    def test_analysis_package_imports_nothing_from_repro(self):
        code = "from repro.core.types import SearchStats\n"
        (f,) = lint(code, "src/repro/analysis/fixture.py", "VDB201")
        assert "analysis" in f.message

    def test_observability_surface_eager_noopable_ok_heavy_lazy_only(self):
        eager_ok = "from ..observability.tracing import Tracer\n"
        eager_bad = "from ..observability.profiler import QueryProfile\n"
        lazy_ok = """
            def explain(self):
                from ..observability.profiler import build_profile_tree
                return build_profile_tree
        """
        path = "src/repro/core/fixture.py"
        assert lint(eager_ok, path, "VDB202") == []
        (f,) = lint(eager_bad, path, "VDB202")
        assert "lazily" in f.message
        assert lint(lazy_ok, path, "VDB202") == []


class TestStatsRules:
    def test_counter_mutation_outside_allowlist_fires(self):
        code = """
            def audit(stats):
                stats.distance_computations += 1
                stats.plan_name = "sneaky"
        """
        found = lint(code, "src/repro/observability/fixture.py", "VDB301")
        assert len(found) == 2

    def test_counter_mutation_in_allowlisted_module_is_clean(self):
        code = "def charge(stats):\n    stats.nodes_visited += 3\n"
        assert lint(code, "src/repro/index/fixture.py", "VDB301") == []

    def test_search_override_must_declare_stats(self):
        code = """
            class MyIndex(VectorIndex):
                def search(self, query, k):
                    return []
        """
        (f,) = lint(code, "src/repro/index/fixture.py", "VDB302")
        assert "stats" in f.message

    def test_search_override_with_stats_param_is_clean(self):
        code = """
            class MyIndex(VectorIndex):
                def search(self, query, k, stats=None):
                    return self._scan(query, k, stats=stats)
        """
        assert lint(code, "src/repro/index/fixture.py", "VDB302") == []

    def test_dropped_stats_fires_threaded_stats_is_clean(self):
        dropped = """
            class MyIndex(VectorIndex):
                def search(self, query, k, stats=None):
                    return sorted(self.rows)[:k]
        """
        threaded = """
            class MyIndex(VectorIndex):
                def search(self, query, k, stats=None):
                    stats.candidates_examined += len(self.rows)
                    return sorted(self.rows)[:k]
        """
        (f,) = lint(dropped, "src/repro/index/fixture.py", "VDB303")
        assert "never threads" in f.message
        assert lint(threaded, "src/repro/index/fixture.py", "VDB303") == []

    def test_abstract_search_declaration_is_exempt(self):
        code = '''
            class Base(VectorIndex):
                def _search(self, query, k, stats):
                    """Subclasses override."""
                    raise NotImplementedError
        '''
        assert lint(code, "src/repro/index/fixture.py", "VDB303") == []


class TestKernelBoundaryRule:
    PATH = "src/repro/index/fixture.py"

    def test_unblessed_matrix_fires(self):
        code = """
            def route(adj, xs, q):
                mat = np.stack(xs)
                return beam_search(adj, mat, q)
        """
        (f,) = lint(code, self.PATH, "VDB401")
        assert "ensure_f32c" in f.message

    def test_bare_parameter_forwarding_is_deferred_to_vdb701(self):
        # A parameter forwarded whole is a demand-forwarding wrapper:
        # VDB401 stays silent and VDB701 enforces at the call edges.
        code = """
            def route(adj, raw, q):
                return beam_search(adj, raw, q)
        """
        assert lint(code, self.PATH, "VDB401") == []

    def test_direct_ensure_f32c_and_blessed_attr_are_clean(self):
        code = """
            def route(self, adj, raw, q):
                a = beam_search(adj, ensure_f32c(raw), q)
                b = beam_search(adj, self._vectors, q)
                c = greedy_walk(adj, vectors=self.vectors, query=q)
                return a, b, c
        """
        assert lint(code, self.PATH, "VDB401") == []

    def test_blessing_propagates_through_locals_and_slices(self):
        code = """
            def route(adj, raw, q):
                mat = ensure_f32c(raw)
                window = mat
                return beam_search(adj, window[:100], q)
        """
        assert lint(code, self.PATH, "VDB401") == []

    def test_kernel_defining_module_is_exempt(self):
        code = """
            def beam_search_reference(adj, vectors, q):
                return beam_search(adj, vectors, q)
        """
        assert lint(code, "src/repro/index/_kernels.py", "VDB401") == []

    def test_batched_kernel_is_covered(self):
        code = """
            def route(adj, xs, qs):
                raw = np.stack(xs)
                return batched_beam_search(qs, raw, adj, [0], 16, None)
        """
        (f,) = lint(code, self.PATH, "VDB401")
        assert "batched_beam_search" in f.message
        code_ok = """
            def route(self, adj, qs):
                return batched_beam_search(qs, self._vectors, adj, [0], 16, None)
        """
        assert lint(code_ok, self.PATH, "VDB401") == []


class TestPackedLayoutBoundaryRule:
    PATH = "src/repro/quantization/fixture.py"

    def test_raw_array_fires(self):
        code = """
            def scan(luts, codes):
                return fastscan_accumulate(luts, codes.T)
        """
        (f,) = lint(code, self.PATH, "VDB402")
        assert "blocked packer" in f.message

    def test_packer_result_attribute_is_clean(self):
        code = """
            def scan(luts, codes, ks):
                blocked = pack_codes_blocked(codes, ks)
                a = fastscan_accumulate(luts, blocked.packed)
                b = fastscan_accumulate(
                    luts, gather_packed_cells(parts, cells).packed
                )
                return a, b
        """
        assert lint(code, self.PATH, "VDB402") == []

    def test_alias_of_packer_result_is_clean(self):
        code = """
            def scan(luts, parts, cells):
                blocked = gather_packed_cells(parts, cells)
                view = blocked
                return fastscan_accumulate(luts, packed=view.packed)
        """
        assert lint(code, self.PATH, "VDB402") == []

    def test_packed_attr_of_unknown_value_fires(self):
        code = """
            def scan(self, luts):
                return fastscan_accumulate(luts, self._blocked.packed)
        """
        (f,) = lint(code, self.PATH, "VDB402")
        assert f.rule == "VDB402"

    def test_defining_module_is_exempt(self):
        code = """
            def helper(luts, raw):
                return fastscan_accumulate(luts, raw)
        """
        path = "src/repro/quantization/fastscan.py"
        assert lint(code, path, "VDB402") == []


class TestSpanRules:
    PATH = "src/repro/core/fixture.py"

    def test_span_assigned_and_never_closed_fires(self):
        code = """
            def query(tracer):
                span = tracer.start_span("q")
                return 42
        """
        (f,) = lint(code, self.PATH, "VDB501")
        assert "leaks" in f.message

    def test_with_scoped_returned_or_finished_spans_are_clean(self):
        code = """
            def scoped(tracer, stats):
                with tracer.start_span("q").attach_stats(stats) as span:
                    return span

            def handed_back(tracer):
                return tracer.start_span("q")

            def explicit(tracer):
                span = tracer.start_span("q")
                try:
                    pass
                finally:
                    span.finish()
        """
        assert lint(code, self.PATH, "VDB501") == []

    def test_span_created_and_dropped_fires(self):
        code = """
            def fire_and_forget(tracer):
                tracer.start_span("q")
        """
        (f,) = lint(code, self.PATH, "VDB501")
        assert "dropped" in f.message

    def test_hand_off_to_registered_span_owner_is_clean(self):
        # The serving front door's journey-tracing idiom: a root span
        # outlives the creating function by moving into a registered
        # owner (SPAN_OWNER_ATTRS); the terminal disposition closes it.
        code = """
            def arrive(self, tracer, request, inflight):
                self._spans[request.trace_id] = tracer.start_span("serve")

            def arrive_via_name(self, tracer, request):
                root = tracer.start_span("serve", tenant=request.tenant)
                root.set(arrival=request.arrival_seconds)
                self._spans[root.trace_id] = root

            def attach(self, tracer, inflight):
                inflight.span = tracer.start_span("batch")
        """
        path = "src/repro/serving/fixture.py"
        assert lint(code, path, "VDB501") == []

    def test_store_into_unregistered_location_fires(self):
        code = """
            def arrive(self, tracer, request):
                self._pending[request.trace_id] = tracer.start_span("serve")
        """
        (f,) = lint(code, "src/repro/serving/fixture.py", "VDB501")
        assert "unregistered" in f.message

    def test_name_assign_without_owner_handoff_still_fires(self):
        code = """
            def arrive(self, tracer, request):
                root = tracer.start_span("serve")
                self._pending[request.trace_id] = root
        """
        (f,) = lint(code, "src/repro/serving/fixture.py", "VDB501")
        assert "handed off" in f.message

    def test_conditional_on_observability_component_fires(self):
        code = """
            def record(self, n):
                if self.obs.metrics:
                    self.obs.metrics.counter("queries").inc(n)
        """
        (f,) = lint(code, self.PATH, "VDB502")
        assert "no-op twins" in f.message

    def test_normalization_idiom_and_plain_calls_are_clean(self):
        code = """
            def wire(metrics):
                m = metrics if metrics is not None else NOOP_METRICS
                m.counter("queries").inc()
        """
        assert lint(code, self.PATH, "VDB502") == []


class TestStorageWriteRule:
    PATH = "src/repro/storage/fixture.py"

    def test_raw_write_idioms_fire(self):
        code = """
            import os
            import shutil
            import numpy as np

            def persist(path, arr, payload):
                path.write_text(payload)
                arr.tofile(path)
                np.savez_compressed(path, arr=arr)
                with open(path, "wb") as fh:
                    fh.write(payload)
                os.replace(path, path)
                shutil.rmtree(path)
        """
        found = lint(code, self.PATH, "VDB601")
        assert len(found) == 6
        assert all(f.rule == "VDB601" for f in found)

    def test_path_open_with_write_mode_fires(self):
        code = """
            def persist(path, payload):
                with path.open(mode="a") as fh:
                    fh.write(payload)
        """
        (f,) = lint(code, self.PATH, "VDB601")
        assert "temp-file + rename" in f.message

    def test_reads_and_atomic_writer_calls_are_clean(self):
        code = """
            import json
            from .atomic import atomic_write_bytes, npz_bytes

            def roundtrip(path, arrays):
                atomic_write_bytes(path, npz_bytes(**arrays))
                with open(path, "rb") as fh:
                    return json.loads(fh.read())
        """
        assert lint(code, self.PATH, "VDB601") == []

    def test_atomic_writer_module_is_exempt(self):
        code = """
            import os

            def replace(src, dst):
                os.replace(src, dst)
        """
        assert lint(code, "src/repro/storage/atomic.py", "VDB601") == []

    def test_rule_only_covers_storage_modules(self):
        code = """
            def dump(path, payload):
                path.write_text(payload)
        """
        assert lint(code, "src/repro/bench/fixture.py", "VDB601") == []


class TestContractsStayInSync:
    def test_search_stats_fields_match_dataclass(self):
        actual = {f.name for f in dataclasses.fields(SearchStats)}
        assert contracts.SEARCH_STATS_FIELDS == actual

    def test_layering_covers_exactly_the_real_packages(self):
        src = ROOT / "src" / "repro"
        real = {
            p.name for p in src.iterdir()
            if p.is_dir() and (p / "__init__.py").exists()
        }
        declared = set(contracts.LAYERING) - {""}
        assert declared == real

    def test_stats_allowlist_globs_match_real_files(self):
        for pattern in contracts.STATS_MUTATION_ALLOWLIST:
            assert list(ROOT.glob(pattern)), f"stale allowlist glob {pattern}"

    def test_kernel_entrypoints_exist(self):
        from repro.index import _graph, _kernels

        for name in contracts.KERNEL_ENTRYPOINTS:
            assert hasattr(_kernels, name) or hasattr(_graph, name)

    def test_noopable_surface_modules_exist(self):
        for dotted in contracts.OBSERVABILITY_NOOPABLE:
            rel = dotted.replace(".", "/") + ".py"
            assert (ROOT / "src" / rel).exists(), dotted


class TestBaseline:
    def test_missing_file_loads_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.toml")
        assert baseline.suppressions == []

    def test_write_then_load_round_trips_and_suppresses(self, tmp_path):
        findings = lint(
            "import time\nx = time.time()\n",
            "src/repro/storage/fixture.py",
            "VDB101",
        )
        path = tmp_path / "baseline.toml"
        Baseline(path=path).write(findings, "grandfathered for the test")
        loaded = Baseline.load(path)
        new, suppressed, stale = loaded.split(findings)
        assert (new, stale) == ([], [])
        assert len(suppressed) == len(findings) == 1
        assert loaded.suppressions[0].justification

    def test_context_mismatch_goes_stale_not_suppressed(self):
        findings = lint(
            "import time\nx = time.time()\n",
            "src/repro/storage/fixture.py",
            "VDB101",
        )
        sup = Suppression(
            rule="VDB101",
            path="src/repro/storage/fixture.py",
            context="y = time.time()  # the code this covered is gone",
            justification="covers an older line",
        )
        new, suppressed, stale = Baseline(suppressions=[sup]).split(findings)
        assert len(new) == 1 and suppressed == [] and stale == [sup]

    def test_justification_is_mandatory(self, tmp_path):
        path = tmp_path / "baseline.toml"
        path.write_text(
            'version = 1\n[[suppress]]\nrule = "VDB101"\n'
            'path = "src/repro/x.py"\n'
        )
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(path)


@pytest.fixture()
def lint_repo(tmp_path):
    """A miniature repo with one deliberately violating module."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    pkg = tmp_path / "src" / "repro" / "index"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "import numpy as np\n\n\ndef sample(n):\n"
        "    return np.random.rand(n)\n"
    )
    return tmp_path


class TestCli:
    def test_violation_exits_nonzero(self, lint_repo, capsys):
        assert main(["--root", str(lint_repo), "src/repro"]) == 1
        out = capsys.readouterr().out
        assert "VDB102" in out and "bad.py" in out

    def test_clean_tree_exits_zero(self, lint_repo, capsys):
        (lint_repo / "src/repro/index/bad.py").write_text(
            "import numpy as np\n\n\ndef sample(n, seed):\n"
            "    return np.random.default_rng(seed).random(n)\n"
        )
        assert main(["--root", str(lint_repo), "src/repro"]) == 0

    def test_select_limits_rules(self, lint_repo, capsys):
        assert main(
            ["--root", str(lint_repo), "src/repro", "--select", "VDB101"]
        ) == 0
        assert main(
            ["--root", str(lint_repo), "src/repro", "--select", "VDB999"]
        ) == 2

    def test_write_baseline_then_check_flags_stale(self, lint_repo, capsys):
        root = ["--root", str(lint_repo), "src/repro"]
        assert main(root + ["--write-baseline", "grandfathered"]) == 0
        assert main(root + ["--check"]) == 0  # suppressed, not clean
        assert "baselined" in capsys.readouterr().out
        # Fix the violation: the suppression is now stale and --check
        # demands the baseline shrink.
        (lint_repo / "src/repro/index/bad.py").write_text("x = 1\n")
        assert main(root) == 0
        assert main(root + ["--check"]) == 1
        assert "stale" in capsys.readouterr().out

    def test_syntax_error_is_reported_not_crash(self, lint_repo, capsys):
        (lint_repo / "src/repro/index/bad.py").write_text("def broken(:\n")
        assert main(["--root", str(lint_repo), "src/repro"]) == 1
        assert "VDB000" in capsys.readouterr().out

    def test_json_format(self, lint_repo, capsys):
        assert main(
            ["--root", str(lint_repo), "src/repro", "--format", "json"]
        ) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"][0]["rule"] == "VDB102"

    def test_list_rules_shows_every_id(self, lint_repo, capsys):
        # Point at the miniature repo so the timing run stays fast.
        assert main(["--root", str(lint_repo), "src/repro", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out


class TestRepoSelfCheck:
    """The repo must satisfy its own invariants (modulo the baseline)."""

    def test_src_repro_is_clean_against_baseline(self):
        findings, files = analyze_paths(["src/repro"], ROOT)
        baseline = Baseline.load(ROOT / "analysis" / "baseline.toml")
        new, _suppressed, _stale = baseline.split(findings)
        failing = [f for f in new if f.fails]
        assert files > 50
        assert failing == [], "\n".join(f.render() for f in failing)

    def test_cli_check_mode_passes_at_head(self, capsys):
        assert main(["--root", str(ROOT), "src/repro", "--check"]) == 0
