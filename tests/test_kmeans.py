"""Tests for the from-scratch k-means."""

import numpy as np
import pytest

from repro.quantization import assign, assign_topn, kmeans, kmeans_pp_init


@pytest.fixture
def blobs(rng):
    centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
    labels = rng.integers(3, size=300)
    return centers[labels] + 0.3 * rng.standard_normal((300, 2)), centers


class TestKMeans:
    def test_recovers_separated_clusters(self, blobs):
        data, centers = blobs
        result = kmeans(data, 3, seed=0)
        # Each true center should be within 0.5 of some learned centroid.
        for center in centers:
            d = np.linalg.norm(result.centroids - center, axis=1).min()
            assert d < 0.5

    def test_inertia_nonincreasing_with_k(self, blobs):
        data, _ = blobs
        inertias = [kmeans(data, k, seed=0).inertia for k in (1, 3, 10)]
        assert inertias[0] >= inertias[1] >= inertias[2]

    def test_assignments_match_nearest_centroid(self, blobs):
        data, _ = blobs
        result = kmeans(data, 3, seed=0)
        np.testing.assert_array_equal(
            result.assignments, assign(data, result.centroids)
        )

    def test_k_equals_n_zero_inertia(self, rng):
        data = rng.standard_normal((8, 3))
        result = kmeans(data, 8, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_k_one_is_mean(self, rng):
        data = rng.standard_normal((50, 4))
        result = kmeans(data, 1, seed=0)
        np.testing.assert_allclose(result.centroids[0], data.mean(axis=0), atol=1e-9)

    def test_invalid_k(self, rng):
        data = rng.standard_normal((5, 2))
        with pytest.raises(ValueError):
            kmeans(data, 0)
        with pytest.raises(ValueError):
            kmeans(data, 6)

    def test_deterministic_given_seed(self, blobs):
        data, _ = blobs
        a = kmeans(data, 3, seed=42)
        b = kmeans(data, 3, seed=42)
        np.testing.assert_array_equal(a.centroids, b.centroids)

    def test_handles_duplicate_points(self):
        data = np.ones((20, 3))
        result = kmeans(data, 4, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_no_empty_clusters_on_clustered_data(self, blobs):
        data, _ = blobs
        result = kmeans(data, 16, seed=0)
        counts = np.bincount(result.assignments, minlength=16)
        assert (counts > 0).all()


class TestAssignTopN:
    def test_first_column_is_nearest(self, blobs):
        data, _ = blobs
        result = kmeans(data, 5, seed=0)
        top2 = assign_topn(data, result.centroids, 2)
        np.testing.assert_array_equal(top2[:, 0], assign(data, result.centroids))

    def test_columns_sorted_by_distance(self, rng):
        centroids = rng.standard_normal((6, 3))
        points = rng.standard_normal((10, 3))
        top = assign_topn(points, centroids, 4)
        for i in range(10):
            d = np.linalg.norm(centroids[top[i]] - points[i], axis=1)
            assert (np.diff(d) >= -1e-9).all()

    def test_n_clamped_to_k(self, rng):
        centroids = rng.standard_normal((3, 2))
        top = assign_topn(rng.standard_normal((4, 2)), centroids, 10)
        assert top.shape == (4, 3)


class TestKMeansPP:
    def test_spreads_centroids(self, blobs):
        data, centers = blobs
        rng = np.random.default_rng(0)
        init = kmeans_pp_init(data, 3, rng)
        # Initial centroids should not all come from one blob.
        dists = np.linalg.norm(init[:, None] - centers[None], axis=2)
        assert len(set(dists.argmin(axis=1))) >= 2
