"""Tests for embedders, system presets, and the bench harness."""

import numpy as np
import pytest

from repro.bench import (
    AlgorithmSpec,
    Measurement,
    exact_ground_truth,
    format_table,
    gaussian_mixture,
    hybrid_workload,
    mean_recall,
    measure,
    multi_vector_entities,
    normalized_embeddings,
    pareto_frontier,
    precision_at_k,
    recall_at_k,
    sift_like,
    uniform_hypercube,
)
from repro.embed import (
    HashingTextEmbedder,
    NumericFeatureEmbedder,
    available_embedders,
    get_embedder,
)
from repro.scores import EuclideanScore
from repro.systems import SYSTEM_PRESETS, build_preset_index, mostly_mixed, mostly_vector, relational


class TestEmbedders:
    def test_text_embedder_deterministic(self):
        emb = HashingTextEmbedder(dim=32)
        np.testing.assert_array_equal(emb("hello world"), emb("hello world"))

    def test_text_embedder_unit_norm(self):
        emb = HashingTextEmbedder(dim=32)
        assert np.linalg.norm(emb("some text")) == pytest.approx(1.0, rel=1e-5)

    def test_similar_texts_closer(self):
        emb = HashingTextEmbedder(dim=64)
        base = emb("red running shoes for marathon training")
        near = emb("red running shoes for marathon racing")
        far = emb("quantum chromodynamics lattice simulation")
        assert np.dot(base, near) > np.dot(base, far)

    def test_numeric_embedder_preserves_geometry(self, rng):
        emb = NumericFeatureEmbedder(num_features=20, dim=16, seed=0)
        a, b, c = rng.standard_normal((3, 20))
        # JL projection approximately preserves relative distances.
        d_ab = np.linalg.norm(emb(a) - emb(b))
        d_ac = np.linalg.norm(emb(a) - emb(c))
        true_ab = np.linalg.norm(a - b)
        true_ac = np.linalg.norm(a - c)
        if true_ab < 0.5 * true_ac:
            assert d_ab < d_ac

    def test_numeric_embedder_validates_shape(self):
        emb = NumericFeatureEmbedder(num_features=4, dim=8)
        with pytest.raises(ValueError):
            emb([1.0, 2.0])

    def test_registry(self):
        assert "hashing_text" in available_embedders()
        emb = get_embedder("hashing_text", dim=16)
        assert emb.dim == 16
        with pytest.raises(ValueError):
            get_embedder("gpt9000")

    def test_batch(self):
        emb = HashingTextEmbedder(dim=16)
        out = emb.batch(["a", "b", "c"])
        assert out.shape == (3, 16)


class TestSystemPresets:
    @pytest.fixture
    def loaded(self, hybrid_dataset):
        def load(maker):
            db = maker(hybrid_dataset.dim)
            db.insert_many(hybrid_dataset.train[:200],
                           hybrid_dataset.attributes[:200])
            build_preset_index(db)
            return db

        return load

    def test_mostly_vector_always_postfilters(self, loaded, hybrid_dataset):
        from repro.hybrid.predicates import Field

        db = loaded(mostly_vector)
        result = db.search(
            hybrid_dataset.queries[0], k=3, predicate=Field("rating") >= 2
        )
        assert "post_filter" in result.stats.plan_name

    def test_mostly_mixed_optimizes(self, loaded, hybrid_dataset):
        from repro.core.query import SearchQuery
        from repro.hybrid.predicates import Field

        db = loaded(mostly_mixed)
        _, plans = db.plan(
            SearchQuery(hybrid_dataset.queries[0], 3,
                        predicate=Field("rating") >= 2)
        )
        assert len(plans) > 1  # real enumeration happened

    def test_relational_brute_force_without_index(self, loaded, hybrid_dataset):
        db = loaded(relational)
        result = db.search(hybrid_dataset.queries[0], k=3)
        assert "brute_force" in result.stats.plan_name

    def test_relational_upgrades_with_index(self, loaded, hybrid_dataset):
        db = loaded(relational)
        db.create_index("hnsw", "hnsw", m=8, seed=0)
        result = db.search(hybrid_dataset.queries[0], k=3)
        assert "index_scan" in result.stats.plan_name

    def test_presets_registry(self):
        assert set(SYSTEM_PRESETS) == {"mostly_vector", "mostly_mixed",
                                       "relational"}


class TestDatasets:
    def test_gaussian_mixture_shapes(self):
        ds = gaussian_mixture(n=100, dim=8, num_queries=5, seed=0)
        assert ds.train.shape == (100, 8)
        assert ds.queries.shape == (5, 8)
        assert ds.train.dtype == np.float32

    def test_deterministic(self):
        a = gaussian_mixture(n=50, dim=4, seed=3)
        b = gaussian_mixture(n=50, dim=4, seed=3)
        np.testing.assert_array_equal(a.train, b.train)

    def test_sift_like_range(self):
        ds = sift_like(n=50, dim=16, seed=0)
        assert ds.train.min() >= 0
        assert ds.train.max() <= 255

    def test_normalized_unit_norm(self):
        ds = normalized_embeddings(n=50, dim=8, seed=0)
        np.testing.assert_allclose(
            np.linalg.norm(ds.train, axis=1), 1.0, rtol=1e-4
        )

    def test_uniform_range(self):
        ds = uniform_hypercube(n=50, dim=4, seed=0)
        assert 0 <= ds.train.min() and ds.train.max() <= 1

    def test_hybrid_attributes(self):
        ds = hybrid_workload(n=60, dim=4, num_categories=3, seed=0)
        assert len(ds.attributes) == 60
        cats = {a["category"] for a in ds.attributes}
        assert cats <= set(range(3))
        assert all(a["price"] > 0 for a in ds.attributes)
        assert all(1 <= a["rating"] <= 5 for a in ds.attributes)

    def test_hybrid_correlated_categories(self):
        ds = hybrid_workload(n=200, dim=8, num_categories=4, correlated=True,
                             seed=0)
        labels = ds.metadata.get("correlated")
        assert labels is True

    def test_multi_vector_entities(self):
        entities, queries = multi_vector_entities(
            num_entities=20, vectors_per_entity=3, dim=8, num_queries=4,
            query_vectors=2,
        )
        assert len(entities) == 20
        assert entities[0].shape == (3, 8)
        assert queries.shape == (4, 2, 8)


class TestMetrics:
    def test_ground_truth_is_exact(self, small_data, small_queries, flat_oracle):
        truth = exact_ground_truth(small_data, small_queries, 5, EuclideanScore())
        for qi, q in enumerate(small_queries):
            expected = [h.id for h in flat_oracle.search(q, 5)]
            assert truth[qi].tolist() == expected

    def test_recall_and_precision(self):
        truth = np.array([1, 2, 3, 4, 5])
        assert recall_at_k([1, 2, 3], truth) == pytest.approx(3 / 5)
        assert precision_at_k([1, 2, 3], truth, k=5) == pytest.approx(3 / 5)
        assert recall_at_k([9, 8], truth) == 0.0

    def test_mean_recall(self, flat_oracle, small_data, small_queries):
        truth = exact_ground_truth(small_data, small_queries, 5, EuclideanScore())
        results = [flat_oracle.search(q, 5) for q in small_queries]
        assert mean_recall(results, truth) == pytest.approx(1.0)

    def test_pareto_frontier(self):
        def m(recall, qps):
            return Measurement("a", "-", recall, qps, 0, 0)

        points = [m(0.5, 100), m(0.9, 50), m(0.5, 50), m(0.4, 120)]
        frontier = pareto_frontier(points)
        assert m(0.5, 50) not in frontier
        assert m(0.5, 100) in frontier
        assert m(0.9, 50) in frontier
        assert m(0.4, 120) in frontier


class TestHarness:
    def test_measure_flat_is_exact(self):
        ds = gaussian_mixture(n=200, dim=8, num_queries=10, seed=0)
        truth = exact_ground_truth(ds.train, ds.queries, 10, EuclideanScore())
        out = measure(AlgorithmSpec("flat"), ds, truth, k=10)
        assert len(out) == 1
        assert out[0].recall == pytest.approx(1.0)
        assert out[0].qps > 0

    def test_measure_sweeps_params(self):
        ds = gaussian_mixture(n=200, dim=8, num_queries=5, seed=0)
        truth = exact_ground_truth(ds.train, ds.queries, 5, EuclideanScore())
        spec = AlgorithmSpec("ivf_flat", {"nlist": 8},
                             [{"nprobe": 1}, {"nprobe": 8}])
        out = measure(spec, ds, truth, k=5)
        assert len(out) == 2
        assert out[1].recall >= out[0].recall

    def test_format_table(self):
        text = format_table(
            [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="demo"
        )
        assert "demo" in text
        assert "22" in text
        lines = text.splitlines()
        assert len(lines) == 5  # title, header, rule, 2 rows

    def test_format_empty(self):
        assert "(no rows)" in format_table([], title="t")
