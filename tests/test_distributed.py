"""Tests for distributed scatter-gather search (§2.3)."""

import numpy as np
import pytest

from repro.core.errors import VdbmsError
from repro.distributed import (
    DistributedSearchCluster,
    IndexGuidedSharding,
    NodeLatencyModel,
    SearchNode,
    UniformSharding,
)
from repro.index import FlatIndex
from repro.scores import EuclideanScore


@pytest.fixture(scope="module")
def cluster_data(small_dataset):
    return small_dataset.train


class TestSharding:
    def test_uniform_balanced(self, cluster_data):
        strategy = UniformSharding(4)
        assignment = strategy.assign(cluster_data)
        counts = np.bincount(assignment, minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_uniform_routes_everywhere(self, cluster_data):
        strategy = UniformSharding(4)
        assert strategy.route(cluster_data[0], 2) == [0, 1, 2, 3]

    def test_index_guided_respects_clusters(self, cluster_data):
        strategy = IndexGuidedSharding(4, cells_per_shard=2, seed=0)
        strategy.fit(cluster_data)
        # Points in the same tight cluster should mostly share a shard.
        assignment = strategy.assign(cluster_data)
        assert assignment.shape == (300,)

    def test_index_guided_routes_subset(self, cluster_data):
        strategy = IndexGuidedSharding(4, cells_per_shard=2, seed=0)
        strategy.fit(cluster_data)
        routed = strategy.route(cluster_data[0], nprobe=1)
        assert len(routed) == 1

    def test_index_guided_requires_fit_for_route(self, cluster_data):
        with pytest.raises(RuntimeError):
            IndexGuidedSharding(2).route(cluster_data[0], 1)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            UniformSharding(0)


class TestSearchNode:
    def test_node_search(self, cluster_data):
        node = SearchNode("n0", index_type="flat")
        node.load(cluster_data[:100], np.arange(100, dtype=np.int64))
        hits, latency, stats = node.search(cluster_data[5], 3)
        assert hits[0].id == 5
        assert latency > 0
        assert stats.distance_computations > 0

    def test_down_node_raises(self, cluster_data):
        node = SearchNode("n0", index_type="flat")
        node.load(cluster_data[:10], np.arange(10, dtype=np.int64))
        node.is_up = False
        with pytest.raises(ConnectionError):
            node.search(cluster_data[0], 1)

    def test_empty_node(self):
        node = SearchNode("n0", index_type="flat")
        node.load(np.empty((0, 4), dtype=np.float32), np.empty(0, dtype=np.int64))
        hits, _, _ = node.search(np.zeros(4, dtype=np.float32), 3)
        assert hits == []


class TestCluster:
    def _uniform_cluster(self, data, shards=4, replicas=1):
        cluster = DistributedSearchCluster(
            sharding=UniformSharding(shards), replication_factor=replicas,
            index_type="flat",
        )
        cluster.load(data)
        return cluster

    def test_results_match_single_node_exact(self, cluster_data, small_queries):
        cluster = self._uniform_cluster(cluster_data)
        oracle = FlatIndex(EuclideanScore()).build(cluster_data)
        for q in small_queries[:5]:
            result, _ = cluster.search(q, 10)
            expected = [h.id for h in oracle.search(q, 10)]
            assert result.ids == expected

    def test_shard_sizes_cover_data(self, cluster_data):
        cluster = self._uniform_cluster(cluster_data)
        assert sum(cluster.shard_sizes()) == 300

    def test_replica_failover(self, cluster_data, small_queries):
        cluster = self._uniform_cluster(cluster_data, replicas=2)
        baseline, _ = cluster.search(small_queries[0], 5)
        cluster.fail_node(0, 0)
        result, dstats = cluster.search(small_queries[0], 5)
        assert result.ids == baseline.ids
        assert dstats.failovers >= 0  # failover only if shard 0 was routed

    def test_all_replicas_down_raises(self, cluster_data, small_queries):
        cluster = self._uniform_cluster(cluster_data, replicas=1)
        cluster.fail_node(0, 0)
        with pytest.raises(VdbmsError, match="all replicas"):
            cluster.search(small_queries[0], 5)

    def test_recovery(self, cluster_data, small_queries):
        cluster = self._uniform_cluster(cluster_data, replicas=1)
        cluster.fail_node(1, 0)
        cluster.recover_node(1, 0)
        result, _ = cluster.search(small_queries[0], 5)
        assert len(result) == 5

    def test_index_guided_contacts_fewer_shards(self, cluster_data,
                                                small_queries):
        guided = DistributedSearchCluster(
            sharding=IndexGuidedSharding(4, cells_per_shard=2, seed=0),
            index_type="flat",
        )
        guided.load(cluster_data)
        uniform = self._uniform_cluster(cluster_data)
        _, g = guided.search(small_queries[0], 5, route_nprobe=2)
        _, u = uniform.search(small_queries[0], 5)
        assert g.shards_contacted <= u.shards_contacted

    def test_latency_is_max_not_sum(self, cluster_data, small_queries):
        latency = NodeLatencyModel(network_seconds=0.01, per_distance_seconds=0)
        cluster = DistributedSearchCluster(
            sharding=UniformSharding(4), index_type="flat", latency=latency
        )
        cluster.load(cluster_data)
        _, dstats = cluster.search(small_queries[0], 5)
        # 4 shards at 10ms each in parallel -> ~10ms, not 40ms.
        assert dstats.simulated_latency_seconds < 0.02

    def test_throughput_scales_with_guided_routing(self, cluster_data,
                                                   small_queries):
        guided = DistributedSearchCluster(
            sharding=IndexGuidedSharding(4, cells_per_shard=2, seed=0),
            index_type="flat",
        )
        guided.load(cluster_data)
        _, g = guided.search(small_queries[0], 5, route_nprobe=1)
        uniform = self._uniform_cluster(cluster_data)
        _, u = uniform.search(small_queries[0], 5)
        assert guided.throughput_estimate(g) >= uniform.throughput_estimate(u)

    def test_unloaded_cluster_rejected(self, small_queries):
        cluster = DistributedSearchCluster(num_shards=2, index_type="flat")
        with pytest.raises(VdbmsError, match="no data"):
            cluster.search(small_queries[0], 5)

    def test_invalid_replication(self):
        with pytest.raises(VdbmsError):
            DistributedSearchCluster(replication_factor=0)

    def test_round_robin_spreads_load(self, cluster_data, small_queries):
        cluster = self._uniform_cluster(cluster_data, replicas=2)
        for _ in range(10):
            cluster.search(small_queries[0], 3)
        served = [
            replica.queries_served
            for shard in cluster.nodes
            for replica in shard
        ]
        assert min(served) >= 3  # both replicas of each shard did work
