"""Tests for index-supported incremental search (§2.6(5))."""

import pytest

from repro.core.incremental import IncrementalSearcher, RestartIncrementalSearcher
from repro.hybrid.predicates import Field
from repro.index import HnswIndex, VamanaIndex


@pytest.fixture(scope="module")
def graph(small_data):
    return HnswIndex(m=8, ef_construction=64, seed=0).build(small_data)


class TestIncrementalSearcher:
    def test_pages_are_disjoint_and_sorted(self, graph, small_queries):
        inc = IncrementalSearcher(graph, small_queries[0])
        pages = [inc.next_batch(5) for _ in range(4)]
        ids = [h.id for page in pages for h in page]
        assert len(ids) == len(set(ids)) == 20
        distances = [h.distance for page in pages for h in page]
        assert distances == sorted(distances)

    def test_matches_exact_topk(self, graph, small_queries, flat_oracle):
        q = small_queries[1]
        inc = IncrementalSearcher(graph, q)
        got = [h.id for h in inc.next_batch(10) + inc.next_batch(10)]
        exact = [h.id for h in flat_oracle.search(q, 20)]
        assert len(set(got) & set(exact)) >= 18

    def test_pagination_equals_one_shot(self, graph, small_queries):
        q = small_queries[2]
        inc = IncrementalSearcher(graph, q)
        paged = [h.id for _ in range(3) for h in inc.next_batch(4)]
        one_shot = IncrementalSearcher(graph, q).next_batch(12)
        assert paged == [h.id for h in one_shot]

    def test_exhaustion(self, graph, small_queries):
        inc = IncrementalSearcher(graph, small_queries[0])
        total = []
        for _ in range(100):
            page = inc.next_batch(50)
            total.extend(page)
            if inc.exhausted:
                break
        assert inc.exhausted
        assert len(total) == 300  # the whole (connected) collection

    def test_predicate_filtering(self, graph, small_data, small_queries):
        from repro.core.collection import VectorCollection

        coll = VectorCollection(small_data.shape[1])
        coll.insert_many(
            small_data, [{"even": int(i % 2 == 0)} for i in range(300)]
        )
        inc = IncrementalSearcher(
            graph, small_queries[0], predicate=Field("even") == 1,
            collection=coll,
        )
        page = inc.next_batch(10)
        assert len(page) == 10
        assert all(h.id % 2 == 0 for h in page)

    def test_incremental_cheaper_than_restart_for_deep_pages(
        self, graph, small_queries
    ):
        q = small_queries[3]
        inc = IncrementalSearcher(graph, q)
        for _ in range(6):
            inc.next_batch(10)
        restart = RestartIncrementalSearcher(graph, q)
        for _ in range(6):
            restart.next_batch(10)
        assert inc.stats.distance_computations < restart.stats.distance_computations

    def test_works_on_plain_graph_index(self, small_data, small_queries):
        vamana = VamanaIndex(max_degree=10, beam_width=32, seed=0).build(small_data)
        inc = IncrementalSearcher(vamana, small_queries[0])
        assert len(inc.next_batch(5)) == 5

    def test_results_reported_counter(self, graph, small_queries):
        inc = IncrementalSearcher(graph, small_queries[0])
        inc.next_batch(7)
        assert inc.results_reported == 7


class TestRestartBaseline:
    def test_pages_disjoint(self, graph, small_queries):
        restart = RestartIncrementalSearcher(graph, small_queries[0])
        a = restart.next_batch(5)
        b = restart.next_batch(5)
        assert not set(h.id for h in a) & set(h.id for h in b)

    def test_exhaustion_flag(self, graph, small_queries):
        restart = RestartIncrementalSearcher(graph, small_queries[0])
        for _ in range(40):
            restart.next_batch(50)
            if restart.exhausted:
                break
        assert restart.exhausted
