"""Property-based tests (hypothesis) for score invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.scores import (
    CosineScore,
    EuclideanScore,
    HammingScore,
    MinkowskiScore,
    get_score,
)

finite_floats = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False, width=32
)


def vec(dim):
    return arrays(np.float32, (dim,), elements=finite_floats)


METRICS = [EuclideanScore(), MinkowskiScore(1.0), MinkowskiScore(np.inf)]


@pytest.mark.parametrize("score", METRICS, ids=lambda s: s.name)
class TestMetricAxioms:
    @given(x=vec(6), y=vec(6))
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, score, x, y):
        d_xy = float(score.distances(x, y[None, :])[0])
        d_yx = float(score.distances(y, x[None, :])[0])
        assert d_xy == pytest.approx(d_yx, rel=1e-4, abs=1e-4)

    @given(x=vec(6))
    @settings(max_examples=50, deadline=None)
    def test_identity(self, score, x):
        assert float(score.distances(x, x[None, :])[0]) == pytest.approx(
            0.0, abs=1e-3
        )

    @given(x=vec(6), y=vec(6))
    @settings(max_examples=50, deadline=None)
    def test_non_negative(self, score, x, y):
        assert float(score.distances(x, y[None, :])[0]) >= -1e-6

    @given(x=vec(6), y=vec(6), z=vec(6))
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality(self, score, x, y, z):
        d_xz = float(score.distances(x, z[None, :])[0])
        d_xy = float(score.distances(x, y[None, :])[0])
        d_yz = float(score.distances(y, z[None, :])[0])
        assert d_xz <= d_xy + d_yz + 1e-3


class TestCosineProperties:
    @given(x=vec(5), y=vec(5))
    @settings(max_examples=50, deadline=None)
    def test_range(self, x, y):
        d = float(CosineScore().distances(x, y[None, :])[0])
        assert -1e-6 <= d <= 2.0 + 1e-6

    @given(x=vec(5), scale=st.floats(min_value=0.01, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_positive_scale_invariance(self, x, scale):
        y = x + 1.0  # arbitrary second vector
        d1 = float(CosineScore().distances(x, y[None, :])[0])
        d2 = float(CosineScore().distances(x * np.float32(scale), y[None, :])[0])
        assert d1 == pytest.approx(d2, abs=1e-3)


class TestHammingProperties:
    @given(
        bits=arrays(np.int8, (2, 12), elements=st.integers(min_value=0, max_value=1))
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_dim(self, bits):
        d = float(HammingScore().distances(bits[0], bits[1:])[0])
        assert 0 <= d <= 12

    @given(
        bits=arrays(np.int8, (3, 8), elements=st.integers(min_value=0, max_value=1))
    )
    @settings(max_examples=50, deadline=None)
    def test_triangle(self, bits):
        score = HammingScore()
        d = lambda a, b: float(score.distances(a, b[None, :])[0])
        assert d(bits[0], bits[2]) <= d(bits[0], bits[1]) + d(bits[1], bits[2])


class TestPairwiseConsistency:
    @given(
        a=arrays(np.float32, (3, 4), elements=finite_floats),
        b=arrays(np.float32, (4, 4), elements=finite_floats),
        name=st.sampled_from(["l2", "l1", "cosine", "ip", "linf", "sqeuclidean"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_pairwise_equals_rowwise(self, a, b, name):
        score = get_score(name)
        pw = score.pairwise(a, b)
        for i in range(a.shape[0]):
            np.testing.assert_allclose(
                pw[i], score.distances(a[i], b), rtol=1e-3, atol=1e-3
            )
