"""Smoke tests: every example script must run to completion.

The quickstart runs in the default suite; the heavier scenario scripts
are marked slow (enable with ``pytest --runslow``).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_examples_exist():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "ecommerce_hybrid_search.py",
        "rag_document_retrieval.py",
        "billion_scale_simulation.py",
        "frontier_features.py",
    } <= names


def test_quickstart_runs():
    out = run_example("quickstart.py")
    assert "top-5 nearest" in out
    assert "EXPLAIN" in out
    assert "deleted id=" in out


@pytest.mark.slow
def test_ecommerce_runs():
    out = run_example("ecommerce_hybrid_search.py")
    assert "optimizer picks" in out
    assert "all results satisfy their predicates" in out


@pytest.mark.slow
def test_rag_runs():
    out = run_example("rag_document_retrieval.py")
    assert "semantic retrieval" in out


@pytest.mark.slow
def test_billion_scale_runs():
    out = run_example("billion_scale_simulation.py")
    assert "disk-resident indexes" in out
    assert "failure drill" in out


@pytest.mark.slow
def test_frontier_features_runs():
    out = run_example("frontier_features.py")
    assert "multi-vector entity search" in out
