"""Tests for core value types."""

import numpy as np
import pytest

from repro.core.errors import DimensionMismatchError
from repro.core.types import (
    SearchHit,
    SearchResult,
    SearchStats,
    as_matrix,
    as_vector,
    topk_from_arrays,
)


class TestAsMatrix:
    def test_single_vector_becomes_row(self):
        out = as_matrix([1.0, 2.0, 3.0])
        assert out.shape == (1, 3)
        assert out.dtype == np.float32

    def test_list_of_vectors(self):
        out = as_matrix([[1, 2], [3, 4]])
        assert out.shape == (2, 2)

    def test_dim_check(self):
        with pytest.raises(DimensionMismatchError):
            as_matrix([[1, 2, 3]], dim=2)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            as_matrix(np.zeros((2, 2, 2)))

    def test_contiguous(self):
        arr = np.zeros((4, 6), dtype=np.float32)[:, ::2]
        out = as_matrix(arr)
        assert out.flags["C_CONTIGUOUS"]


class TestAsVector:
    def test_row_matrix_squeezed(self):
        out = as_vector(np.zeros((1, 5)))
        assert out.shape == (5,)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            as_vector(np.zeros((2, 5)))

    def test_dim_mismatch_reports_both(self):
        with pytest.raises(DimensionMismatchError) as excinfo:
            as_vector(np.zeros(4), dim=8)
        assert excinfo.value.expected == 8
        assert excinfo.value.actual == 4


class TestSearchHit:
    def test_ordering_by_distance(self):
        assert SearchHit(1, 0.5) < SearchHit(2, 0.7)

    def test_ordering_ties_break_by_id(self):
        assert SearchHit(1, 0.5) < SearchHit(2, 0.5)

    def test_sorting_list(self):
        hits = [SearchHit(3, 2.0), SearchHit(1, 1.0), SearchHit(2, 1.5)]
        assert [h.id for h in sorted(hits)] == [1, 2, 3]


class TestSearchResult:
    def test_accessors(self):
        result = SearchResult([SearchHit(4, 0.1), SearchHit(9, 0.2)])
        assert result.ids == [4, 9]
        assert result.distances == [0.1, 0.2]
        assert len(result) == 2
        assert result[0].id == 4
        assert [h.id for h in result] == [4, 9]


class TestSearchStats:
    def test_merge_accumulates(self):
        a = SearchStats(distance_computations=5, page_reads=2)
        b = SearchStats(distance_computations=3, page_reads=1,
                        predicate_rejections=4)
        a.merge(b)
        assert a.distance_computations == 8
        assert a.page_reads == 3
        assert a.predicate_rejections == 4


class TestTopK:
    def test_returns_k_smallest_sorted(self):
        ids = np.arange(100)
        dists = np.arange(100)[::-1].astype(float)  # id 99 is closest
        hits = topk_from_arrays(ids, dists, 3)
        assert [h.id for h in hits] == [99, 98, 97]
        assert [h.distance for h in hits] == [0.0, 1.0, 2.0]

    def test_k_larger_than_n(self):
        hits = topk_from_arrays([1, 2], np.array([0.2, 0.1]), 10)
        assert [h.id for h in hits] == [2, 1]

    def test_k_zero_or_empty(self):
        assert topk_from_arrays([], np.array([]), 5) == []
        assert topk_from_arrays([1], np.array([1.0]), 0) == []

    def test_matches_full_sort(self, rng):
        dists = rng.standard_normal(500)
        ids = rng.permutation(500)
        hits = topk_from_arrays(ids, dists, 25)
        expected = [int(ids[i]) for i in np.argsort(dists, kind="stable")[:25]]
        assert [h.id for h in hits] == expected
