"""Differential tests for the vectorized search kernels.

The contract under test: :func:`repro.index._graph.beam_search` (bitmap
visited-set, CSR adjacency, batched scoring) is *behavior-preserving*
with respect to :func:`repro.index._graph.beam_search_reference` (the
original scalar implementation) — identical (distance, position) pairs
and identical ``SearchStats`` counts on any adjacency, seed, entry set,
and ``allowed``-mask configuration.  Plus unit coverage for the CSR
packing, the partition-based top-k kernel, and float32/C-contiguous
ingest enforcement.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.collection import VectorCollection
from repro.core.types import SearchStats
from repro.index import (
    HnswIndex,
    KnngIndex,
    NgtIndex,
    NsgIndex,
    NswIndex,
    VamanaIndex,
)
from repro.index._graph import beam_search, beam_search_reference, greedy_walk
from repro.index._kernels import CSRAdjacency, ensure_f32c, topk_indices
from repro.scores import EuclideanScore


def random_adjacency(n, degree, rng):
    """Random directed graph as the builders' list-of-arrays form."""
    adjacency = []
    for v in range(n):
        d = int(rng.integers(0, degree + 1))
        if d == 0:
            adjacency.append(np.empty(0, dtype=np.int64))
        else:
            adjacency.append(rng.integers(0, n, size=d).astype(np.int64))
    return adjacency


def run_both(vectors, adjacency, entries, ef, score, allowed=None, ids=None):
    """(vectorized pairs+stats, reference pairs+stats) on identical input."""
    s_vec, s_ref = SearchStats(), SearchStats()
    csr = CSRAdjacency.from_lists(adjacency)
    got = beam_search(
        vectors[0], vectors, csr, entries, ef, score,
        stats=s_vec, allowed=allowed, ids=ids,
    )
    want = beam_search_reference(
        vectors[0], vectors, adjacency, entries, ef, score,
        stats=s_ref, allowed=allowed, ids=ids,
    )
    return (got, s_vec), (want, s_ref)


class TestCSRAdjacency:
    def test_round_trip_matches_lists(self):
        rng = np.random.default_rng(0)
        adjacency = random_adjacency(40, 6, rng)
        csr = CSRAdjacency.from_lists(adjacency)
        assert len(csr) == len(adjacency)
        assert csr.num_edges == sum(len(a) for a in adjacency)
        for node, expected in enumerate(adjacency):
            np.testing.assert_array_equal(csr[node], expected)
            np.testing.assert_array_equal(csr(node), expected)  # callable form
        np.testing.assert_array_equal(
            csr.degrees(), [len(a) for a in adjacency]
        )
        for back, expected in zip(csr.to_lists(), adjacency):
            np.testing.assert_array_equal(back, expected)

    def test_empty_graph(self):
        csr = CSRAdjacency.from_lists([])
        assert len(csr) == 0 and csr.num_edges == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CSRAdjacency(np.array([0, 3]), np.array([1]))


class TestTopkKernel:
    @given(
        n=st.integers(min_value=1, max_value=300),
        k=st.integers(min_value=0, max_value=40),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_full_stable_argsort(self, n, k, seed):
        rng = np.random.default_rng(seed)
        d = rng.random(n)  # ties have probability ~0
        got = topk_indices(d, k)
        want = np.argsort(d, kind="stable")[:k]
        np.testing.assert_array_equal(got, want)

    def test_with_ties_returns_k_smallest_values(self):
        d = np.array([1.0, 0.0, 1.0, 0.0, 2.0, 1.0])
        got = topk_indices(d, 3)
        assert sorted(d[got]) == [0.0, 0.0, 1.0]
        assert list(d[got]) == sorted(d[got])

    def test_unsorted_selection(self):
        rng = np.random.default_rng(3)
        d = rng.random(100)
        got = topk_indices(d, 10, sort=False)
        assert set(d[got]) == set(np.sort(d)[:10])

    def test_k_exceeds_n(self):
        d = np.array([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(topk_indices(d, 10), [1, 2, 0])


class TestBeamSearchDifferential:
    """Vectorized vs reference traversal on randomized graphs."""

    @given(
        n=st.integers(min_value=1, max_value=80),
        degree=st.integers(min_value=0, max_value=8),
        ef=st.integers(min_value=1, max_value=32),
        seed=st.integers(min_value=0, max_value=1000),
        masked=st.booleans(),
        permute_ids=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_identical_results_and_stats(
        self, n, degree, ef, seed, masked, permute_ids
    ):
        rng = np.random.default_rng(seed)
        vectors = rng.standard_normal((n, 6)).astype(np.float32)
        adjacency = random_adjacency(n, degree, rng)
        entries = list(rng.integers(0, n, size=int(rng.integers(1, 4))))
        entries += entries[:1]  # exercise entry-point dedup
        ids = rng.permutation(n).astype(np.int64) if permute_ids else None
        allowed = None
        if masked:
            allowed = rng.random(n) < 0.6
        (got, s_vec), (want, s_ref) = run_both(
            vectors, adjacency, entries, ef, EuclideanScore(),
            allowed=allowed, ids=ids,
        )
        assert [(round(d, 6), p) for d, p in got] == [
            (round(d, 6), p) for d, p in want
        ]
        assert s_vec.distance_computations == s_ref.distance_computations
        assert s_vec.nodes_visited == s_ref.nodes_visited

    def test_distances_within_tolerance_on_fixed_seed(self):
        rng = np.random.default_rng(1234)
        vectors = rng.standard_normal((200, 16)).astype(np.float32)
        adjacency = random_adjacency(200, 12, rng)
        (got, _), (want, _) = run_both(
            vectors, adjacency, [0, 7], 48, EuclideanScore()
        )
        assert [p for _, p in got] == [p for _, p in want]
        assert np.allclose(
            [d for d, _ in got], [d for d, _ in want], atol=1e-5
        )

    def test_empty_entry_and_zero_ef(self):
        vectors = np.zeros((4, 2), dtype=np.float32)
        adjacency = random_adjacency(4, 2, np.random.default_rng(0))
        assert beam_search(
            vectors[0], vectors, CSRAdjacency.from_lists(adjacency),
            [], 4, EuclideanScore(),
        ) == []
        assert beam_search(
            vectors[0], vectors, CSRAdjacency.from_lists(adjacency),
            [0], 0, EuclideanScore(),
        ) == []

    def test_callable_adjacency_still_supported(self):
        rng = np.random.default_rng(5)
        vectors = rng.standard_normal((30, 4)).astype(np.float32)
        adjacency = random_adjacency(30, 4, rng)
        got = beam_search(
            vectors[0], vectors, lambda v: adjacency[v], [0], 8,
            EuclideanScore(),
        )
        want = beam_search_reference(
            vectors[0], vectors, adjacency, [0], 8, EuclideanScore()
        )
        assert got == want


GRAPH_FACTORIES = [
    ("nsw", lambda: NswIndex(connections=4, ef_construction=16, seed=0)),
    ("knng", lambda: KnngIndex(graph_k=6, seed=0)),
    ("vamana", lambda: VamanaIndex(max_degree=8, beam_width=16, seed=0)),
    ("nsg", lambda: NsgIndex(max_degree=8, candidate_pool=16, knng_k=6, seed=0)),
    ("ngt", lambda: NgtIndex(edge_size=4, max_degree=8, ef_construction=16, seed=0)),
]


@pytest.mark.parametrize(
    "factory", [f for _, f in GRAPH_FACTORIES], ids=[n for n, _ in GRAPH_FACTORIES]
)
class TestGraphIndexDifferential:
    """The vectorized kernel over every graph index's real adjacency."""

    def _build(self, factory, seed=7, n=90, dim=8):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((n, dim)).astype(np.float32)
        return factory().build(data), data

    @pytest.mark.parametrize("query_seed", [0, 1, 2])
    def test_csr_equals_reference_on_index_graph(self, factory, query_seed):
        index, data = self._build(factory)
        rng = np.random.default_rng(query_seed)
        query = rng.standard_normal(data.shape[1]).astype(np.float32)
        entries = index._entry_points(query)
        for allowed in (None, rng.random(data.shape[0]) < 0.5):
            s_vec, s_ref = SearchStats(), SearchStats()
            got = beam_search(
                query, index._vectors, index.csr_adjacency, entries, 24,
                index.score, stats=s_vec, allowed=allowed, ids=index._ids,
            )
            want = beam_search_reference(
                query, index._vectors, index.adjacency, entries, 24,
                index.score, stats=s_ref, allowed=allowed, ids=index._ids,
            )
            assert [p for _, p in got] == [p for _, p in want]
            assert np.allclose(
                [d for d, _ in got], [d for d, _ in want], atol=1e-5
            )
            assert s_vec.distance_computations == s_ref.distance_computations
            assert s_vec.nodes_visited == s_ref.nodes_visited

    def test_search_respects_mask(self, factory):
        index, data = self._build(factory)
        mask = np.zeros(data.shape[0], dtype=bool)
        mask[::3] = True
        hits = index.search(data[1], 5, allowed=mask)
        assert all(h.id % 3 == 0 for h in hits)


class TestHnswDifferential:
    def _build(self, n=120, dim=8, seed=3):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((n, dim)).astype(np.float32)
        return HnswIndex(m=6, ef_construction=24, ef_search=24, seed=0).build(data), data

    def _reference_search(self, index, query, k, ef, allowed=None):
        current = index._entry
        for layer in range(index._top_level, 0, -1):
            current, _, _ = greedy_walk(
                query, index._vectors, index._layer_neighbors(layer),
                current, index.score,
            )
        pairs = beam_search_reference(
            query, index._vectors, index._layer_neighbors(0), [current],
            ef, index.score, allowed=allowed, ids=index._ids,
        )
        return pairs[:k]

    @pytest.mark.parametrize("query_seed", [0, 1, 2])
    def test_bottom_layer_csr_matches_reference(self, query_seed):
        index, data = self._build()
        rng = np.random.default_rng(query_seed)
        query = rng.standard_normal(data.shape[1]).astype(np.float32)
        for allowed in (None, rng.random(data.shape[0]) < 0.5):
            hits = index.search(query, 8, ef_search=24, allowed=allowed)
            want = self._reference_search(index, query, 8, 24, allowed=allowed)
            assert [h.id for h in hits] == [p for _, p in want]
            assert np.allclose(
                [h.distance for h in hits], [d for d, _ in want], atol=1e-5
            )

    def test_add_invalidates_bottom_csr(self):
        index, data = self._build(n=40)
        index.search(data[0], 3)  # materialize the CSR cache
        extra = np.random.default_rng(9).standard_normal((5, data.shape[1]))
        index.add(extra.astype(np.float32), np.arange(40, 45))
        # New nodes must be reachable through the rebuilt packed layer.
        hits = index.search(extra[0].astype(np.float32), 1)
        assert hits and hits[0].id == 40


class TestStatsAccounting:
    def test_shared_stats_predicate_accounting_is_linear(self):
        """predicate_evaluations must charge per-search deltas, not the
        cumulative nodes_visited of a shared stats object (the pre-fix
        behavior over-charged every search after the first)."""
        rng = np.random.default_rng(0)
        data = rng.standard_normal((60, 6)).astype(np.float32)
        index = NswIndex(connections=4, ef_construction=16, seed=0).build(data)
        mask = rng.random(60) < 0.7

        single = SearchStats()
        index.search(data[0], 5, allowed=mask, stats=single)

        shared = SearchStats()
        index.search(data[0], 5, allowed=mask, stats=shared)
        index.search(data[0], 5, allowed=mask, stats=shared)
        assert shared.predicate_evaluations == 2 * single.predicate_evaluations
        assert shared.nodes_visited == 2 * single.nodes_visited
        assert shared.distance_computations == 2 * single.distance_computations

    def test_batched_and_scalar_kernels_charge_identically(self):
        """The vectorized kernel used by the batched path must charge the
        counts the scalar reference would for the same traversal."""
        rng = np.random.default_rng(1)
        vectors = rng.standard_normal((80, 6)).astype(np.float32)
        adjacency = random_adjacency(80, 6, rng)
        csr = CSRAdjacency.from_lists(adjacency)
        for entries in ([0], [0, 3, 3, 9]):
            s_vec, s_ref = SearchStats(), SearchStats()
            beam_search(
                vectors[2], vectors, csr, entries, 16,
                EuclideanScore(), stats=s_vec,
            )
            beam_search_reference(
                vectors[2], vectors, adjacency, entries, 16,
                EuclideanScore(), stats=s_ref,
            )
            assert s_vec.distance_computations == s_ref.distance_computations
            assert s_vec.nodes_visited == s_ref.nodes_visited


class TestLayoutEnforcement:
    def test_collection_ingest_is_f32_contiguous(self):
        coll = VectorCollection(dim=4)
        sloppy = np.asfortranarray(
            np.random.default_rng(0).standard_normal((10, 4))
        )  # float64, F-order
        coll.insert_many(sloppy)
        assert coll.vectors.dtype == np.float32
        assert coll.vectors.flags["C_CONTIGUOUS"]

    def test_index_build_is_f32_contiguous(self):
        data = np.asfortranarray(
            np.random.default_rng(1).standard_normal((30, 4))
        )
        index = NswIndex(connections=3, ef_construction=8).build(data)
        assert index._vectors.dtype == np.float32
        assert index._vectors.flags["C_CONTIGUOUS"]

    def test_ensure_f32c_no_copy_when_already_conforming(self):
        good = np.zeros((5, 3), dtype=np.float32)
        assert ensure_f32c(good) is good
        assert ensure_f32c(good.astype(np.float64)).dtype == np.float32
