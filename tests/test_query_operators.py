"""Tests for query types and basic physical operators."""

import numpy as np
import pytest

from repro.core.errors import QueryError
from repro.core.operators import (
    IndexScan,
    TableScan,
    batched_table_scan,
    similarity_projection,
    top_k,
)
from repro.core.query import (
    BatchQuery,
    MultiVectorQuery,
    RangeQuery,
    SearchQuery,
    satisfies_ck,
)
from repro.core.types import SearchStats
from repro.hybrid.predicates import Field
from repro.scores import EuclideanScore


class TestQueryValidation:
    def test_search_query_validates(self):
        with pytest.raises(QueryError):
            SearchQuery(np.zeros(4), k=0)
        with pytest.raises(QueryError):
            SearchQuery(np.zeros(4), k=5, c=-0.1)

    def test_hybrid_flag(self):
        plain = SearchQuery(np.zeros(4), k=1)
        hybrid = SearchQuery(np.zeros(4), k=1, predicate=Field("x") == 1)
        assert not plain.is_hybrid
        assert hybrid.is_hybrid

    def test_exactness_flag(self):
        assert SearchQuery(np.zeros(4), k=1).is_exact
        assert not SearchQuery(np.zeros(4), k=1, c=0.5).is_exact

    def test_range_query_validates(self):
        with pytest.raises(QueryError):
            RangeQuery(np.zeros(4), radius=-1.0)

    def test_batch_explodes(self):
        batch = BatchQuery(np.zeros((3, 4)), k=2, c=0.1)
        singles = batch.queries()
        assert len(singles) == 3
        assert all(q.k == 2 and q.c == 0.1 for q in singles)
        assert len(batch) == 3

    def test_multivector_validates(self):
        with pytest.raises(QueryError):
            MultiVectorQuery(np.zeros((0, 4)).reshape(0, 4), k=1)
        with pytest.raises(QueryError):
            MultiVectorQuery(np.zeros((2, 4)), k=1, weights=[1.0])

    def test_satisfies_ck(self):
        # true kth distance 1.0; c=0.5 allows up to 1.5
        assert satisfies_ck([0.9, 1.4], 1.0, 0.5)
        assert not satisfies_ck([0.9, 1.6], 1.0, 0.5)
        assert not satisfies_ck([], 1.0, 0.5)
        assert satisfies_ck([1.0], 1.0, 0.0)


class TestOperators:
    def test_similarity_projection_counts(self, small_data):
        stats = SearchStats()
        d = similarity_projection(
            small_data[0], small_data, EuclideanScore(), stats
        )
        assert d.shape == (300,)
        assert stats.distance_computations == 300

    def test_top_k_operator(self):
        hits = top_k(np.array([7, 8, 9]), np.array([0.3, 0.1, 0.2]), 2)
        assert [h.id for h in hits] == [8, 9]

    def test_table_scan_exact(self, small_data, flat_oracle, small_queries):
        scan = TableScan(small_data, np.arange(300), EuclideanScore())
        got = scan.run(small_queries[0], 10)
        expected = flat_oracle.search(small_queries[0], 10)
        assert [h.id for h in got] == [h.id for h in expected]

    def test_table_scan_mask(self, small_data, small_queries):
        mask = np.zeros(300, dtype=bool)
        mask[:50] = True
        scan = TableScan(small_data, np.arange(300), EuclideanScore())
        stats = SearchStats()
        hits = scan.run(small_queries[0], 10, mask=mask, stats=stats)
        assert all(h.id < 50 for h in hits)
        assert stats.predicate_rejections == 250
        assert stats.distance_computations == 50

    def test_table_scan_empty_mask(self, small_data, small_queries):
        scan = TableScan(small_data, np.arange(300), EuclideanScore())
        assert scan.run(small_queries[0], 5, mask=np.zeros(300, bool)) == []

    def test_index_scan_delegates(self, flat_oracle, small_queries):
        scan = IndexScan(flat_oracle)
        hits = scan.run(small_queries[0], 5)
        assert len(hits) == 5

    def test_batched_scan_matches_singles(self, small_data, small_queries,
                                          flat_oracle):
        per_query = batched_table_scan(
            small_queries, small_data, np.arange(300), EuclideanScore(), 10
        )
        for qi, hits in enumerate(per_query):
            expected = flat_oracle.search(small_queries[qi], 10)
            assert [h.id for h in hits] == [h.id for h in expected]

    def test_batched_scan_mask(self, small_data, small_queries):
        mask = np.zeros(300, dtype=bool)
        mask[100:] = True
        per_query = batched_table_scan(
            small_queries[:3], small_data, np.arange(300), EuclideanScore(), 5,
            mask=mask,
        )
        assert all(h.id >= 100 for hits in per_query for h in hits)
