"""Tests for the extension quantizers: residual and anisotropic."""

import numpy as np
import pytest

from repro.core.errors import IndexNotBuiltError
from repro.quantization import (
    AnisotropicQuantizer,
    ProductQuantizer,
    ResidualQuantizer,
    kmeans,
)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(5)
    centers = rng.standard_normal((16, 24))
    return (centers[rng.integers(16, size=500)]
            + 0.4 * rng.standard_normal((500, 24)))


class TestResidualQuantizer:
    def test_error_decreases_with_levels(self, data):
        errors = [
            ResidualQuantizer(levels=levels, ks=32, seed=0)
            .train(data)
            .quantization_error(data)
            for levels in (1, 2, 4)
        ]
        assert errors[0] > errors[1] > errors[2]

    def test_decode_is_sum_of_codewords(self, data):
        rq = ResidualQuantizer(levels=3, ks=16, seed=0).train(data)
        codes = rq.encode(data[:5])
        manual = sum(
            rq._codebooks[level][codes[:, level]] for level in range(3)
        )
        np.testing.assert_allclose(rq.decode(codes), manual, rtol=1e-6)

    def test_adc_matches_reconstruction_distance(self, data):
        rq = ResidualQuantizer(levels=3, ks=16, seed=0).train(data)
        codes = rq.encode(data[:40])
        q = data[7]
        adc = rq.adc_distances(q, codes)
        recon = rq.decode(codes).astype(np.float64)
        exact = np.sum((recon - q) ** 2, axis=1)
        np.testing.assert_allclose(adc, exact, rtol=1e-5, atol=1e-5)

    def test_adc_with_precomputed_norms(self, data):
        rq = ResidualQuantizer(levels=2, ks=16, seed=0).train(data)
        codes = rq.encode(data[:20])
        norms = rq.reconstruction_norms_sq(codes)
        a = rq.adc_distances(data[0], codes, norms_sq=norms)
        b = rq.adc_distances(data[0], codes)
        np.testing.assert_allclose(a, b)

    def test_competitive_with_pq_at_same_budget(self, data):
        """4 levels x 256 = 4 bytes, same as PQ m=4: RQ should be in the
        same error ballpark (often better on full-space structure)."""
        rq_err = ResidualQuantizer(levels=4, ks=64, seed=0).train(
            data
        ).quantization_error(data)
        pq_err = ProductQuantizer(m=4, ks=64, seed=0).train(
            data
        ).quantization_error(data)
        assert rq_err < pq_err * 1.5

    def test_code_size(self):
        assert ResidualQuantizer(levels=5).code_size_bytes() == 5

    def test_validation(self, data):
        with pytest.raises(ValueError):
            ResidualQuantizer(levels=0)
        with pytest.raises(ValueError):
            ResidualQuantizer(ks=300)
        with pytest.raises(IndexNotBuiltError):
            ResidualQuantizer().encode(data[:1])


class TestAnisotropicQuantizer:
    def test_eta_one_equals_kmeans_assignment(self, data):
        aq = AnisotropicQuantizer(num_centroids=8, eta=1.0, iterations=0,
                                  seed=0).train(data)
        km = kmeans(data, 8, seed=0)
        # With eta=1 and zero refinement iterations the codebook is the
        # k-means warm start.
        np.testing.assert_allclose(aq.centroids, km.centroids)

    def test_anisotropic_loss_lower_than_kmeans_codebook(self, data):
        aniso = AnisotropicQuantizer(num_centroids=16, eta=4.0, iterations=8,
                                     seed=0).train(data)
        plain = AnisotropicQuantizer(num_centroids=16, eta=4.0, iterations=0,
                                     seed=0).train(data)
        # Training under the anisotropic objective must reduce it vs the
        # k-means warm start evaluated under the same objective.
        assert aniso.score_aware_error(data) <= plain.score_aware_error(data) + 1e-9

    def test_mips_recall_beats_kmeans(self, data):
        """The ScaNN claim: anisotropic codebooks rank better for MIPS
        at equal size."""
        rng = np.random.default_rng(0)
        queries = rng.standard_normal((30, data.shape[1]))
        true_scores = queries @ data.T
        true_top = np.argsort(-true_scores, axis=1)[:, :10]

        def mips_recall(eta, iterations):
            aq = AnisotropicQuantizer(
                num_centroids=64, eta=eta, iterations=iterations, seed=0
            ).train(data)
            codes = aq.encode(data)
            hits = 0
            for qi, q in enumerate(queries):
                approx = aq.mips_scores(q, codes)
                got = set(np.argsort(-approx)[:10].tolist())
                hits += len(got & set(true_top[qi].tolist()))
            return hits / (10 * len(queries))

        plain = mips_recall(eta=1.0, iterations=0)  # k-means codebook
        aniso = mips_recall(eta=6.0, iterations=8)
        assert aniso >= plain - 0.02

    def test_encode_decode_shapes(self, data):
        aq = AnisotropicQuantizer(num_centroids=8, iterations=2, seed=0).train(data)
        codes = aq.encode(data[:10])
        assert codes.shape == (10,)
        assert aq.decode(codes).shape == (10, data.shape[1])

    def test_validation(self, data):
        with pytest.raises(ValueError):
            AnisotropicQuantizer(num_centroids=0)
        with pytest.raises(ValueError):
            AnisotropicQuantizer(eta=0.5)
        with pytest.raises(IndexNotBuiltError):
            AnisotropicQuantizer().encode(data[:1])
