"""Tests for persistence, multi-score querying, and the empirical cost model."""

import numpy as np
import pytest

from repro.core.cost import EmpiricalCostModel
from repro.core.database import VectorDatabase
from repro.core.errors import StorageError
from repro.core.types import SearchStats
from repro.storage import (
    load_collection,
    load_database,
    save_collection,
    save_database,
)


@pytest.fixture
def db(hybrid_dataset):
    db = VectorDatabase(dim=hybrid_dataset.dim)
    db.insert_many(hybrid_dataset.train[:200], hybrid_dataset.attributes[:200])
    db.create_index("g", "hnsw", m=8, ef_construction=48, seed=0)
    return db


class TestPersistence:
    def test_collection_roundtrip(self, db, tmp_path):
        save_collection(db.collection, tmp_path)
        restored = load_collection(tmp_path)
        assert len(restored) == len(db.collection)
        np.testing.assert_array_equal(restored.vectors, db.collection.vectors)
        assert restored.attributes(7) == db.collection.attributes(7)

    def test_tombstones_survive(self, db, tmp_path):
        db.delete(3)
        save_collection(db.collection, tmp_path)
        restored = load_collection(tmp_path)
        assert not restored.alive[3]
        assert len(restored) == len(db.collection)

    def test_database_roundtrip_identical_results(self, db, tmp_path,
                                                  hybrid_dataset):
        save_database(db, tmp_path)
        restored = load_database(tmp_path)
        q = hybrid_dataset.queries[0]
        assert restored.search(q, k=10).ids == db.search(q, k=10).ids
        assert set(restored.indexes) == {"g"}
        assert restored.score.name == db.score.name

    def test_index_kwargs_restored(self, db, tmp_path):
        save_database(db, tmp_path)
        restored = load_database(tmp_path)
        assert restored.indexes["g"].m == 8
        assert restored.indexes["g"].seed == 0

    def test_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(StorageError):
            load_collection(tmp_path / "nope")
        with pytest.raises(StorageError):
            load_database(tmp_path / "nope")

    def test_attributeless_collection_roundtrip(self, tmp_path, rng):
        from repro.core.collection import VectorCollection

        coll = VectorCollection(4)
        coll.insert_many(rng.standard_normal((5, 4)).astype(np.float32))
        save_collection(coll, tmp_path)
        restored = load_collection(tmp_path)
        assert len(restored) == 5
        assert restored.attribute_names == ()


class TestMultiScore:
    def test_returns_all_requested_scores(self, db, hybrid_dataset):
        out = db.multi_score_search(
            hybrid_dataset.queries[0], k=5, scores=["l2", "cosine"]
        )
        assert set(out) == {"l2", "cosine"}
        assert all(len(r) == 5 for r in out.values())

    def test_results_differ_between_scores(self, db, hybrid_dataset):
        out = db.multi_score_search(hybrid_dataset.queries[0], k=10)
        assert out["l2"].ids != out["ip"].ids

    def test_each_score_result_is_exact(self, db, hybrid_dataset):
        from repro.index.flat import FlatIndex
        from repro.scores import get_score

        q = hybrid_dataset.queries[1]
        out = db.multi_score_search(q, k=5, scores=["cosine"])
        live = np.flatnonzero(db.collection.alive)
        oracle = FlatIndex(get_score("cosine")).build(
            db.collection.vectors[live], ids=live.astype(np.int64)
        )
        assert out["cosine"].ids == [h.id for h in oracle.search(q, 5)]


class TestEmpiricalCostModel:
    def _synthetic_samples(self, model, n=60, noise=0.0, seed=0):
        rng = np.random.default_rng(seed)
        true = (1e-7, 3e-9, 5e-5)
        for _ in range(n):
            stats = SearchStats(
                distance_computations=int(rng.integers(100, 10_000)),
                predicate_evaluations=int(rng.integers(0, 5_000)),
                page_reads=int(rng.integers(0, 50)),
            )
            latency = (
                true[0] * stats.distance_computations
                + true[1] * stats.predicate_evaluations
                + true[2] * stats.page_reads
                + abs(rng.normal(0, noise))
            )
            model.observe(stats, latency)
        return true

    def test_recovers_true_weights(self):
        model = EmpiricalCostModel()
        true = self._synthetic_samples(model)
        model.fit()
        assert model.weights.distance == pytest.approx(true[0], rel=0.1)
        assert model.weights.page_read == pytest.approx(true[2], rel=0.1)

    def test_prediction_accuracy(self):
        model = EmpiricalCostModel()
        self._synthetic_samples(model, noise=1e-8)
        model.fit()
        stats = SearchStats(distance_computations=5000, page_reads=10)
        predicted = model.predict_latency(stats)
        expected = 1e-7 * 5000 + 5e-5 * 10
        assert predicted == pytest.approx(expected, rel=0.15)

    def test_weights_nonnegative(self):
        model = EmpiricalCostModel()
        self._synthetic_samples(model, noise=1e-6)  # heavy noise
        model.fit()
        assert model.weights.distance >= 0
        assert model.weights.predicate >= 0
        assert model.weights.page_read >= 0

    def test_needs_observations(self):
        with pytest.raises(ValueError):
            EmpiricalCostModel().fit()

    def test_fits_real_executions(self, db, hybrid_dataset):
        """End to end: observe real plan executions, fit, sanity-check."""
        import time

        model = EmpiricalCostModel()
        for q in hybrid_dataset.queries:
            start = time.perf_counter()
            result = db.search(q, k=10)
            model.observe(result.stats, time.perf_counter() - start)
            start = time.perf_counter()
            from repro.core.planner import QueryPlan

            result = db.search(q, k=10, plan=QueryPlan("brute_force"))
            model.observe(result.stats, time.perf_counter() - start)
        model.fit()
        assert model.fitted
        assert model.residual_rms is not None
