"""Shared fixtures: small deterministic workloads for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.datasets import gaussian_mixture, hybrid_workload
from repro.index.flat import FlatIndex
from repro.scores import EuclideanScore


@pytest.fixture(scope="session")
def small_dataset():
    """300 x 12 clustered vectors + 10 queries."""
    return gaussian_mixture(n=300, dim=12, num_clusters=6, num_queries=10, seed=7)


@pytest.fixture(scope="session")
def small_data(small_dataset):
    return small_dataset.train


@pytest.fixture(scope="session")
def small_queries(small_dataset):
    return small_dataset.queries


@pytest.fixture(scope="session")
def ground_truth_10(small_dataset):
    """(q, 10) exact neighbor positions for the small dataset under L2."""
    from repro.bench.metrics import exact_ground_truth

    return exact_ground_truth(
        small_dataset.train, small_dataset.queries, 10, EuclideanScore()
    )


@pytest.fixture(scope="session")
def hybrid_dataset():
    """400 x 12 clustered vectors with category/price/rating attributes."""
    return hybrid_workload(n=400, dim=12, num_queries=8, num_categories=5, seed=3)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def flat_oracle(small_data):
    return FlatIndex(EuclideanScore()).build(small_data)


def pytest_addoption(parser):
    parser.addoption(
        "--runslow", action="store_true", default=False,
        help="run tests marked slow",
    )


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running test")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip = pytest.mark.skip(reason="needs --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip)
