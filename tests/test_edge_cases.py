"""Edge-case coverage across modules: the paths regressions hide in."""

import numpy as np
import pytest

from repro.core.batched import batched_graph_search
from repro.core.incremental import IncrementalSearcher
from repro.index import (
    FlatIndex,
    HnswIndex,
    IvfFlatIndex,
    KdTreeIndex,
    available_indexes,
    index_families,
    make_index,
)
from repro.scores import EuclideanScore


class TestTinyCollections:
    """Indexes must behave on 1- and 2-item collections."""

    @pytest.mark.parametrize("name", ["flat", "hnsw", "nsw", "ivf_flat",
                                      "kdtree", "annoy", "lsh", "ngt"])
    def test_single_item(self, name):
        data = np.ones((1, 4), dtype=np.float32)
        index = make_index(name, seed=0) if name != "flat" else make_index(name)
        index.build(data)
        hits = index.search(np.ones(4, dtype=np.float32), 5)
        assert [h.id for h in hits] == [0]

    @pytest.mark.parametrize("name", ["flat", "hnsw", "kdtree", "ivf_flat"])
    def test_two_items(self, name):
        data = np.array([[0, 0], [10, 10]], dtype=np.float32)
        index = make_index(name)
        index.build(data)
        hits = index.search(np.array([1, 1], dtype=np.float32), 2)
        assert hits[0].id == 0
        assert len(hits) == 2

    def test_duplicate_vectors(self):
        data = np.ones((20, 3), dtype=np.float32)
        index = HnswIndex(m=4, seed=0).build(data)
        hits = index.search(np.ones(3, dtype=np.float32), 5)
        assert len(hits) == 5
        assert all(h.distance == pytest.approx(0.0, abs=1e-6) for h in hits)


class TestFlatAdd:
    def test_add_then_search(self, rng):
        data = rng.standard_normal((10, 4)).astype(np.float32)
        index = FlatIndex(EuclideanScore()).build(data)
        extra = rng.standard_normal((3, 4)).astype(np.float32)
        index.add(extra, np.array([100, 101, 102]))
        hits = index.search(extra[1], 1)
        assert hits[0].id == 101
        assert len(index) == 13


class TestBatchedCustomIds:
    def test_batched_search_with_noncontiguous_ids(self, small_data,
                                                   small_queries):
        ids = np.arange(300, dtype=np.int64) * 3 + 7
        index = HnswIndex(m=8, ef_construction=48, seed=0).build(
            small_data, ids=ids
        )
        batched = batched_graph_search(index, small_queries[:4], 5)
        for hits in batched:
            assert all((h.id - 7) % 3 == 0 for h in hits)
            assert len(hits) == 5


class TestIncrementalSlack:
    def test_slack_improves_ordering(self, small_data, small_queries,
                                     flat_oracle):
        index = HnswIndex(m=8, ef_construction=48, seed=0).build(small_data)
        q = small_queries[0]
        exact = [h.id for h in flat_oracle.search(q, 20)]
        loose = IncrementalSearcher(index, q, slack=1.0)
        tight = IncrementalSearcher(index, q, slack=1.5)
        loose_ids = [h.id for h in loose.next_batch(20)]
        tight_ids = [h.id for h in tight.next_batch(20)]

        def kendall_agreement(got):
            pos = {e: i for i, e in enumerate(exact)}
            ranked = [pos[g] for g in got if g in pos]
            inversions = sum(
                1
                for i in range(len(ranked))
                for j in range(i + 1, len(ranked))
                if ranked[i] > ranked[j]
            )
            return inversions

        assert kendall_agreement(tight_ids) <= kendall_agreement(loose_ids) + 2


class TestHnswKnobs:
    def test_custom_level_multiplier(self, small_data):
        flat_ish = HnswIndex(m=8, level_multiplier=0.01, seed=0).build(small_data)
        assert flat_ish.num_layers <= 2  # nearly no upper layers

    def test_level_multiplier_default_from_m(self):
        import math

        index = HnswIndex(m=10)
        assert index.level_multiplier == pytest.approx(1 / math.log(10))


class TestRegistryConsistency:
    def test_every_registered_index_instantiable(self):
        for name in available_indexes():
            index = make_index(name)
            assert index is not None

    def test_families_cover_all_names(self):
        families = index_families()
        listed = {name for names in families.values() for name in names}
        assert listed == set(available_indexes())

    def test_figure1_index_names_present(self):
        """Every index named in the paper's Figure 1 exists here."""
        figure1 = {"lsh", "ivf_flat", "kdtree", "rp_tree", "knng",
                   "nndescent",  # KGraph; EFANNA = init="forest"
                   "nsg", "randkd_forest",  # FLANN
                   "annoy", "fanng", "hnsw", "ngt"}
        assert figure1 <= set(available_indexes())


class TestIvfEdge:
    def test_nprobe_zero_clamped(self, small_data, small_queries):
        index = IvfFlatIndex(nlist=8, seed=0).build(small_data)
        hits = index.search(small_queries[0], 5, nprobe=0)
        assert len(hits) == 5  # clamped to 1 probe

    def test_nprobe_exceeds_nlist(self, small_data, small_queries):
        index = IvfFlatIndex(nlist=8, seed=0).build(small_data)
        hits = index.search(small_queries[0], 5, nprobe=1000)
        assert len(hits) == 5


class TestKdTreeEdge:
    def test_all_identical_points(self):
        data = np.full((30, 4), 2.0, dtype=np.float32)
        index = KdTreeIndex(leaf_size=8).build(data)
        hits = index.search(np.full(4, 2.0, dtype=np.float32), 3)
        assert len(hits) == 3

    def test_one_dimensional_variation(self, rng):
        data = np.zeros((50, 4), dtype=np.float32)
        data[:, 2] = rng.standard_normal(50)
        index = KdTreeIndex(leaf_size=4).build(data)
        flat = FlatIndex(EuclideanScore()).build(data)
        q = data[7] + 0.01
        assert [h.id for h in index.search(q, 5)] == [
            h.id for h in flat.search(q, 5)
        ]
