"""Tests for the vector collection."""

import numpy as np
import pytest

from repro.core.collection import VectorCollection
from repro.core.errors import CollectionError
from repro.hybrid.predicates import Field


@pytest.fixture
def coll(rng):
    c = VectorCollection(dim=4)
    vectors = rng.standard_normal((10, 4)).astype(np.float32)
    attrs = [{"cat": i % 3, "price": float(i)} for i in range(10)]
    c.insert_many(vectors, attrs)
    return c


class TestInsert:
    def test_dense_ids(self, coll):
        assert len(coll) == 10
        new_id = coll.insert(np.zeros(4), {"cat": 1, "price": 2.0})
        assert new_id == 10

    def test_schema_enforced(self, coll):
        with pytest.raises(CollectionError, match="schema"):
            coll.insert(np.zeros(4), {"cat": 1})  # missing price
        with pytest.raises(CollectionError, match="schema"):
            coll.insert(np.zeros(4), {"cat": 1, "price": 1.0, "extra": 2})

    def test_dim_enforced(self, coll):
        from repro.core.errors import DimensionMismatchError

        with pytest.raises(DimensionMismatchError):
            coll.insert(np.zeros(5), {"cat": 1, "price": 1.0})

    def test_attribute_count_mismatch(self):
        c = VectorCollection(dim=2)
        with pytest.raises(CollectionError):
            c.insert_many(np.zeros((3, 2)), [{"a": 1}] * 2)

    def test_attributeless_collection(self):
        c = VectorCollection(dim=2)
        ids = c.insert_many(np.zeros((3, 2)))
        assert ids == [0, 1, 2]
        assert c.attribute_names == ()

    def test_invalid_dim(self):
        with pytest.raises(CollectionError):
            VectorCollection(dim=0)


class TestReads:
    def test_vector_roundtrip(self, coll, rng):
        v = rng.standard_normal(4).astype(np.float32)
        item = coll.insert(v, {"cat": 0, "price": 0.0})
        np.testing.assert_array_equal(coll.vector(item), v)

    def test_attributes_roundtrip(self, coll):
        assert coll.attributes(4) == {"cat": 1, "price": 4.0}

    def test_columns_are_arrays(self, coll):
        cols = coll.columns
        assert cols["cat"].shape == (10,)
        assert cols["price"].dtype.kind == "f"

    def test_columns_cache_invalidated_on_insert(self, coll):
        _ = coll.columns
        coll.insert(np.zeros(4), {"cat": 0, "price": 99.0})
        assert coll.columns["price"].shape == (11,)

    def test_iter_yields_live_ids(self, coll):
        coll.delete(3)
        assert 3 not in list(coll)
        assert len(list(coll)) == 9


class TestDelete:
    def test_tombstone(self, coll):
        coll.delete(2)
        assert len(coll) == 9
        assert coll.capacity == 10
        with pytest.raises(CollectionError):
            coll.vector(2)

    def test_double_delete_rejected(self, coll):
        coll.delete(2)
        with pytest.raises(CollectionError):
            coll.delete(2)

    def test_out_of_range(self, coll):
        with pytest.raises(CollectionError):
            coll.delete(99)

    def test_compact_redenses(self, coll):
        coll.delete(0)
        coll.delete(5)
        fresh = coll.compact()
        assert len(fresh) == 8
        assert fresh.capacity == 8
        # Attribute alignment preserved.
        assert fresh.attributes(0) == coll.attributes(1)


class TestPredicateMask:
    def test_mask_matches_predicate(self, coll):
        mask = coll.predicate_mask(Field("cat") == 0)
        expected = [i % 3 == 0 for i in range(10)]
        assert mask.tolist() == expected

    def test_mask_excludes_deleted(self, coll):
        coll.delete(0)
        mask = coll.predicate_mask(Field("cat") == 0)
        assert not mask[0]

    def test_none_predicate_is_liveness(self, coll):
        coll.delete(1)
        mask = coll.predicate_mask(None)
        assert mask.sum() == 9

    def test_selectivity(self, coll):
        assert coll.selectivity(Field("cat") == 0) == pytest.approx(0.4)
        assert coll.selectivity(None) == 1.0

    def test_selectivity_accounts_for_deletes(self, coll):
        coll.delete(0)  # cat==0 row
        assert coll.selectivity(Field("cat") == 0) == pytest.approx(3 / 9)

    def test_update_vector(self, coll):
        coll.update_vector(1, np.ones(4))
        np.testing.assert_array_equal(coll.vector(1), np.ones(4, dtype=np.float32))
