"""Contract tests every index must satisfy, parametrized over the zoo.

These are the invariants the rest of the system (executor, hybrid
operators, distributed nodes) relies on:

* results are sorted ascending by distance, at most k of them;
* an ``allowed`` mask is never violated (block-first scan correctness);
* external ids round-trip;
* recall on an easy clustered workload clears a per-family floor;
* unknown search params raise TypeError;
* searching an unbuilt index raises IndexNotBuiltError.
"""

import numpy as np
import pytest

from repro.core.errors import IndexNotBuiltError
from repro.core.types import SearchStats
from repro.index import available_indexes, make_index

# Constructor overrides that keep slow builders fast at n=300.
FAST_KWARGS = {
    "lsh": {"num_tables": 12, "hashes_per_table": 4},
    "ivf_flat": {"nlist": 12, "nprobe": 4},
    "ivf_sq": {"nlist": 12, "nprobe": 4},
    "ivf_adc": {"nlist": 12, "nprobe": 6, "m": 4, "ks": 32, "rerank": 40},
    "pq": {"m": 4, "ks": 32, "rerank": 40},
    "opq": {"m": 4, "ks": 32, "rerank": 40, "opq_iterations": 2},
    "sq": {"rerank": 40},
    "spann": {"num_postings": 12, "nprobe": 4},
    "nndescent": {"graph_k": 10, "max_iterations": 4},
    "nsg": {"max_degree": 10, "knng_k": 10},
    "vamana": {"max_degree": 10, "beam_width": 32},
    "fanng": {"num_trials": 600, "init_knng_k": 6},
    "diskann": {"max_degree": 10, "build_beam_width": 32, "pq_m": 4, "pq_ks": 32},
    "hnsw": {"m": 8, "ef_construction": 48},
    "filtered_hnsw": {"m": 8, "ef_construction": 48, "label_k": 4},
    "nsw": {"connections": 8},
    "ngt": {"edge_size": 8, "ef_construction": 32},
    "knng": {"graph_k": 10},
    "annoy": {"num_trees": 6, "search_k": 48},
    "rp_tree": {"num_trees": 4, "max_leaves": 48},
    "randkd_forest": {"num_trees": 4, "max_leaves": 48},
    "pca_tree": {"max_leaves": 48},
    "kdtree": {},
    "flat": {},
    "spectral_hash": {"nbits": 24, "rerank": 60},
    "itq_hash": {"nbits": 24, "rerank": 60},
}

# Minimum acceptable recall@10 on the easy clustered workload.  Table
# indexes without tuning are allowed to be weak; graph indexes must be
# strong.
RECALL_FLOOR = {
    "flat": 1.0,
    "kdtree": 1.0,  # exact mode
    "lsh": 0.15,
    "spectral_hash": 0.5,
    "itq_hash": 0.5,
    "spann": 0.5,
    "ivf_adc": 0.6,
    "pq": 0.6,
    "opq": 0.6,
    "sq": 0.9,
    "ivf_sq": 0.5,
    "ivf_flat": 0.5,
    "annoy": 0.6,
    "rp_tree": 0.6,
    "randkd_forest": 0.6,
    "pca_tree": 0.6,
    "knng": 0.8,
    "nndescent": 0.8,
    "nsw": 0.8,
    "ngt": 0.8,
    "hnsw": 0.9,
    "filtered_hnsw": 0.9,
    "nsg": 0.9,
    "vamana": 0.9,
    "fanng": 0.7,
    "diskann": 0.8,
}

ALL = sorted(available_indexes())


def build(name, data, score="l2", ids=None):
    index = make_index(name, score=score, **FAST_KWARGS.get(name, {}))
    return index.build(data, ids=ids)


@pytest.fixture(scope="module")
def built_indexes(small_data):
    return {name: build(name, small_data) for name in ALL}


@pytest.mark.parametrize("name", ALL)
class TestIndexContract:
    def test_results_sorted_and_bounded(self, name, built_indexes, small_queries):
        hits = built_indexes[name].search(small_queries[0], 10)
        assert len(hits) <= 10
        distances = [h.distance for h in hits]
        assert distances == sorted(distances)

    def test_no_duplicate_ids(self, name, built_indexes, small_queries):
        hits = built_indexes[name].search(small_queries[0], 10)
        ids = [h.id for h in hits]
        assert len(ids) == len(set(ids))

    def test_recall_floor(self, name, built_indexes, small_queries, ground_truth_10):
        index = built_indexes[name]
        recalls = []
        for qi, q in enumerate(small_queries):
            hits = index.search(q, 10)
            truth = set(int(t) for t in ground_truth_10[qi])
            recalls.append(len(truth.intersection(h.id for h in hits)) / 10)
        assert float(np.mean(recalls)) >= RECALL_FLOOR[name], (
            f"{name} recall {np.mean(recalls):.2f} below floor"
        )

    def test_allowed_mask_respected(self, name, built_indexes, small_queries,
                                    small_data):
        index = built_indexes[name]
        allowed = np.zeros(small_data.shape[0], dtype=bool)
        allowed[::3] = True
        hits = index.search(small_queries[1], 10, allowed=allowed)
        assert all(h.id % 3 == 0 for h in hits)

    def test_all_blocked_returns_empty(self, name, built_indexes, small_queries,
                                       small_data):
        allowed = np.zeros(small_data.shape[0], dtype=bool)
        hits = built_indexes[name].search(small_queries[0], 5, allowed=allowed)
        assert hits == []

    def test_k_one(self, name, built_indexes, small_queries):
        hits = built_indexes[name].search(small_queries[2], 1)
        assert len(hits) == 1

    def test_k_zero(self, name, built_indexes, small_queries):
        assert built_indexes[name].search(small_queries[0], 0) == []

    def test_member_query_finds_itself(self, name, built_indexes, small_data):
        # Query with a database vector: it must appear in the top few.
        hits = built_indexes[name].search(small_data[42], 10)
        assert 42 in [h.id for h in hits][:5], f"{name} missed the member vector"

    def test_stats_populated(self, name, built_indexes, small_queries):
        stats = SearchStats()
        built_indexes[name].search(small_queries[0], 5, stats=stats)
        work = (
            stats.distance_computations
            + stats.candidates_examined
            + stats.nodes_visited
            + stats.page_reads
        )
        assert work > 0

    def test_unknown_param_rejected(self, name, built_indexes, small_queries):
        with pytest.raises(TypeError):
            built_indexes[name].search(small_queries[0], 5, bogus_param=1)

    def test_unbuilt_search_raises(self, name):
        index = make_index(name, **FAST_KWARGS.get(name, {}))
        with pytest.raises(IndexNotBuiltError):
            index.search(np.zeros(12, dtype=np.float32), 5)

    def test_custom_external_ids(self, name, small_data, small_queries):
        ids = np.arange(small_data.shape[0], dtype=np.int64) * 7 + 1000
        index = make_index(name, **FAST_KWARGS.get(name, {}))
        # Masks index by external id; make them valid array indexes.
        index.build(small_data, ids=ids)
        hits = index.search(small_queries[0], 5)
        assert all((h.id - 1000) % 7 == 0 for h in hits)

    def test_dim_mismatch_rejected(self, name, built_indexes):
        from repro.core.errors import DimensionMismatchError

        with pytest.raises(DimensionMismatchError):
            built_indexes[name].search(np.zeros(5, dtype=np.float32), 3)

    def test_repr_mentions_state(self, name, built_indexes):
        text = repr(built_indexes[name])
        assert "n=300" in text

    def test_len(self, name, built_indexes):
        assert len(built_indexes[name]) == 300


@pytest.mark.parametrize("name", [n for n in ALL if n not in ("flat",)])
def test_range_search_fallback(name, built_indexes, small_queries):
    """Generic range search returns only hits within the radius."""
    index = built_indexes[name]
    hits = index.range_search(small_queries[0], radius=2.0)
    assert all(h.distance <= 2.0 for h in hits)


def test_memory_bytes_nonnegative(built_indexes):
    for name, index in built_indexes.items():
        assert index.memory_bytes() >= 0, name


def test_build_seconds_recorded(built_indexes):
    for name, index in built_indexes.items():
        assert index.build_seconds >= 0.0
