"""Behavioral tests specific to graph-based indexes (§2.2)."""

import numpy as np
import pytest

from repro.index import (
    FanngIndex,
    HnswIndex,
    KnngIndex,
    NnDescentIndex,
    NsgIndex,
    NswIndex,
    VamanaIndex,
    brute_force_knng,
    knng_recall,
    nn_descent,
)
from repro.index._graph import (
    beam_search,
    ensure_connected,
    graph_degree_stats,
    greedy_walk,
    medoid,
    robust_prune,
)
from repro.scores import EuclideanScore


class TestGraphMachinery:
    def test_medoid_is_central(self):
        data = np.array([[0.0, 0], [1, 0], [0, 1], [10, 10]], dtype=np.float32)
        # Mean is pulled toward (10,10); closest point to mean is tested.
        m = medoid(data)
        center = data.mean(axis=0)
        dists = np.linalg.norm(data - center, axis=1)
        assert m == int(dists.argmin())

    def test_greedy_walk_descends(self, small_data):
        adjacency = brute_force_knng(small_data, 8, EuclideanScore())
        q = small_data[17]
        node, dist, path = greedy_walk(q, small_data, adjacency, 0, EuclideanScore())
        # Distances along the path must strictly decrease.
        score = EuclideanScore()
        path_d = [float(score.distances(q, small_data[p:p+1])[0]) for p in path]
        assert all(a > b for a, b in zip(path_d, path_d[1:]))
        assert dist == pytest.approx(path_d[-1])

    def test_beam_search_wider_ef_superset_quality(self, small_data, small_queries):
        adjacency = brute_force_knng(small_data, 8, EuclideanScore())
        q = small_queries[0]
        narrow = beam_search(q, small_data, adjacency, [0], 4, EuclideanScore())
        wide = beam_search(q, small_data, adjacency, [0], 32, EuclideanScore())
        assert wide[0][0] <= narrow[0][0] + 1e-9  # best can only improve

    def test_beam_search_respects_allowed(self, small_data):
        adjacency = brute_force_knng(small_data, 8, EuclideanScore())
        allowed = np.zeros(300, dtype=bool)
        allowed[:150] = True
        out = beam_search(
            small_data[0], small_data, adjacency, [299], 16, EuclideanScore(),
            allowed=allowed, ids=np.arange(300),
        )
        assert all(pos < 150 for _, pos in out)

    def test_robust_prune_occlusion(self):
        # Three collinear candidates: the middle one occludes the far one.
        vectors = np.array(
            [[0.0, 0], [1, 0], [2, 0], [0, 5]], dtype=np.float32
        )
        cands = np.array([1, 2, 3])
        dists = np.array([1.0, 2.0, 5.0])
        kept = robust_prune(cands, dists, vectors, 3, EuclideanScore(), alpha=1.0)
        assert 1 in kept
        assert 2 not in kept  # occluded by 1 (d(1,2)=1 < d(0,2)=2)
        assert 3 in kept  # different direction survives

    def test_robust_prune_alpha_keeps_more(self):
        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((50, 4)).astype(np.float32)
        dists = np.linalg.norm(vectors - vectors[0], axis=1)
        cands = np.arange(1, 50)
        tight = robust_prune(cands, dists[1:], vectors, 32, EuclideanScore(), 1.0)
        loose = robust_prune(cands, dists[1:], vectors, 32, EuclideanScore(), 1.5)
        assert len(loose) >= len(tight)

    def test_robust_prune_degree_cap(self, small_data):
        dists = np.linalg.norm(
            small_data.astype(np.float64) - small_data[0].astype(np.float64), axis=1
        )
        kept = robust_prune(
            np.arange(1, 300), dists[1:], small_data, 5, EuclideanScore(), 1.2
        )
        assert len(kept) <= 5

    def test_ensure_connected_repairs(self):
        vectors = np.random.default_rng(0).standard_normal((10, 3)).astype(np.float32)
        # Two islands: 0-4 and 5-9.
        adjacency = [np.array([(i + 1) % 5], dtype=np.int64) for i in range(5)]
        adjacency += [np.array([5 + (i + 1) % 5], dtype=np.int64) for i in range(5)]
        added = ensure_connected(adjacency, vectors, 0, EuclideanScore(), 8)
        assert added >= 1
        # Everything reachable from 0 now.
        seen = {0}
        stack = [0]
        while stack:
            for nb in adjacency[stack.pop()]:
                if int(nb) not in seen:
                    seen.add(int(nb))
                    stack.append(int(nb))
        assert seen == set(range(10))

    def test_degree_stats(self):
        adjacency = [np.array([1, 2]), np.array([0]), np.array([], dtype=np.int64)]
        stats = graph_degree_stats(adjacency)
        assert stats["mean_degree"] == pytest.approx(1.0)
        assert stats["max_degree"] == 2
        assert stats["num_edges"] == 3


class TestKnng:
    def test_brute_force_edges_exact(self, small_data, flat_oracle):
        adjacency = brute_force_knng(small_data, 5, EuclideanScore())
        # Node 0's neighbors = its 5 exact NNs (excluding itself).
        exact = [h.id for h in flat_oracle.search(small_data[0], 6)]
        exact = [e for e in exact if e != 0][:5]
        assert adjacency[0].tolist() == exact

    def test_no_self_edges(self, small_data):
        adjacency = brute_force_knng(small_data, 5, EuclideanScore())
        for i, nbrs in enumerate(adjacency):
            assert i not in nbrs

    def test_member_neighbors_o1(self, small_data):
        index = KnngIndex(graph_k=5).build(small_data)
        nbrs = index.member_neighbors(10)
        assert len(nbrs) == 5

    def test_k_larger_than_n(self):
        data = np.random.default_rng(0).standard_normal((4, 3)).astype(np.float32)
        adjacency = brute_force_knng(data, 10, EuclideanScore())
        assert all(len(a) == 3 for a in adjacency)


class TestNnDescent:
    def test_converges_to_high_graph_recall(self, small_data):
        exact = brute_force_knng(small_data, 10, EuclideanScore())
        result = nn_descent(small_data, 10, EuclideanScore(), max_iterations=8,
                            seed=0)
        assert knng_recall(result.neighbor_ids, exact) > 0.9

    def test_cheaper_than_brute_force(self):
        """NN-Descent's cost advantage is asymptotic: the local join costs
        ~n*K^2 per effective round, so it needs n >> K^2 to win."""
        from repro.bench.datasets import gaussian_mixture

        n = 600
        data = gaussian_mixture(n=n, dim=12, num_clusters=6, seed=7).train
        result = nn_descent(data, 8, EuclideanScore(), max_iterations=8, seed=0)
        assert result.distance_computations < n * n

    def test_forest_init_starts_better(self, small_data):
        exact = brute_force_knng(small_data, 8, EuclideanScore())
        random_init = nn_descent(small_data, 8, EuclideanScore(),
                                 max_iterations=1, init="random", seed=0)
        forest_init = nn_descent(small_data, 8, EuclideanScore(),
                                 max_iterations=1, init="forest", seed=0)
        assert knng_recall(forest_init.neighbor_ids, exact) >= knng_recall(
            random_init.neighbor_ids, exact
        ) - 0.02

    def test_neighbor_lists_sorted(self, small_data):
        result = nn_descent(small_data, 6, EuclideanScore(), max_iterations=3)
        for row in result.neighbor_dists:
            assert (np.diff(row) >= -1e-9).all()

    def test_updates_decay(self, small_data):
        result = nn_descent(small_data, 8, EuclideanScore(), max_iterations=8,
                            seed=0)
        ups = result.updates_per_iteration
        assert ups[-1] < ups[0]

    def test_invalid_init(self, small_data):
        with pytest.raises(ValueError):
            nn_descent(small_data, 4, EuclideanScore(), init="psychic")

    def test_index_wrapper(self, small_data, small_queries):
        index = NnDescentIndex(graph_k=8, max_iterations=4).build(small_data)
        assert index.result.iterations >= 1
        assert len(index.search(small_queries[0], 5)) == 5


class TestNswHnsw:
    def test_nsw_incremental_equals_construction(self, small_data, small_queries):
        full = NswIndex(connections=8, seed=0).build(small_data)
        incremental = NswIndex(connections=8, seed=0).build(small_data[:200])
        incremental.add(small_data[200:], np.arange(200, 300))
        assert len(incremental) == len(full) == 300
        hits = incremental.search(small_data[250], 5)
        assert 250 in [h.id for h in hits]

    def test_hnsw_level_distribution_decays(self, small_data):
        index = HnswIndex(m=8, seed=0).build(small_data)
        hist = index.level_histogram()
        assert hist[0] > hist.get(1, 0) > hist.get(2, -1)

    def test_hnsw_layer0_contains_all(self, small_data):
        index = HnswIndex(m=8, seed=0).build(small_data)
        assert len(index.layer_adjacency(0)) == 300

    def test_hnsw_degree_bounded(self, small_data):
        index = HnswIndex(m=8, seed=0).build(small_data)
        for node, nbrs in index.layer_adjacency(0).items():
            assert len(nbrs) <= index.max_degree0

    def test_hnsw_ef_recall_monotonic(self, small_data, small_queries,
                                      ground_truth_10):
        index = HnswIndex(m=8, ef_construction=48, seed=0).build(small_data)

        def recall(ef):
            got = []
            for qi, q in enumerate(small_queries):
                hits = index.search(q, 10, ef_search=ef)
                truth = set(int(t) for t in ground_truth_10[qi])
                got.append(len(truth.intersection(h.id for h in hits)) / 10)
            return float(np.mean(got))

        assert recall(64) >= recall(10) - 1e-9

    def test_hnsw_add(self, small_data):
        index = HnswIndex(m=8, seed=0).build(small_data[:250])
        index.add(small_data[250:], np.arange(250, 300))
        assert len(index) == 300
        hits = index.search(small_data[270], 5)
        assert 270 in [h.id for h in hits]

    def test_hnsw_rejects_m1(self):
        with pytest.raises(ValueError):
            HnswIndex(m=1)


class TestNgt:
    def test_tree_seeds_are_near_query(self, small_data, small_queries):
        from repro.index import NgtIndex

        index = NgtIndex(edge_size=8, seed=0).build(small_data)
        entries = index._entry_points(small_queries[0])
        assert 1 <= len(entries) <= 3
        # Seeds should be closer than a random node on average.
        from repro.scores import EuclideanScore

        score = EuclideanScore()
        seed_d = score.distances(
            small_queries[0], small_data[np.asarray(entries)]
        ).mean()
        all_d = score.distances(small_queries[0], small_data).mean()
        assert seed_d < all_d

    def test_degree_capped(self, small_data):
        from repro.index import NgtIndex

        index = NgtIndex(edge_size=8, max_degree=12, seed=0).build(small_data)
        assert index.degree_stats()["max_degree"] <= 12

    def test_incremental_add(self, small_data):
        from repro.index import NgtIndex

        index = NgtIndex(edge_size=8, seed=0).build(small_data[:250])
        index.add(small_data[250:], np.arange(250, 300))
        assert len(index) == 300
        hits = index.search(small_data[275], 5)
        assert 275 in [h.id for h in hits]

    def test_validation(self):
        from repro.index import NgtIndex

        with pytest.raises(ValueError):
            NgtIndex(edge_size=0)


class TestMsnFamily:
    def test_nsg_connected_from_navigating_node(self, small_data):
        index = NsgIndex(max_degree=10, knng_k=10, seed=0).build(small_data)
        seen = {index.entry_point}
        stack = [index.entry_point]
        while stack:
            for nb in index.adjacency[stack.pop()]:
                if int(nb) not in seen:
                    seen.add(int(nb))
                    stack.append(int(nb))
        assert len(seen) == 300

    def test_nsg_degree_bounded(self, small_data):
        index = NsgIndex(max_degree=10, knng_k=10, seed=0).build(small_data)
        assert index.degree_stats()["max_degree"] <= 10 + 1  # +1 connectivity repair

    def test_vamana_alpha_validation(self):
        with pytest.raises(ValueError):
            VamanaIndex(alpha=0.5)

    def test_vamana_alpha_keeps_more_edges(self, small_data):
        """alpha > 1 relaxes the occlusion rule, so fewer candidates are
        pruned and the graph is denser (DiskANN's long-edge retention)."""
        tight = VamanaIndex(max_degree=10, alpha=1.0, seed=0).build(small_data)
        loose = VamanaIndex(max_degree=10, alpha=1.4, seed=0).build(small_data)
        assert (
            loose.degree_stats()["mean_degree"]
            >= tight.degree_stats()["mean_degree"] * 0.95
        )

    def test_fanng_trials_improve_monotonicity(self, small_data):
        few = FanngIndex(num_trials=50, init_knng_k=4, seed=0).build(small_data)
        many = FanngIndex(num_trials=2000, init_knng_k=4, seed=0).build(small_data)
        assert many.monotonicity_rate(100) >= few.monotonicity_rate(100) - 0.05

    def test_fanng_records_failures(self, small_data):
        index = FanngIndex(num_trials=500, init_knng_k=4, seed=0).build(small_data)
        assert index.edges_added == index.failed_trials
