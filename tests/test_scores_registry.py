"""Tests for the score registry."""

import pytest

from repro.core.errors import UnknownScoreError
from repro.scores import (
    CosineScore,
    EuclideanScore,
    MinkowskiScore,
    available_scores,
    get_score,
    register_score,
)


class TestGetScore:
    def test_by_name(self):
        assert isinstance(get_score("l2"), EuclideanScore)
        assert isinstance(get_score("cosine"), CosineScore)

    def test_aliases(self):
        assert isinstance(get_score("euclidean"), EuclideanScore)
        assert get_score("manhattan").name == "l1"
        assert get_score("chebyshev").name == "linf"
        assert get_score("dot").name == "ip"

    def test_case_insensitive(self):
        assert isinstance(get_score("COSINE"), CosineScore)

    def test_passthrough(self):
        score = EuclideanScore()
        assert get_score(score) is score

    def test_minkowski_parameterized(self):
        score = get_score("minkowski:3")
        assert isinstance(score, MinkowskiScore)
        assert score.p == 3.0

    def test_unknown_raises_with_suggestions(self):
        with pytest.raises(UnknownScoreError, match="available"):
            get_score("nope")

    def test_register_custom(self):
        class Custom(EuclideanScore):
            name = "custom_test"

        register_score("custom_test", Custom)
        assert isinstance(get_score("custom_test"), Custom)
        assert "custom_test" in available_scores()

    def test_available_scores_sorted(self):
        scores = available_scores()
        assert scores == sorted(scores)
        assert "l2" in scores
