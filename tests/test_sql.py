"""Tests for the SQL-ish vector query language."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import SqlError
from repro.core.sql import parse_sql, tokenize
from repro.hybrid.predicates import And, Between, Comparison, In, Not, Or


class TestTokenizer:
    def test_basic(self):
        assert tokenize("SELECT * FROM t") == ["SELECT", "*", "FROM", "t"]

    def test_numbers_and_strings(self):
        tokens = tokenize("price < 19.99 AND name = 'it''s'")
        assert "19.99" in tokens
        assert "'it''s'" in tokens

    def test_operators(self):
        assert tokenize("a <> b <= c") == ["a", "<>", "b", "<=", "c"]

    def test_garbage_rejected(self):
        with pytest.raises(SqlError):
            tokenize("SELECT ~~~ FROM t")


class TestParser:
    def _q(self, where=""):
        clause = f"WHERE {where} " if where else ""
        return parse_sql(
            f"SELECT * FROM items {clause}"
            "ORDER BY DISTANCE(vec, [1.0, 2.0]) LIMIT 5"
        )

    def test_minimal(self):
        parsed = self._q()
        assert parsed.table == "items"
        assert parsed.predicate is None
        assert parsed.k == 5
        np.testing.assert_array_equal(parsed.vector, [1.0, 2.0])

    def test_comparison(self):
        parsed = self._q("price < 20")
        assert parsed.predicate == Comparison("price", "<", 20)

    def test_equals_normalized(self):
        assert self._q("a = 3").predicate == Comparison("a", "==", 3)
        assert self._q("a == 3").predicate == Comparison("a", "==", 3)
        assert self._q("a <> 3").predicate == Comparison("a", "!=", 3)

    def test_string_literal(self):
        parsed = self._q("category = 'shoes'")
        assert parsed.predicate == Comparison("category", "==", "shoes")

    def test_and_or_precedence(self):
        parsed = self._q("a = 1 OR b = 2 AND c = 3")
        # AND binds tighter: a=1 OR (b=2 AND c=3)
        assert isinstance(parsed.predicate, Or)
        assert isinstance(parsed.predicate.right, And)

    def test_parentheses(self):
        parsed = self._q("(a = 1 OR b = 2) AND c = 3")
        assert isinstance(parsed.predicate, And)
        assert isinstance(parsed.predicate.left, Or)

    def test_not(self):
        parsed = self._q("NOT a = 1")
        assert isinstance(parsed.predicate, Not)

    def test_between(self):
        parsed = self._q("price BETWEEN 5 AND 10")
        assert parsed.predicate == Between("price", 5, 10)

    def test_in(self):
        parsed = self._q("category IN ('a', 'b')")
        assert parsed.predicate == In("category", ["a", "b"])

    def test_between_inside_and(self):
        parsed = self._q("price BETWEEN 5 AND 10 AND rating > 3")
        assert isinstance(parsed.predicate, And)

    def test_errors(self):
        with pytest.raises(SqlError):
            parse_sql("")
        with pytest.raises(SqlError):
            parse_sql("SELECT * FROM t LIMIT 5")  # missing ORDER BY
        with pytest.raises(SqlError):
            parse_sql("SELECT * FROM t ORDER BY DISTANCE(v, [1]) LIMIT 5 extra")
        with pytest.raises(SqlError):
            parse_sql("SELECT name FROM t ORDER BY DISTANCE(v, [1]) LIMIT 5")

    def test_keyword_as_attribute_rejected(self):
        with pytest.raises(SqlError):
            self._q("WHERE = 3")


class TestExecution:
    def test_sql_equals_api(self, hybrid_dataset):
        from repro.core.database import VectorDatabase
        from repro.core.sql import execute_sql
        from repro.hybrid.predicates import Field

        db = VectorDatabase(dim=hybrid_dataset.dim)
        db.insert_many(hybrid_dataset.train, hybrid_dataset.attributes)
        q = hybrid_dataset.queries[0]
        vector_sql = "[" + ", ".join(f"{x:.6f}" for x in q) + "]"
        sql_result = execute_sql(
            db,
            "SELECT * FROM items WHERE category = 2 AND price < 40 "
            f"ORDER BY DISTANCE(vec, {vector_sql}) LIMIT 5",
        )
        api_result = db.search(
            q, k=5, predicate=(Field("category") == 2) & (Field("price") < 40)
        )
        assert sql_result.ids == api_result.ids


class TestParserProperties:
    @given(
        k=st.integers(min_value=1, max_value=1000),
        dims=st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=1, max_size=8,
        ),
        value=st.integers(min_value=-100, max_value=100),
        op=st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_structure(self, k, dims, value, op):
        vector_sql = "[" + ", ".join(str(d) for d in dims) + "]"
        parsed = parse_sql(
            f"SELECT * FROM t WHERE x {op} {value} "
            f"ORDER BY DISTANCE(v, {vector_sql}) LIMIT {k}"
        )
        assert parsed.k == k
        assert parsed.vector.shape == (len(dims),)
        # Vectors are stored float32; compare at that precision.
        np.testing.assert_allclose(
            parsed.vector, np.asarray(dims, dtype=np.float32), rtol=1e-5
        )
        assert isinstance(parsed.predicate, Comparison)
        assert parsed.predicate.value == value

    @given(text=st.text(min_size=1, max_size=30).filter(lambda s: "'" not in s))
    @settings(max_examples=40, deadline=None)
    def test_string_literals_roundtrip(self, text):
        parsed = parse_sql(
            f"SELECT * FROM t WHERE name = '{text}' "
            "ORDER BY DISTANCE(v, [1]) LIMIT 1"
        )
        assert parsed.predicate.value == text
