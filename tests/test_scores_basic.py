"""Tests for the basic similarity scores (§2.1)."""

import numpy as np
import pytest

from repro.scores import (
    CosineScore,
    EuclideanScore,
    HammingScore,
    InnerProductScore,
    MahalanobisScore,
    MinkowskiScore,
    SquaredEuclideanScore,
    normalize_rows,
)

ALL_SCORES = [
    EuclideanScore(),
    SquaredEuclideanScore(),
    InnerProductScore(),
    CosineScore(),
    MinkowskiScore(1.0),
    MinkowskiScore(3.0),
    MinkowskiScore(np.inf),
    MinkowskiScore(0.5),
    HammingScore(),
]


class TestEuclidean:
    def test_known_value(self):
        d = EuclideanScore().distances(np.array([0.0, 0.0]), np.array([[3.0, 4.0]]))
        assert d[0] == pytest.approx(5.0)

    def test_pairwise_matches_rowwise(self, rng):
        a = rng.standard_normal((7, 5))
        b = rng.standard_normal((9, 5))
        score = EuclideanScore()
        pw = score.pairwise(a, b)
        for i in range(7):
            np.testing.assert_allclose(pw[i], score.distances(a[i], b), atol=1e-5)

    def test_self_distance_zero(self, rng):
        x = rng.standard_normal((4, 6))
        pw = EuclideanScore().pairwise(x, x)
        np.testing.assert_allclose(np.diag(pw), 0.0, atol=1e-5)


class TestSquaredEuclidean:
    def test_is_square_of_l2(self, rng):
        x = rng.standard_normal(8)
        ys = rng.standard_normal((5, 8))
        l2 = EuclideanScore().distances(x, ys)
        sq = SquaredEuclideanScore().distances(x, ys)
        np.testing.assert_allclose(sq, l2**2, rtol=1e-5)

    def test_same_ordering_as_l2(self, rng):
        x = rng.standard_normal(8)
        ys = rng.standard_normal((20, 8))
        l2 = EuclideanScore().distances(x, ys)
        sq = SquaredEuclideanScore().distances(x, ys)
        np.testing.assert_array_equal(np.argsort(l2), np.argsort(sq))


class TestInnerProduct:
    def test_negated(self):
        d = InnerProductScore().distances(
            np.array([1.0, 2.0]), np.array([[3.0, 4.0]])
        )
        assert d[0] == pytest.approx(-11.0)

    def test_similarity_recovers_ip(self):
        score = InnerProductScore()
        assert score.similarity(-11.0) == pytest.approx(11.0)

    def test_higher_ip_means_smaller_distance(self):
        q = np.array([1.0, 0.0])
        d = InnerProductScore().distances(q, np.array([[2.0, 0.0], [1.0, 0.0]]))
        assert d[0] < d[1]


class TestCosine:
    def test_parallel_is_zero(self):
        d = CosineScore().distances(np.array([1.0, 1.0]), np.array([[2.0, 2.0]]))
        assert d[0] == pytest.approx(0.0, abs=1e-6)

    def test_orthogonal_is_one(self):
        d = CosineScore().distances(np.array([1.0, 0.0]), np.array([[0.0, 1.0]]))
        assert d[0] == pytest.approx(1.0)

    def test_opposite_is_two(self):
        d = CosineScore().distances(np.array([1.0, 0.0]), np.array([[-1.0, 0.0]]))
        assert d[0] == pytest.approx(2.0)

    def test_zero_vector_treated_orthogonal(self):
        d = CosineScore().distances(np.array([1.0, 0.0]), np.array([[0.0, 0.0]]))
        assert d[0] == pytest.approx(1.0)

    def test_scale_invariance(self, rng):
        q = rng.standard_normal(6)
        ys = rng.standard_normal((5, 6))
        d1 = CosineScore().distances(q, ys)
        d2 = CosineScore().distances(3.5 * q, 0.2 * ys)
        np.testing.assert_allclose(d1, d2, atol=1e-6)

    def test_equals_ip_on_normalized(self, rng):
        data = normalize_rows(rng.standard_normal((20, 8)))
        q = normalize_rows(rng.standard_normal((1, 8)))[0]
        cos = CosineScore().distances(q, data)
        ip = InnerProductScore().distances(q, data)
        # cosine distance = 1 + negative inner product on the sphere
        np.testing.assert_allclose(cos, 1.0 + ip, atol=1e-5)


class TestMinkowski:
    def test_l1_known(self):
        d = MinkowskiScore(1.0).distances(np.zeros(2), np.array([[1.0, -2.0]]))
        assert d[0] == pytest.approx(3.0)

    def test_linf_known(self):
        d = MinkowskiScore(np.inf).distances(np.zeros(2), np.array([[1.0, -2.0]]))
        assert d[0] == pytest.approx(2.0)

    def test_p2_matches_euclidean(self, rng):
        q = rng.standard_normal(5)
        ys = rng.standard_normal((6, 5))
        np.testing.assert_allclose(
            MinkowskiScore(2.0).distances(q, ys),
            EuclideanScore().distances(q, ys),
            rtol=1e-5,
        )

    def test_fractional_norm_not_metric_flag(self):
        assert not MinkowskiScore(0.5).is_metric
        assert MinkowskiScore(1.0).is_metric

    def test_rejects_nonpositive_p(self):
        with pytest.raises(ValueError):
            MinkowskiScore(0.0)

    def test_norm_ordering_with_p(self):
        # For a fixed vector, ||x||_p decreases as p increases.
        x = np.array([[1.0, 1.0, 1.0, 1.0]])
        q = np.zeros(4)
        d1 = MinkowskiScore(1.0).distances(q, x)[0]
        d2 = MinkowskiScore(2.0).distances(q, x)[0]
        dinf = MinkowskiScore(np.inf).distances(q, x)[0]
        assert d1 > d2 > dinf


class TestHamming:
    def test_known_value(self):
        d = HammingScore().distances(
            np.array([1, 0, 1, 0]), np.array([[1, 1, 0, 0]])
        )
        assert d[0] == 2

    def test_binarizes_floats(self):
        d = HammingScore().distances(
            np.array([0.9, 0.1]), np.array([[1.0, 0.0]])
        )
        assert d[0] == 0

    def test_pairwise_symmetric(self, rng):
        bits = (rng.uniform(size=(10, 16)) > 0.5).astype(np.float32)
        pw = HammingScore().pairwise(bits, bits)
        np.testing.assert_array_equal(pw, pw.T)


class TestMahalanobis:
    def test_identity_matrix_is_euclidean(self, rng):
        q = rng.standard_normal(4)
        ys = rng.standard_normal((6, 4))
        m = MahalanobisScore(np.eye(4))
        np.testing.assert_allclose(
            m.distances(q, ys), EuclideanScore().distances(q, ys), rtol=1e-5
        )

    def test_from_data_whitens(self, rng):
        # Strongly correlated 2-d data: whitened distance should treat the
        # low-variance direction as more significant.
        base = rng.standard_normal(500)
        data = np.stack([base, base + 0.01 * rng.standard_normal(500)], axis=1)
        score = MahalanobisScore.from_data(data)
        q = np.array([0.0, 0.0])
        along = score.distances(q, np.array([[1.0, 1.0]]))[0]  # with correlation
        against = score.distances(q, np.array([[1.0, -1.0]]))[0]  # across it
        assert against > along

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            MahalanobisScore(np.ones((2, 3)))

    def test_rejects_non_psd(self):
        with pytest.raises(np.linalg.LinAlgError):
            MahalanobisScore(np.array([[1.0, 0.0], [0.0, -1.0]]))


class TestNormalizeRows:
    def test_unit_norms(self, rng):
        out = normalize_rows(rng.standard_normal((10, 4)))
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), 1.0, rtol=1e-5)

    def test_zero_rows_preserved(self):
        out = normalize_rows(np.zeros((2, 3)))
        np.testing.assert_array_equal(out, 0.0)


@pytest.mark.parametrize("score", ALL_SCORES, ids=lambda s: s.name)
class TestScoreContract:
    def test_distances_shape(self, score, rng):
        q = rng.uniform(size=8).astype(np.float32)
        ys = rng.uniform(size=(13, 8)).astype(np.float32)
        d = score.distances(q, ys)
        assert d.shape == (13,)

    def test_pairwise_shape(self, score, rng):
        a = rng.uniform(size=(3, 8)).astype(np.float32)
        b = rng.uniform(size=(5, 8)).astype(np.float32)
        assert score.pairwise(a, b).shape == (3, 5)

    def test_pairwise_consistent_with_distances(self, score, rng):
        a = rng.uniform(size=(3, 8)).astype(np.float32)
        b = rng.uniform(size=(5, 8)).astype(np.float32)
        pw = score.pairwise(a, b)
        for i in range(3):
            np.testing.assert_allclose(pw[i], score.distances(a[i], b), atol=1e-4)
