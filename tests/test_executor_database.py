"""Tests for the executor and the VectorDatabase facade."""

import numpy as np
import pytest

from repro.core.database import VectorDatabase
from repro.core.errors import PlanningError, QueryError
from repro.core.planner import QueryPlan
from repro.core.query import SearchQuery
from repro.hybrid.predicates import Field
from repro.index import FlatIndex
from repro.scores import EuclideanScore


@pytest.fixture()
def db(hybrid_dataset):
    db = VectorDatabase(dim=hybrid_dataset.dim, score="l2", selector="cost")
    db.insert_many(hybrid_dataset.train, hybrid_dataset.attributes)
    db.create_index("graph", "hnsw", m=8, ef_construction=48, seed=0)
    db.create_index("ivf", "ivf_flat", nlist=12, seed=0)
    return db


@pytest.fixture(scope="module")
def oracle(hybrid_dataset):
    return FlatIndex(EuclideanScore()).build(hybrid_dataset.train)


class TestBasicSearch:
    def test_search_returns_sorted(self, db, hybrid_dataset):
        result = db.search(hybrid_dataset.queries[0], k=7)
        assert len(result) == 7
        assert result.distances == sorted(result.distances)
        assert result.stats.elapsed_seconds > 0
        assert result.stats.plan_name

    def test_every_strategy_executes(self, db, hybrid_dataset):
        q = hybrid_dataset.queries[0]
        predicate = Field("category") == 1
        for plan in (
            QueryPlan("brute_force"),
            QueryPlan("pre_filter"),
            QueryPlan("block_first", "ivf"),
            QueryPlan("post_filter", "graph", oversample=8.0),
            QueryPlan("post_filter", "graph"),  # adaptive
            QueryPlan("visit_first", "graph"),
        ):
            result = db.search(q, k=5, predicate=predicate, plan=plan)
            cats = db.collection.columns["category"]
            assert all(cats[i] == 1 for i in result.ids), plan.strategy

    def test_hybrid_results_match_oracle(self, db, oracle, hybrid_dataset):
        predicate = Field("price") < 25
        q = hybrid_dataset.queries[1]
        mask = db.collection.predicate_mask(predicate)
        expected = [h.id for h in oracle.search(q, 5, allowed=mask)]
        got = db.search(q, k=5, predicate=predicate, plan=QueryPlan("pre_filter"))
        assert got.ids == expected

    def test_unknown_index_in_plan(self, db, hybrid_dataset):
        with pytest.raises(PlanningError, match="unknown index"):
            db.search(hybrid_dataset.queries[0], k=3,
                      plan=QueryPlan("index_scan", "nope"))

    def test_plan_without_index_rejected(self, db, hybrid_dataset):
        with pytest.raises(PlanningError):
            db.search(hybrid_dataset.queries[0], k=3,
                      plan=QueryPlan("index_scan"))


class TestDeletes:
    def test_deleted_items_never_returned(self, db, hybrid_dataset):
        q = hybrid_dataset.queries[0]
        victim = db.search(q, k=1).ids[0]
        db.delete(victim)
        for plan in (QueryPlan("brute_force"), QueryPlan("index_scan", "graph")):
            result = db.search(q, k=5, plan=plan)
            assert victim not in result.ids


class TestStaleness:
    def test_inserts_mark_stale(self, db):
        assert not db.has_stale_indexes
        db.insert(np.zeros(db.dim), {"category": 0, "price": 1.0, "rating": 3})
        assert db.has_stale_indexes

    def test_stale_database_falls_back_to_exact_plans(self, db, hybrid_dataset):
        new_id = db.insert(
            hybrid_dataset.queries[0],
            {"category": 0, "price": 1.0, "rating": 3},
        )
        result = db.search(hybrid_dataset.queries[0], k=1)
        assert result.ids == [new_id]  # only brute force can see it

    def test_rebuild_clears_staleness(self, db, hybrid_dataset):
        new_id = db.insert(
            hybrid_dataset.queries[0] + 100.0,
            {"category": 0, "price": 1.0, "rating": 3},
        )
        db.rebuild_indexes()
        assert not db.has_stale_indexes
        result = db.search(
            hybrid_dataset.queries[0] + 100.0, k=1,
            plan=QueryPlan("index_scan", "graph"),
        )
        assert result.ids == [new_id]


class TestRangeBatchMulti:
    def test_range_search_exact(self, db, oracle, hybrid_dataset):
        q = hybrid_dataset.queries[0]
        result = db.range_search(q, radius=2.0, plan=QueryPlan("brute_force"))
        expected = oracle.range_search(q, 2.0)
        assert result.ids == [h.id for h in expected]
        assert all(d <= 2.0 for d in result.distances)

    def test_range_with_predicate(self, db, hybrid_dataset):
        predicate = Field("rating") >= 3
        result = db.range_search(
            hybrid_dataset.queries[0], radius=3.0, predicate=predicate,
            plan=QueryPlan("brute_force"),
        )
        ratings = db.collection.columns["rating"]
        assert all(ratings[i] >= 3 for i in result.ids)

    def test_batch_matches_singles(self, db, hybrid_dataset):
        qs = hybrid_dataset.queries[:4]
        batch = db.batch_search(qs, k=5, plan=QueryPlan("brute_force"))
        for q, result in zip(qs, batch):
            single = db.search(q, k=5, plan=QueryPlan("brute_force"))
            assert result.ids == single.ids

    def test_batch_with_predicate_block_first(self, db, hybrid_dataset):
        predicate = Field("category") == 2
        batch = db.batch_search(
            hybrid_dataset.queries[:3], k=4, predicate=predicate,
            plan=QueryPlan("block_first", "graph"),
        )
        cats = db.collection.columns["category"]
        for result in batch:
            assert all(cats[i] == 2 for i in result.ids)

    def test_multivector_mean(self, db, hybrid_dataset):
        qs = hybrid_dataset.queries[:2]
        result = db.multi_vector_search(qs, k=5, aggregator="mean")
        assert len(result) == 5
        assert result.distances == sorted(result.distances)

    def test_multivector_weighted(self, db, hybrid_dataset):
        qs = hybrid_dataset.queries[:2]
        heavy_first = db.multi_vector_search(qs, k=3, weights=[100.0, 0.01])
        single = db.search(qs[0], k=3, plan=QueryPlan("brute_force"))
        # Heavily weighting the first query vector should make results
        # resemble a single-vector search for it.
        assert len(set(heavy_first.ids) & set(single.ids)) >= 2

    def test_multivector_brute_vs_index_agree(self, db, hybrid_dataset):
        qs = hybrid_dataset.queries[:2]
        brute = db.multi_vector_search(qs, k=5, plan=QueryPlan("brute_force"))
        indexed = db.multi_vector_search(
            qs, k=5, plan=QueryPlan("index_scan", "graph")
        )
        assert len(set(brute.ids) & set(indexed.ids)) >= 3

    def test_multivector_with_predicate(self, db, hybrid_dataset):
        result = db.multi_vector_search(
            hybrid_dataset.queries[:2], k=5, predicate=Field("rating") >= 4
        )
        ratings = db.collection.columns["rating"]
        assert all(ratings[i] >= 4 for i in result.ids)


class TestPlanningIntegration:
    def test_explain_lists_candidates(self, db, hybrid_dataset):
        text = db.explain(
            SearchQuery(hybrid_dataset.queries[0], 5, predicate=Field("rating") >= 3)
        )
        assert "chosen:" in text
        assert "pre_filter" in text

    def test_selector_adapts_to_selectivity(self, db, hybrid_dataset):
        q = hybrid_dataset.queries[0]
        narrow = db.plan(SearchQuery(q, 5, predicate=(
            (Field("category") == 0) & (Field("rating") == 5) & (Field("price") < 10)
        )))[0]
        wide = db.plan(SearchQuery(q, 5, predicate=Field("rating") >= 1))[0]
        assert narrow.strategy == "pre_filter"
        assert wide.strategy != "pre_filter"


class TestIndexManagement:
    def test_duplicate_index_name(self, db):
        with pytest.raises(PlanningError, match="already exists"):
            db.create_index("graph", "flat")

    def test_drop_index(self, db, hybrid_dataset):
        db.drop_index("ivf")
        assert "ivf" not in db.indexes
        with pytest.raises(PlanningError):
            db.drop_index("ivf")

    def test_partitioned_index_via_db(self, db, hybrid_dataset):
        db.create_partitioned_index("bycat", "flat", "category")
        q = hybrid_dataset.queries[0]
        result = db.search(
            q, k=5, predicate=Field("category") == 1,
            plan=QueryPlan("partition", "bycat"),
        )
        cats = db.collection.columns["category"]
        assert all(cats[i] == 1 for i in result.ids)

    def test_partition_plan_enumerated_when_covering(self, db, hybrid_dataset):
        db.create_partitioned_index("bycat", "flat", "category")
        _, plans = db.plan(
            SearchQuery(hybrid_dataset.queries[0], 5,
                        predicate=Field("category") == 1)
        )
        assert any(p.strategy == "partition" for p in plans)


class TestConstruction:
    def test_requires_dim_or_embedder(self):
        with pytest.raises(QueryError):
            VectorDatabase()

    def test_embedder_supplies_dim(self):
        from repro.embed import HashingTextEmbedder

        db = VectorDatabase(embedder=HashingTextEmbedder(dim=24))
        assert db.dim == 24

    def test_entity_insert_and_search(self):
        from repro.embed import HashingTextEmbedder

        db = VectorDatabase(embedder=HashingTextEmbedder(dim=48), score="cosine")
        docs = ["red running shoes", "blue walking boots", "quantum physics paper",
                "green hiking shoes", "astrophysics lecture notes"]
        db.insert_many(entities=docs)
        result = db.search(entity="running shoes in red", k=2)
        assert 0 in result.ids  # the lexically closest doc

    def test_vector_and_entity_mutually_exclusive(self):
        from repro.embed import HashingTextEmbedder

        db = VectorDatabase(embedder=HashingTextEmbedder(dim=16))
        with pytest.raises(QueryError):
            db.search(vector=np.zeros(16), entity="both", k=1)
        with pytest.raises(QueryError):
            db.search(k=1)

    def test_unknown_selector(self):
        with pytest.raises(PlanningError):
            VectorDatabase(dim=4, selector="vibes")

    def test_unknown_planner(self):
        with pytest.raises(PlanningError):
            VectorDatabase(dim=4, planner="magic")

    def test_repr(self, db):
        assert "VectorDatabase" in repr(db)


class TestPlanCacheIntegration:
    def _query(self, hybrid_dataset, k=5, **params):
        return SearchQuery(
            hybrid_dataset.queries[0], k, predicate=Field("rating") >= 3,
            params=params,
        )

    def test_repeat_query_hits(self, db, hybrid_dataset):
        q = self._query(hybrid_dataset)
        first, first_cands = db.plan(q)
        assert db.plan_cache.misses == 1 and db.plan_cache.hits == 0
        second, second_cands = db.plan(self._query(hybrid_dataset))
        assert db.plan_cache.hits == 1
        assert second is first
        assert [p.describe() for p in second_cands] == [
            p.describe() for p in first_cands
        ]

    def test_shape_changes_miss(self, db, hybrid_dataset):
        db.plan(self._query(hybrid_dataset, k=5))
        db.plan(self._query(hybrid_dataset, k=6))
        assert db.plan_cache.hits == 0 and db.plan_cache.misses == 2

    def test_insert_invalidates(self, db, hybrid_dataset):
        db.plan(self._query(hybrid_dataset))
        db.insert(hybrid_dataset.train[0], dict(zip(
            hybrid_dataset.attributes[0], hybrid_dataset.attributes[0].values()
        )))
        db.plan(self._query(hybrid_dataset))
        assert db.plan_cache.hits == 0 and db.plan_cache.misses == 2

    def test_delete_invalidates(self, db, hybrid_dataset):
        db.plan(self._query(hybrid_dataset))
        db.delete(0)
        db.plan(self._query(hybrid_dataset))
        assert db.plan_cache.hits == 0

    def test_index_ddl_invalidates(self, db, hybrid_dataset):
        db.plan(self._query(hybrid_dataset))
        db.create_index("extra", "flat")
        db.plan(self._query(hybrid_dataset))
        db.drop_index("extra")
        db.plan(self._query(hybrid_dataset))
        assert db.plan_cache.hits == 0 and db.plan_cache.misses == 3

    def test_rebuild_invalidates(self, db, hybrid_dataset):
        db.plan(self._query(hybrid_dataset))
        db.rebuild_indexes()
        db.plan(self._query(hybrid_dataset))
        assert db.plan_cache.hits == 0

    def test_unhashable_params_not_cached(self, db, hybrid_dataset):
        q = self._query(hybrid_dataset, weights=[0.2, 0.8])
        db.plan(q)
        db.plan(q)
        assert len(db.plan_cache) == 0
        assert db.plan_cache.hits == 0 and db.plan_cache.misses == 0

    def test_cache_disabled(self, hybrid_dataset):
        db = VectorDatabase(dim=hybrid_dataset.dim, plan_cache=False)
        db.insert_many(hybrid_dataset.train, hybrid_dataset.attributes)
        assert db.plan_cache is None
        result = db.search(hybrid_dataset.queries[0], k=3)
        assert len(result) == 3

    def test_capacity_from_int(self, hybrid_dataset):
        db = VectorDatabase(dim=hybrid_dataset.dim, plan_cache=4)
        assert db.plan_cache.capacity == 4

    def test_metrics_counters(self, db, hybrid_dataset):
        from repro import Observability

        db.set_observability(Observability(tracing=False))
        db.plan(self._query(hybrid_dataset))
        db.plan(self._query(hybrid_dataset))
        metrics = db.observability.metrics
        assert metrics.counter("vdbms_plan_cache_misses_total").total() == 1
        assert metrics.counter("vdbms_plan_cache_hits_total").total() == 1

    def test_explain_analyze_surfaces_cache_state(self, db, hybrid_dataset):
        q = hybrid_dataset.queries[0]
        profile = db.explain_analyze(q, k=3, predicate=Field("rating") >= 3)
        assert profile.plan_cache["source"] == "miss"
        profile = db.explain_analyze(q, k=3, predicate=Field("rating") >= 3)
        assert profile.plan_cache["source"] == "hit"
        assert profile.plan_cache["size"] >= 1
        assert "plan cache: source=hit" in profile.render()
        assert profile.to_dict()["plan_cache"]["source"] == "hit"

    def test_explain_analyze_explicit_and_disabled(self, db, hybrid_dataset):
        q = hybrid_dataset.queries[0]
        profile = db.explain_analyze(q, k=3, plan=QueryPlan("brute_force"))
        assert profile.plan_cache["source"] == "explicit"
        bare = VectorDatabase(dim=hybrid_dataset.dim, plan_cache=False)
        bare.insert_many(hybrid_dataset.train, hybrid_dataset.attributes)
        profile = bare.explain_analyze(q, k=3)
        assert profile.plan_cache == {"source": "disabled"}

    def test_cached_plan_executes_identically(self, db, hybrid_dataset):
        q = hybrid_dataset.queries[1]
        predicate = Field("category") == 1
        cold = db.search(q, k=5, predicate=predicate)
        warm = db.search(q, k=5, predicate=predicate)
        assert db.plan_cache.hits >= 1
        assert warm.ids == cold.ids
        assert warm.distances == cold.distances
