"""Tests for the LSM vector store (out-of-place updates, §2.3)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.storage import LsmVectorStore


def vec(value: float, dim: int = 4) -> np.ndarray:
    return np.full(dim, value, dtype=np.float32)


class TestBasics:
    def test_put_get(self):
        lsm = LsmVectorStore(dim=4)
        lsm.put(1, vec(1.0), {"tag": "a"})
        out = lsm.get(1)
        assert out is not None
        np.testing.assert_array_equal(out[0], vec(1.0))
        assert out[1] == {"tag": "a"}

    def test_missing_key(self):
        assert LsmVectorStore(dim=4).get(99) is None

    def test_overwrite_newest_wins(self):
        lsm = LsmVectorStore(dim=4, memtable_capacity=2)
        lsm.put(1, vec(1.0))
        lsm.put(2, vec(2.0))  # triggers flush
        lsm.put(1, vec(9.0))
        np.testing.assert_array_equal(lsm.get(1)[0], vec(9.0))

    def test_delete_tombstones(self):
        lsm = LsmVectorStore(dim=4)
        lsm.put(1, vec(1.0))
        lsm.delete(1)
        assert lsm.get(1) is None
        assert 1 not in lsm

    def test_delete_survives_flush(self):
        lsm = LsmVectorStore(dim=4, memtable_capacity=2)
        lsm.put(1, vec(1.0))
        lsm.flush()
        lsm.delete(1)
        lsm.flush()
        assert lsm.get(1) is None

    def test_len_counts_live(self):
        lsm = LsmVectorStore(dim=4, memtable_capacity=3)
        for i in range(10):
            lsm.put(i, vec(i))
        lsm.delete(3)
        lsm.delete(4)
        assert len(lsm) == 8


class TestFlushCompact:
    def test_auto_flush_at_capacity(self):
        lsm = LsmVectorStore(dim=4, memtable_capacity=4)
        for i in range(4):
            lsm.put(i, vec(i))
        assert lsm.memtable_size == 0
        assert lsm.num_runs == 1
        assert lsm.stats.flushes == 1

    def test_compaction_bounds_runs(self):
        lsm = LsmVectorStore(dim=4, memtable_capacity=2, max_runs=3)
        for i in range(20):
            lsm.put(i, vec(i))
        assert lsm.num_runs <= 3 + 1
        assert lsm.stats.compactions >= 1

    def test_compaction_drops_tombstones(self):
        lsm = LsmVectorStore(dim=4, memtable_capacity=2, max_runs=100)
        lsm.put(1, vec(1.0))
        lsm.delete(1)
        lsm.flush()
        lsm.put(2, vec(2.0))
        lsm.flush()
        lsm.compact()
        assert lsm.get(1) is None
        assert len(lsm) == 1

    def test_single_run_tombstones_compacted(self):
        """With no older runs to shadow, a lone run's tombstones are
        safe to drop — compact() must rewrite it."""
        lsm = LsmVectorStore(dim=4, memtable_capacity=100, max_runs=100)
        lsm.put(1, vec(1.0))
        lsm.delete(1)
        lsm.put(2, vec(2.0))
        lsm.flush()
        assert lsm.num_runs == 1
        lsm.compact()
        assert lsm.num_runs == 1
        assert sum(1 for _ in lsm._runs[0]) == 1  # tombstone gone
        assert lsm.get(1) is None
        assert lsm.get(2) is not None

    def test_single_clean_run_compact_is_noop(self):
        lsm = LsmVectorStore(dim=4, memtable_capacity=100)
        lsm.put(1, vec(1.0))
        lsm.flush()
        run_before = lsm._runs[0]
        lsm.compact()
        assert lsm._runs[0] is run_before  # untouched object

    def test_live_arrays(self):
        lsm = LsmVectorStore(dim=4, memtable_capacity=3)
        for i in range(7):
            lsm.put(i, vec(i))
        lsm.delete(0)
        ids, matrix = lsm.live_arrays()
        assert set(ids.tolist()) == set(range(1, 7))
        assert matrix.shape == (6, 4)

    def test_live_items_resolve_shadowing(self):
        lsm = LsmVectorStore(dim=4, memtable_capacity=2)
        lsm.put(1, vec(1.0))
        lsm.put(2, vec(2.0))
        lsm.put(1, vec(5.0))
        items = {k: v for k, v, _ in lsm.live_items()}
        np.testing.assert_array_equal(items[1], vec(5.0))


class TestLsmModelProperty:
    """The LSM store must behave exactly like a dict, regardless of
    flush/compaction timing (property-based)."""

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "delete", "flush", "compact"]),
                st.integers(min_value=0, max_value=15),
                st.floats(min_value=-10, max_value=10, allow_nan=False),
            ),
            max_size=60,
        ),
        capacity=st.integers(min_value=1, max_value=8),
        max_runs=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_model(self, ops, capacity, max_runs):
        lsm = LsmVectorStore(dim=2, memtable_capacity=capacity, max_runs=max_runs)
        model: dict[int, np.ndarray] = {}
        for op, key, value in ops:
            if op == "put":
                v = np.array([value, -value], dtype=np.float32)
                lsm.put(key, v)
                model[key] = v
            elif op == "delete":
                lsm.delete(key)
                model.pop(key, None)
            elif op == "flush":
                lsm.flush()
            else:
                lsm.compact()
        assert len(lsm) == len(model)
        for key, expected in model.items():
            got = lsm.get(key)
            assert got is not None
            np.testing.assert_array_equal(got[0], expected)
        live = {k for k, _, _ in lsm.live_items()}
        assert live == set(model)
