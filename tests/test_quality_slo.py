"""Quality observatory: sketches, recall auditing, SLO burn alerts.

Covers the PR-4 acceptance criteria:

* the P² :class:`QuantileSketch` is exact (numpy-identical) while its
  buffer lasts, merge-lossless in that regime, and — merged across k
  shards — brackets the exact quantile of the concatenated sample
  within the documented 0.05 rank tolerance (hypothesis properties for
  the provable invariants, seeded statistical tests for the tolerance);
* the online :class:`RecallAuditor` matches the offline bench recall on
  a degraded IVF index within ±0.05, samples deterministically under a
  fixed seed, and charges **all** of its work to ``audit_*`` metrics —
  query-path ``SearchStats`` and latency histograms are bit-identical
  with auditing on or off;
* an induced recall drop below a 0.9 SLO raises a burn-rate alert
  visible in ``Database.health()`` and as an ``slo_alert`` trace event,
  and the alert clears once quality recovers;
* ``SlowQueryLog`` keeps newest-N or slowest-N (both pinned), and the
  ``"auto"`` threshold tracks the streaming p99;
* ``render_prometheus`` escapes label values per the text-format rules.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    SLO,
    Observability,
    VectorDatabase,
)
from repro.bench.metrics import exact_ground_truth, recall_at_k
from repro.core.planner import QueryPlan
from repro.distributed.cluster import DistributedSearchCluster
from repro.observability import (
    DISABLED,
    BurnRatePolicy,
    MetricsRegistry,
    P2Quantile,
    QuantileSketch,
    RecallAuditor,
    SLOMonitor,
    SlowQueryLog,
    Tracer,
)
from repro.observability.slo import HealthReport
from repro.scores import EuclideanScore

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)


def _close(a, b):
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-6)


# ------------------------------------------------------------------ sketches


class TestQuantileSketch:
    def test_empty_and_extremes(self):
        sk = QuantileSketch()
        assert math.isnan(sk.quantile(0.5))
        for v in (3.0, 1.0, 2.0):
            sk.observe(v)
        assert sk.quantile(0.0) == 1.0 and sk.quantile(1.0) == 3.0
        assert sk.count == 3 and not sk.spilled
        with pytest.raises(ValueError):
            sk.observe(float("nan"))
        with pytest.raises(ValueError):
            sk.quantile(1.5)

    def test_p2_exact_below_five(self):
        est = P2Quantile(0.5)
        for v in (5.0, 1.0, 3.0):
            est.observe(v)
        assert est.estimate() == 3.0

    @settings(max_examples=80, deadline=None)
    @given(
        data=st.lists(finite_floats, min_size=1, max_size=120),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_exact_regime_matches_numpy_linear(self, data, q):
        sk = QuantileSketch()
        for v in data:
            sk.observe(v)
        assert not sk.spilled
        want = float(np.quantile(np.asarray(data, dtype=np.float64), q))
        assert _close(sk.quantile(q), want)

    @settings(max_examples=60, deadline=None)
    @given(
        a=st.lists(finite_floats, min_size=1, max_size=150),
        b=st.lists(finite_floats, min_size=1, max_size=150),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_exact_regime_merge_is_lossless(self, a, b, q):
        left, right = QuantileSketch(), QuantileSketch()
        for v in a:
            left.observe(v)
        for v in b:
            right.observe(v)
        left.merge(right)
        assert left.count == len(a) + len(b) and not left.spilled
        want = float(np.quantile(np.asarray(a + b, dtype=np.float64), q))
        assert _close(left.quantile(q), want)

    @settings(max_examples=40, deadline=None)
    @given(data=st.lists(finite_floats, min_size=80, max_size=200))
    def test_spilled_invariants(self, data):
        sk = QuantileSketch(buffer_size=32)
        for v in data:
            sk.observe(v)
        assert sk.spilled
        assert sk.count == len(data)
        assert sk.min == min(data) and sk.max == max(data)
        qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]
        estimates = [sk.quantile(q) for q in qs]
        for est in estimates:
            assert sk.min <= est <= sk.max
        assert all(x <= y + 1e-12 for x, y in zip(estimates, estimates[1:]))

    @settings(max_examples=25, deadline=None)
    @given(
        shards=st.lists(
            st.lists(finite_floats, min_size=40, max_size=120),
            min_size=2, max_size=4,
        )
    )
    def test_spilled_merge_invariants(self, shards):
        merged = QuantileSketch(buffer_size=16)
        for shard in shards:
            sk = QuantileSketch(buffer_size=16)
            for v in shard:
                sk.observe(v)
            merged.merge(sk)
        everything = [v for shard in shards for v in shard]
        assert merged.count == len(everything)
        assert merged.min == min(everything)
        assert merged.max == max(everything)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert merged.min <= merged.quantile(q) <= merged.max

    @pytest.mark.parametrize("dist", ["normal", "exponential", "uniform"])
    def test_k_shard_merge_within_documented_rank_tolerance(self, dist):
        """The satellite property: a sketch merged across k shards
        brackets the exact quantile of the concatenated sample within
        the documented rank tolerance (0.05) on smooth workloads."""
        rng = np.random.default_rng(
            {"normal": 17, "exponential": 29, "uniform": 43}[dist]
        )
        k, per_shard = 5, 2_000
        sample = {
            "normal": lambda: rng.normal(10.0, 3.0, size=k * per_shard),
            "exponential": lambda: rng.exponential(2.0, size=k * per_shard),
            "uniform": lambda: rng.uniform(-5.0, 5.0, size=k * per_shard),
        }[dist]()
        merged = QuantileSketch()
        for shard in np.array_split(sample, k):
            sk = QuantileSketch()
            for v in shard:
                sk.observe(float(v))
            assert sk.spilled
            merged.merge(sk)
        assert merged.count == sample.size
        ordered = np.sort(sample)
        for q in (0.5, 0.9, 0.95, 0.99):
            est = merged.quantile(q)
            rank = np.searchsorted(ordered, est) / (sample.size - 1)
            assert abs(rank - q) <= 0.05, (
                f"{dist} q={q}: est {est:.4f} sits at rank {rank:.4f}"
            )

    def test_noop_twin_and_disabled_bundle(self):
        assert math.isnan(DISABLED.sketch("x").quantile(0.5))
        assert DISABLED.sketch("x").count == 0
        assert math.isnan(DISABLED.latency_quantile(0.99))
        report = DISABLED.health()
        assert isinstance(report, HealthReport)
        assert report.ok and not report.enabled


# ------------------------------------------------------------ slow-query log


class TestSlowQueryLog:
    def _fill(self, log):
        for elapsed in (0.5, 0.9, 0.1, 0.7, 0.3):
            log.observe("search", "p", elapsed)

    def test_keep_newest_is_arrival_ring(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=3, keep="newest")
        self._fill(log)
        assert [e.elapsed_seconds for e in log.entries] == [0.1, 0.7, 0.3]
        assert log.recorded == 5 and log.observed == 5

    def test_keep_slowest_keeps_record_holders(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=3, keep="slowest")
        self._fill(log)
        assert sorted(e.elapsed_seconds for e in log.entries) == [0.5, 0.7, 0.9]
        assert log.recorded == 5  # all five crossed the threshold
        with pytest.raises(ValueError):
            SlowQueryLog(keep="fastest")

    def test_threshold_provider_overrides_static(self):
        threshold = [0.5]
        log = SlowQueryLog(
            threshold_seconds=0.1, threshold_provider=lambda: threshold[0]
        )
        assert not log.observe("search", "p", 0.2)
        threshold[0] = float("nan")  # warming up -> static threshold rules
        assert log.observe("search", "p", 0.2)
        assert log.entries[-1].threshold_seconds == 0.1

    def test_auto_threshold_tracks_streaming_p99(self):
        from repro.core.types import SearchStats

        obs = Observability(tracing=False, slow_query_seconds="auto")
        stats = SearchStats()
        for _ in range(50):
            obs.record_query("search", "s", stats, elapsed_seconds=0.01)
        assert obs.slow_log.recorded == 0  # nothing is "slow" yet
        obs.record_query("search", "s", stats, elapsed_seconds=10.0)
        assert obs.slow_log.recorded == 1
        assert obs.slow_log.entries[-1].elapsed_seconds == 10.0


# ------------------------------------------------------ prometheus escaping


def test_prometheus_label_value_escaping():
    reg = MetricsRegistry()
    reg.counter("esc_total", 'help with \\ backslash\nand newline').inc(
        path='a"b\\c\nd'
    )
    text = reg.render_prometheus()
    assert '# HELP esc_total help with \\\\ backslash\\nand newline' in text
    assert 'esc_total{path="a\\"b\\\\c\\nd"} 1' in text
    assert "\nand newline" not in text  # no raw newline inside a line


def test_histogram_quantile_is_bucket_resolution():
    reg = MetricsRegistry()
    hist = reg.histogram("h", buckets=(0.1, 1.0))
    for v in (0.05, 0.2, 0.3, 50.0):
        hist.observe(v)
    # The tail estimate clamps to the last finite bound: the documented
    # failure mode the streaming sketch exists to fix.
    assert hist.quantile(0.99) == 1.0


# ------------------------------------------------------------- the auditor


def _degraded_ivf_db(n=1200, dim=16, seed=3, **obs_kwargs):
    """IVF database whose nearest cells (for the test queries) were
    emptied by deletes-without-rebuild: probed lists stay probed (the
    centroids don't move) but hold only tombstones, so the true
    neighbors now live in unprobed cells — recall collapses silently."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(12, dim)) * 3.0
    assign = rng.integers(0, 12, size=n)
    vectors = (centers[assign] + rng.normal(size=(n, dim))).astype(np.float32)
    obs = Observability(**obs_kwargs) if obs_kwargs else None
    db = VectorDatabase(dim=dim, observability=obs)
    db.insert_many(vectors)
    db.create_index("ivf", "ivf_flat", nlist=16, nprobe=2, seed=0)
    queries = (
        vectors[rng.integers(0, n, size=40)]
        + 0.05 * rng.normal(size=(40, dim))
    ).astype(np.float32)
    index = db.indexes["ivf"]
    victim_cells = set()
    for q in queries:
        victim_cells.update(int(c) for c in index._probe_cells(q, 2))
    victims = np.concatenate(
        [index._ids[index._cells[c]] for c in sorted(victim_cells)]
    )
    for vid in np.unique(victims):
        db.delete(int(vid))
    plan = QueryPlan("index_scan", "ivf")
    return db, queries, plan


class TestRecallAuditor:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecallAuditor(fraction=1.5)
        with pytest.raises(ValueError):
            RecallAuditor(fraction=0.5, k=0)

    def test_audited_recall_matches_offline_bench(self):
        """Acceptance: audited recall@10 on a degraded index matches the
        offline bench `mean_recall` within ±0.05 (computed here through
        the independent bench-metrics path: exact_ground_truth over the
        live rows, recall_at_k per query)."""
        db, queries, plan = _degraded_ivf_db(audit_fraction=1.0, audit_k=10)
        results = [db.search(q, k=10, plan=plan) for q in queries]
        auditor = db.observability.auditor
        assert auditor.audited == len(queries)

        live = np.flatnonzero(db.collection.alive)
        score = EuclideanScore()
        truth = live[
            exact_ground_truth(db.collection.vectors[live], queries, 10, score)
        ]
        offline = float(np.mean([
            recall_at_k([h.id for h in r.hits], truth[i])
            for i, r in enumerate(results)
        ]))
        online = auditor.window_mean_recall()
        assert offline < 0.7  # the degradation is real
        assert abs(online - offline) <= 0.05

    def test_sampling_is_seed_deterministic(self):
        runs = []
        for _ in range(2):
            db, queries, plan = _degraded_ivf_db(
                audit_fraction=0.5, audit_seed=11
            )
            for q in queries:
                db.search(q, k=10, plan=plan)
            a = db.observability.auditor
            runs.append((a.considered, a.audited,
                         tuple(r.recall for r in a.recent)))
        assert runs[0] == runs[1]
        assert 0 < runs[0][1] < runs[0][0]  # a strict subset was sampled

        db, queries, plan = _degraded_ivf_db(audit_fraction=0.5, audit_seed=99)
        for q in queries:
            db.search(q, k=10, plan=plan)
        other = db.observability.auditor
        assert (other.audited, tuple(r.recall for r in other.recent)) != runs[0][1:]

    def test_audit_cost_never_pollutes_query_path(self):
        """Acceptance: audit scans are charged to audit_* metrics only —
        per-query SearchStats and the query-path metrics are identical
        with auditing on and off."""
        audited_stats, plain_stats = [], []
        registries = {}
        for label, fraction in (("audited", 1.0), ("plain", 0.0)):
            kwargs = {"audit_fraction": fraction} if fraction else {}
            db, queries, plan = _degraded_ivf_db(
                **(kwargs | {"tracing": True})
            )
            sink = audited_stats if fraction else plain_stats
            for q in queries:
                result = db.search(q, k=10, plan=plan)
                sink.append((
                    result.stats.distance_computations,
                    result.stats.candidates_examined,
                    result.stats.nodes_visited,
                ))
            registries[label] = db.observability.metrics
        assert audited_stats == plain_stats

        on, off = registries["audited"], registries["plain"]
        # Query-path accounting is identical...
        assert (on.get("vdbms_query_seconds").count(kind="search")
                == off.get("vdbms_query_seconds").count(kind="search") == 40)
        assert (on.get("vdbms_distance_computations_total").total()
                == off.get("vdbms_distance_computations_total").total())
        # ...and every audit cost lives in its own namespace.
        assert off.get("vdbms_audit_queries_total") is None
        assert on.get("vdbms_audit_queries_total").total() == 40
        assert on.get("vdbms_audit_distance_computations_total").total() > 0
        assert on.get("vdbms_audit_seconds_total").total() > 0
        assert on.get("vdbms_audit_recall").count(
            collection="default", strategy="index_scan", index="ivf"
        ) == 40

    def test_audit_honors_predicate_mask(self):
        rng = np.random.default_rng(0)
        from repro import Field

        db = VectorDatabase(
            dim=8, observability=Observability(audit_fraction=1.0)
        )
        db.insert_many(
            rng.normal(size=(200, 8)).astype(np.float32),
            [{"category": i % 2} for i in range(200)],
        )
        db.search(
            rng.normal(size=8).astype(np.float32), k=5,
            predicate=Field("category") == 1,
        )
        auditor = db.observability.auditor
        assert auditor.audited == 1
        record = auditor.recent[-1]
        assert all(i % 2 == 1 for i in record.exact)
        # Exact scan over the filtered rows agrees with the exact path.
        assert record.recall == 1.0


# ---------------------------------------------------------------- SLO alerts


class TestSLOMonitor:
    def test_slo_validation(self):
        with pytest.raises(ValueError):
            SLO("x", "recall", 0.9, op="==")
        with pytest.raises(ValueError):
            SLO("x", "recall", 0.9, budget=0.0)
        with pytest.raises(ValueError):
            BurnRatePolicy(long_window=5, short_window=10)
        with pytest.raises(ValueError):
            SLOMonitor([SLO("a", "recall", 0.9), SLO("a", "latency", 1.0)])

    def test_burn_alert_fires_and_clears(self):
        tracer = Tracer()
        monitor = SLOMonitor(
            [SLO("recall@10", "recall", 0.9, budget=0.05)],
            metrics=MetricsRegistry(), tracer=tracer,
            # Pin the single fast-burn policy: with the default pair the
            # slow_burn window (60 obs) would legitimately keep firing
            # through the short recovery this test drives.
            policies=(BurnRatePolicy(
                long_window=120, short_window=15, factor=6.0,
                severity="fast_burn",
            ),),
        )
        for _ in range(30):
            monitor.observe("recall", 0.99)
        assert monitor.ok and not monitor.active_alerts()
        for _ in range(15):
            monitor.observe("recall", 0.4)
        assert not monitor.ok
        [alert] = monitor.active_alerts()
        assert alert.slo == "recall@10" and alert.severity == "fast_burn"
        assert alert.burn_rate_short >= 6.0
        assert monitor.metrics.counter("vdbms_slo_breaches_total").value(
            slo="recall@10", severity="fast_burn"
        ) == 1.0
        events = [e for s in tracer.spans for e in s.events]
        assert any(e.name == "burn_rate_alert" for e in events)
        # Sustained recovery clears the alert (short window stops burning)
        # without re-firing a duplicate while it is active.
        for _ in range(20):
            monitor.observe("recall", 0.99)
        assert monitor.ok and not monitor.active_alerts()
        assert not monitor.alerts[0].active  # history keeps the record
        status = monitor.status()[0]
        assert status.ok and status.observations == 65

    def test_latency_ceiling_objective(self):
        monitor = SLOMonitor([SLO("p99", "latency", 0.01, op="<=",
                                  budget=0.1)])
        for _ in range(20):
            monitor.observe("latency", 0.001)
        monitor.observe("latency", 0.5)
        assert monitor.ok  # one excursion is inside budget
        for _ in range(40):
            monitor.observe("latency", 0.5)
        assert not monitor.ok

    def test_induced_recall_drop_alerts_in_health_and_trace(self):
        """Acceptance: recall drop below SLO 0.9 -> burn-rate alert
        visible in Database.health() and as a trace event."""
        db, queries, plan = _degraded_ivf_db(
            audit_fraction=1.0,
            slos=[SLO("recall@10", "recall", 0.9, budget=0.05)],
        )
        for q in queries:
            db.search(q, k=10, plan=plan)
        report = db.health()
        assert not report.ok
        assert any(a.active and a.slo == "recall@10" for a in report.alerts)
        assert report.database["items"] < 1200  # the deletes happened
        assert report.audit["audited"] == len(queries)
        rendered = report.render()
        assert "ALERTING" in rendered and "recall@10" in rendered
        spans = db.observability.tracer.spans
        alert_spans = [s for s in spans if s.name == "slo_alert"]
        assert alert_spans, "burn-rate alert must surface as a trace span"
        assert any(
            e.name == "burn_rate_alert" for s in alert_spans for e in s.events
        )
        as_dict = report.to_dict()
        assert as_dict["ok"] is False and as_dict["alerts"]

    def test_healthy_database_health_report(self):
        rng = np.random.default_rng(1)
        db = VectorDatabase(
            dim=8,
            observability=Observability(
                audit_fraction=1.0,
                slos=[SLO("recall@10", "recall", 0.9, budget=0.05)],
            ),
        )
        db.insert_many(rng.normal(size=(300, 8)).astype(np.float32))
        for _ in range(20):
            db.search(rng.normal(size=8).astype(np.float32), k=5)
        report = db.health()
        assert report.ok and report.enabled
        assert report.latency["search"]["count"] == 20.0
        assert report.audit["window_mean_recall"] == 1.0
        assert "OK" in report.render()


# ----------------------------------------------------- distributed sketches


def test_cluster_per_shard_sketches_merge_at_gather():
    rng = np.random.default_rng(5)
    vectors = rng.normal(size=(400, 8)).astype(np.float32)
    obs = Observability(tracing=False)
    cluster = DistributedSearchCluster(
        num_shards=4, index_type="flat", observability=obs
    )
    cluster.load(vectors)
    for _ in range(12):
        cluster.search(rng.normal(size=8).astype(np.float32), 5)
    per_shard_counts = [
        sk.count for sk in cluster._shard_sketches.values()
    ]
    assert len(per_shard_counts) == 4 and all(c == 12 for c in per_shard_counts)
    merged = cluster.latency_sketch()
    assert merged.count == sum(per_shard_counts)
    quantiles = cluster.latency_quantiles()
    assert quantiles["count"] == 48.0
    assert 0 < quantiles["p50"] <= quantiles["p99"]
    # The coordinator's own record_query feeds the bundle's sketch too.
    assert obs.sketch("distributed").count == 12


def test_cluster_sketches_reset_on_scale_out():
    rng = np.random.default_rng(6)
    cluster = DistributedSearchCluster(
        num_shards=2, index_type="flat", observability=Observability(
            tracing=False
        ),
    )
    cluster.load(rng.normal(size=(120, 8)).astype(np.float32))
    cluster.search(rng.normal(size=8).astype(np.float32), 3)
    assert cluster.latency_sketch().count
    cluster.scale_out(4)
    assert cluster.latency_sketch().count == 0


def test_pager_locality_sketch_and_hit_ratio():
    from repro.storage.pager import PagedVectorStore

    obs = Observability(tracing=False)
    store = PagedVectorStore(dim=8, buffer_pool_pages=4, observability=obs)
    rng = np.random.default_rng(7)
    store.append(rng.normal(size=(64, 8)).astype(np.float32))
    store.get_many(list(range(16)))
    store.get_many(list(range(16)))  # second read: buffer-pool hits
    sketch = obs.sketch("page_batch_span")
    assert sketch.count == 2 and sketch.max >= 1.0
    ratio = obs.metrics.get("vdbms_buffer_pool_hit_ratio").value()
    assert 0.0 < ratio <= 1.0
