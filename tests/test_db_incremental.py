"""Tests for the database incremental-search facade."""

import pytest

from repro.core.database import VectorDatabase
from repro.core.errors import PlanningError
from repro.hybrid.predicates import Field


@pytest.fixture
def db(hybrid_dataset):
    db = VectorDatabase(dim=hybrid_dataset.dim)
    db.insert_many(hybrid_dataset.train, hybrid_dataset.attributes)
    db.create_index("g", "hnsw", m=8, ef_construction=48, seed=0)
    return db


class TestDbIncremental:
    def test_pages_continue_ranking(self, db, hybrid_dataset):
        q = hybrid_dataset.queries[0]
        cursor = db.incremental_search(q)
        first = cursor.next_batch(5)
        second = cursor.next_batch(5)
        one_shot = db.search(q, k=10)
        paged_ids = [h.id for h in first + second]
        assert len(set(paged_ids) & set(one_shot.ids)) >= 8

    def test_with_predicate(self, db, hybrid_dataset):
        cursor = db.incremental_search(
            hybrid_dataset.queries[1], predicate=Field("rating") >= 3
        )
        page = cursor.next_batch(8)
        ratings = db.collection.columns["rating"]
        assert all(ratings[h.id] >= 3 for h in page)

    def test_named_index(self, db, hybrid_dataset):
        cursor = db.incremental_search(hybrid_dataset.queries[0], index="g")
        assert len(cursor.next_batch(3)) == 3

    def test_unknown_index(self, db, hybrid_dataset):
        with pytest.raises(PlanningError, match="no index named"):
            db.incremental_search(hybrid_dataset.queries[0], index="nope")

    def test_requires_graph_index(self, hybrid_dataset):
        db = VectorDatabase(dim=hybrid_dataset.dim)
        db.insert_many(hybrid_dataset.train[:50], hybrid_dataset.attributes[:50])
        db.create_index("ivf", "ivf_flat", nlist=4)
        with pytest.raises(PlanningError, match="graph index"):
            db.incremental_search(hybrid_dataset.queries[0])

    def test_result_repr(self, db, hybrid_dataset):
        result = db.search(hybrid_dataset.queries[0], k=8)
        text = repr(result)
        assert "SearchResult" in text
        assert "+3" in text  # 8 hits, 5 previewed
