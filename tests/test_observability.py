"""Observability subsystem: tracing, metrics, profiling, exporters.

Covers the PR-3 acceptance criteria:

* ``explain_analyze`` on a hybrid query returns an operator tree whose
  per-operator self-stats sum to the query totals *exactly*;
* all four executor paths populate ``SearchStats.elapsed_seconds``;
* a distributed query under injected faults produces a trace carrying
  ``retry`` and ``failover`` events tagged with the fault reason;
* property tests for ``SearchStats.merge`` and span-tree shape;
* the metrics registry renders scrapeable Prometheus text;
* the disabled path is a true no-op (no spans, no metrics).
"""

import json
import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    FaultPlan,
    Field,
    Observability,
    SearchStats,
    VectorDatabase,
    validate_span_tree,
    write_metrics_text,
    write_trace_jsonl,
)
from repro.distributed.cluster import DistributedSearchCluster
from repro.observability import (
    DISABLED,
    STAT_FIELDS,
    MetricsRegistry,
    SlowQueryLog,
    Tracer,
    spans_to_jsonl,
)
from repro.reliability.faults import CRASH, FLAKY, FaultSpec


def make_db(n=300, dim=12, seed=0, **obs_kwargs):
    rng = np.random.default_rng(seed)
    db = VectorDatabase(dim=dim, observability=Observability(**obs_kwargs))
    db.insert_many(
        rng.random((n, dim), dtype=np.float32),
        [{"category": i % 4, "price": float(i)} for i in range(n)],
    )
    db.create_index("g", "hnsw", m=8)
    rng_q = np.random.default_rng(seed + 1)
    return db, rng_q.random(dim, dtype=np.float32)


# --------------------------------------------------------- stats satellites


class TestSearchStatsMerge:
    counters = st.fixed_dictionaries({f: st.integers(0, 10_000) for f in STAT_FIELDS})

    @staticmethod
    def _stats(counters, partial=False, coverage=1.0, merged=1):
        s = SearchStats(partial=partial, coverage_fraction=coverage)
        for f, v in counters.items():
            setattr(s, f, v)
        s.merged_count = merged
        return s

    @given(a=counters, b=counters)
    @settings(max_examples=100, deadline=None)
    def test_counter_merge_commutes(self, a, b):
        left = self._stats(a)
        left.merge(self._stats(b))
        right = self._stats(b)
        right.merge(self._stats(a))
        for f in STAT_FIELDS:
            assert getattr(left, f) == a[f] + b[f]
            assert getattr(left, f) == getattr(right, f)
        assert left.merged_count == right.merged_count == 2

    @given(pa=st.booleans(), pb=st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_partial_or_propagation(self, pa, pb):
        s = self._stats({f: 0 for f in STAT_FIELDS}, partial=pa)
        s.merge(self._stats({f: 0 for f in STAT_FIELDS}, partial=pb))
        assert s.partial is (pa or pb)

    @given(
        ca=st.floats(0.0, 1.0, allow_nan=False),
        cb=st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_coverage_min_propagation(self, ca, cb):
        s = self._stats({f: 0 for f in STAT_FIELDS}, coverage=ca)
        s.merge(self._stats({f: 0 for f in STAT_FIELDS}, coverage=cb))
        assert s.coverage_fraction == min(ca, cb)

    @given(ma=st.integers(1, 50), mb=st.integers(1, 50), v=st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_merged_count_and_averages(self, ma, mb, v):
        a = self._stats({f: v for f in STAT_FIELDS}, merged=ma)
        b = self._stats({f: v for f in STAT_FIELDS}, merged=mb)
        a.merge(b)
        assert a.merged_count == ma + mb
        assert a.averages()["distance_computations"] == pytest.approx(
            2 * v / (ma + mb)
        )

    def test_repr_mentions_merged_count(self):
        s = SearchStats(distance_computations=3)
        s.merge(SearchStats(distance_computations=4))
        assert "merged=2" in repr(s)
        assert "dist=7" in repr(s)


class TestElapsedSeconds:
    """Satellite: every executor path populates elapsed_seconds."""

    def test_search_path(self):
        db, q = make_db()
        result = db.search(q, k=5, predicate=Field("category") == 1)
        assert result.stats.elapsed_seconds > 0

    def test_range_path(self):
        db, q = make_db()
        result = db.range_search(q, radius=2.0)
        assert result.stats.elapsed_seconds > 0

    def test_batch_path(self):
        db, _ = make_db()
        batch = np.random.default_rng(3).random((4, 12), dtype=np.float32)
        for result in db.batch_search(batch, k=3):
            assert result.stats.elapsed_seconds > 0

    def test_multivector_path(self):
        db, _ = make_db()
        vectors = np.random.default_rng(4).random((3, 12), dtype=np.float32)
        result = db.multi_vector_search(vectors, k=3)
        assert result.stats.elapsed_seconds > 0

    def test_multi_score_path(self):
        db, q = make_db()
        for result in db.multi_score_search(q, k=3).values():
            assert result.stats.elapsed_seconds > 0

    def test_node_search_reports_simulated_latency(self):
        from repro.distributed.node import SearchNode

        node = SearchNode("n0", index_type="flat")
        rng = np.random.default_rng(5)
        node.load(rng.random((50, 8), dtype=np.float32), np.arange(50))
        _, latency, stats = node.search(rng.random(8, dtype=np.float32), 3)
        assert stats.elapsed_seconds == latency > 0


# ------------------------------------------------------------ span trees


def _tree_shapes():
    """Recursive list-of-lists: each element is a subtree child list."""
    return st.recursive(
        st.just([]), lambda kids: st.lists(kids, max_size=3), max_leaves=12
    )


def _realize(tracer, shape, parent=None, name="root"):
    span = tracer.start_span(name) if parent is None else parent.child(name)
    with span:
        for i, child_shape in enumerate(shape):
            _realize(tracer, child_shape, parent=span, name=f"{name}.{i}")
    return span


class TestSpanTreeProperties:
    @given(shape=_tree_shapes())
    @settings(max_examples=100, deadline=None)
    def test_generated_trees_are_well_formed(self, shape):
        clock = iter(range(100_000))
        tracer = Tracer(clock=lambda: float(next(clock)))
        _realize(tracer, shape)
        assert validate_span_tree(tracer.spans) == []

    def test_unfinished_span_is_flagged(self):
        tracer = Tracer()
        span = tracer.start_span("open")
        child = span.child("inner")
        child.finish()
        # Parent never finished -> not collected; child references it.
        problems = validate_span_tree(tracer.spans)
        assert any("unknown parent" in p for p in problems)

    def test_escaping_interval_is_flagged(self):
        tracer = Tracer()
        parent = tracer.start_span("p")
        child = parent.child("c")
        parent.finish()
        child.finish()  # ends after its parent
        assert any(
            "escapes parent" in p for p in validate_span_tree(tracer.spans)
        )

    def test_stats_delta_attribution(self):
        tracer = Tracer()
        stats = SearchStats()
        with tracer.start_span("outer").attach_stats(stats) as outer:
            stats.distance_computations += 5
            with outer.child("inner").attach_stats(stats):
                stats.distance_computations += 7
        outer_span, = tracer.roots()
        inner_span = next(s for s in tracer.spans if s.name == "inner")
        assert outer_span.stats_delta["distance_computations"] == 12
        assert inner_span.stats_delta["distance_computations"] == 7

    def test_real_query_traces_are_well_formed(self):
        db, q = make_db()
        db.search(q, k=5, predicate=Field("category") == 1)
        db.search(q, k=5)
        db.batch_search(np.stack([q, q]), k=3)
        assert validate_span_tree(db.observability.tracer.spans) == []


# --------------------------------------------------------- explain analyze


class TestExplainAnalyze:
    @pytest.mark.parametrize(
        "strategy", ["pre_filter", "block_first", "post_filter", "visit_first"]
    )
    def test_hybrid_attribution_is_exact(self, strategy):
        from repro.core.planner import QueryPlan

        db, q = make_db()
        plan = QueryPlan(
            strategy, None if strategy == "pre_filter" else "g",
            oversample=4.0 if strategy == "post_filter" else None,
        )
        profile = db.explain_analyze(
            vector=q, k=5, predicate=Field("category") == 1, plan=plan
        )
        # Acceptance criterion: per-operator self deltas sum to the
        # top-level totals with exact integer equality.
        assert profile.attribution_residual() == {f: 0 for f in STAT_FIELDS}
        # And the root totals equal the result's own counters.
        for f in STAT_FIELDS:
            assert profile.root.stats_total[f] == getattr(
                profile.result.stats, f
            )

    def test_auto_plan_records_candidates(self):
        db, q = make_db()
        profile = db.explain_analyze(
            vector=q, k=5, predicate=Field("category") == 1
        )
        assert profile.plan
        assert len(profile.candidates) >= 2  # hybrid: several strategies
        assert profile.attribution_residual() == {f: 0 for f in STAT_FIELDS}

    def test_render_and_json(self):
        db, q = make_db()
        profile = db.explain_analyze(
            vector=q, k=5, predicate=Field("category") == 1
        )
        text = profile.render()
        assert "EXPLAIN ANALYZE" in text
        assert "query" in text
        payload = json.loads(profile.to_json())
        assert payload["tree"]["name"] == "query"
        assert payload["hits"] == profile.result.ids

    def test_operator_children_present(self):
        from repro.core.planner import QueryPlan

        db, q = make_db()
        profile = db.explain_analyze(
            vector=q, k=5, predicate=Field("category") == 1,
            plan=QueryPlan("block_first", "g"),
        )
        op = profile.root.find("op:block_first")
        assert op is not None
        assert op.find("bitmask") is not None
        index_op = op.find("index:hnsw")  # span name carries the index type
        assert index_op is not None and index_op.attributes["family"] == "graph"

    def test_caller_observability_restored(self):
        db, q = make_db()
        before = db.observability
        db.explain_analyze(vector=q, k=3)
        assert db.observability is before
        assert db._executor.observability is before

    def test_works_on_disabled_database(self):
        rng = np.random.default_rng(7)
        db = VectorDatabase(dim=8)  # observability = DISABLED
        db.insert_many(rng.random((50, 8), dtype=np.float32),
                       [{"category": i % 2} for i in range(50)])
        profile = db.explain_analyze(vector=rng.random(8, dtype=np.float32), k=3)
        assert profile.attribution_residual() == {f: 0 for f in STAT_FIELDS}
        assert db.observability is DISABLED


# ------------------------------------------------------------- distributed


class TestDistributedTracing:
    def _cluster(self, faults, **kwargs):
        rng = np.random.default_rng(11)
        obs = Observability(slow_query_seconds=0.0)
        cluster = DistributedSearchCluster(
            num_shards=3, replication_factor=2, index_type="flat",
            strict=False, injector=FaultPlan(faults=faults).injector(),
            observability=obs, **kwargs,
        )
        cluster.load(rng.random((300, 10), dtype=np.float32))
        return cluster, obs, rng

    def test_crash_and_flaky_produce_retry_and_failover_events(self):
        # _pick_replica rotates by one before the first query, so
        # replica1 is contacted first: fault it to force the paths.
        cluster, obs, rng = self._cluster((
            FaultSpec(CRASH, target="shard0-replica1", at_op=0),
            FaultSpec(FLAKY, target="shard1-replica1", at_op=0,
                      duration_ops=1),
        ))
        result, dstats = cluster.search(rng.random(10, dtype=np.float32), k=5)
        assert dstats.failovers >= 1 and dstats.retries >= 1
        events = {
            e.name: e.attributes
            for s in obs.tracer.spans for e in s.events
        }
        assert events["failover"]["reason"] == "crashed (injected)"
        assert events["retry"]["transient"] is True
        assert validate_span_tree(obs.tracer.spans) == []
        assert obs.metrics.counter("vdbms_failovers_total").total() >= 1
        assert obs.metrics.counter("vdbms_replica_retries_total").total() >= 1

    def test_degraded_query_is_traced_and_counted(self):
        # Crash every replica of shard 0: the query degrades.
        cluster, obs, rng = self._cluster((
            FaultSpec(CRASH, target="shard0-replica*", at_op=0),
        ))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result, dstats = cluster.search(
                rng.random(10, dtype=np.float32), k=5
            )
        assert dstats.shards_failed == 1 and result.stats.partial
        root = next(
            s for s in obs.tracer.spans if s.name == "distributed_search"
        )
        assert root.attributes["shards_failed"] == 1
        assert 0 < root.attributes["coverage"] < 1
        failed = [
            s for s in obs.tracer.spans
            if s.name == "shard" and s.attributes.get("ok") is False
        ]
        assert failed and failed[0].attributes["reason"] == "no_replica"
        assert obs.metrics.counter("vdbms_degraded_queries_total").total() == 1
        assert obs.metrics.counter("vdbms_shard_failures_total").total() == 1
        # Simulated latency lands in the slow log, flagged simulated.
        assert any(entry.simulated for entry in obs.slow_log)

    def test_breaker_transition_events(self):
        # Only one replica per shard: repeated crashes trip the breaker.
        rng = np.random.default_rng(12)
        obs = Observability()
        cluster = DistributedSearchCluster(
            num_shards=1, replication_factor=1, index_type="flat",
            strict=False, breaker_failure_threshold=2,
            injector=FaultPlan(faults=(
                FaultSpec(CRASH, target="shard0-replica0", at_op=0,
                          duration_ops=4),
            )).injector(),
            observability=obs,
        )
        cluster.load(rng.random((60, 10), dtype=np.float32))
        q = rng.random(10, dtype=np.float32)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for _ in range(3):
                cluster.search(q, k=3)
        transitions = [
            e for s in obs.tracer.spans for e in s.events
            if e.name == "breaker_transition"
        ]
        assert any(e.attributes["to"] == "open" for e in transitions)
        assert obs.metrics.counter(
            "vdbms_breaker_transitions_total"
        ).value(to="open") >= 1


# ------------------------------------------------------- metrics and export


class TestMetricsAndExport:
    def test_prometheus_rendering_shape(self):
        db, q = make_db()
        db.search(q, k=5, predicate=Field("category") == 1)
        text = db.observability.metrics.render_prometheus()
        assert "# TYPE vdbms_queries_total counter" in text
        assert 'vdbms_queries_total{kind="search"' in text
        assert "# TYPE vdbms_query_seconds histogram" in text
        assert "vdbms_query_seconds_bucket" in text
        assert 'le="+Inf"' in text

    def test_registry_type_conflict(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(TypeError):
            registry.gauge("x_total")

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("y_total").inc(-1)

    def test_histogram_quantile_and_counts(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(55.55)
        assert h.quantile(0.25) == 0.1

    def test_trace_jsonl_roundtrip(self, tmp_path):
        db, q = make_db()
        db.search(q, k=5, predicate=Field("category") == 1)
        path = tmp_path / "trace.jsonl"
        n = write_trace_jsonl(db.observability.tracer.spans, path)
        lines = path.read_text().strip().splitlines()
        assert n == len(lines) == len(db.observability.tracer.spans)
        parsed = [json.loads(line) for line in lines]
        root = next(p for p in parsed if p["name"] == "query")
        assert root["stats"]["distance_computations"] > 0

    def test_metrics_text_export(self, tmp_path):
        db, q = make_db()
        db.search(q, k=3)
        path = tmp_path / "metrics.txt"
        write_metrics_text(db.observability.metrics, path)
        assert "vdbms_queries_total" in path.read_text()

    def test_jsonl_handles_numpy_attributes(self):
        tracer = Tracer()
        with tracer.start_span("s", value=np.float32(0.5)):
            pass
        payload = json.loads(spans_to_jsonl(tracer.spans))
        assert payload["attributes"]["value"] == 0.5

    def test_slow_query_log(self):
        log = SlowQueryLog(threshold_seconds=0.01, capacity=2)
        assert not log.observe("search", "p", 0.001)
        assert log.observe("search", "p", 0.02, SearchStats())
        for _ in range(5):
            log.observe("search", "p", 0.02)
        assert len(log) == 2  # bounded ring
        assert log.recorded == 6
        assert "SlowQuery" in log.render()

    def test_slow_query_threshold_via_record_query(self):
        db, q = make_db(slow_query_seconds=0.0)
        db.search(q, k=3)
        assert len(db.observability.slow_log) == 1
        assert (
            db.observability.metrics.counter("vdbms_slow_queries_total").total()
            == 1
        )


# ---------------------------------------------------------- disabled no-op


class TestDisabledPath:
    def test_disabled_database_records_nothing(self):
        rng = np.random.default_rng(9)
        db = VectorDatabase(dim=8)
        db.insert_many(rng.random((80, 8), dtype=np.float32),
                       [{"category": i % 2} for i in range(80)])
        db.create_index("g", "hnsw", m=6)
        db.search(rng.random(8, dtype=np.float32), k=3,
                  predicate=Field("category") == 0)
        assert db.observability is DISABLED
        assert len(db.observability.tracer.spans) == 0
        assert db.observability.metrics.render_prometheus() == ""

    def test_disabled_results_match_enabled(self):
        db_off, q = make_db(seed=21)
        db_off.set_observability(None)
        db_on, _ = make_db(seed=21)
        pred = Field("category") == 1
        assert (
            db_off.search(q, k=5, predicate=pred).ids
            == db_on.search(q, k=5, predicate=pred).ids
        )

    def test_noop_singletons_are_inert(self):
        from repro.observability import NOOP_METRICS, NOOP_SPAN

        with NOOP_SPAN.child("x", a=1).attach_stats(SearchStats()) as s:
            s.set(b=2).event("e")
        assert NOOP_SPAN.attributes == {}
        NOOP_METRICS.counter("c").inc(5)
        assert NOOP_METRICS.counter("c").value() == 0.0
        assert NOOP_METRICS.render_prometheus() == ""

    def test_set_observability_roundtrip(self):
        db, q = make_db()
        obs = db.observability
        db.set_observability(None)
        db.search(q, k=3)
        assert len(obs.tracer.spans) == 0
        db.set_observability(obs)
        db.search(q, k=3)
        assert len(obs.tracer.spans) > 0
