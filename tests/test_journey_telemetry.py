"""Journey telemetry: time-series windows, snapshots, span links, and
anomaly-detector determinism.

Property-based and regression coverage for the serving tier's
observability pipeline:

* ``QuantileSketch.snapshot()`` / ``delta()`` are pure reads — the live
  sketch is bit-identical afterwards (pickled-state regression, both
  regimes);
* merging k per-window :class:`TimeWindow` objects is equivalent to one
  wide window — exactly in the buffer regime, within the documented
  0.05 rank error once sketches spill;
* under request coalescing every member's ``serve_request`` root links
  to exactly one batch span, both link directions resolve, and
  ``validate_span_links`` is clean for arbitrary seeded workloads;
* the anomaly monitor is deterministic: identical runs produce
  identical anomaly lists (down to exemplar trace ids), and a steady
  healthy workload never alarms;
* latency exemplars round-trip: histogram bucket -> trace id -> journey.
"""

import math
import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.database import VectorDatabase
from repro.core.types import SearchStats
from repro.observability import (
    MetricsRegistry,
    Observability,
    QuantileSketch,
    TimeSeriesStore,
    TimeWindow,
    validate_span_links,
)
from repro.serving import (
    ServiceModel,
    ServingFrontDoor,
    TenantSpec,
    TrafficGenerator,
)

# --------------------------------------------------------------------------
# snapshot()/delta() purity (the scrape path must never perturb live state)
# --------------------------------------------------------------------------


class TestSketchSnapshotPurity:
    def test_snapshot_and_delta_are_pure_reads_buffer_regime(self):
        rng = np.random.default_rng(0)
        sketch = QuantileSketch()
        for x in rng.exponential(1.0, 50):
            sketch.observe(float(x))
        prev = sketch.snapshot()
        tail = [float(x) for x in rng.exponential(1.0, 40)]
        for x in tail:
            sketch.observe(x)
        before = pickle.dumps(sketch)
        window = sketch.delta(prev)
        sketch.snapshot().quantile(0.9)
        assert pickle.dumps(sketch) == before  # bit-identical live state
        # Buffer regime: the window is the exact buffer tail.
        assert window.count == len(tail)
        for q in (0.1, 0.5, 0.9):
            assert math.isclose(
                window.quantile(q),
                float(np.quantile(tail, q)),
                rel_tol=1e-9,
                abs_tol=1e-12,
            )

    def test_snapshot_and_delta_are_pure_reads_spilled_regime(self):
        rng = np.random.default_rng(1)
        sketch = QuantileSketch(buffer_size=32)
        for x in rng.lognormal(0.0, 0.5, 300):
            sketch.observe(float(x))
        assert sketch.spilled
        prev = sketch.snapshot()
        for x in rng.lognormal(0.0, 0.5, 200):
            sketch.observe(float(x))
        before = pickle.dumps(sketch)
        window = sketch.delta(prev)
        sketch.snapshot()
        assert pickle.dumps(sketch) == before
        assert window.count == 200  # count stays exact even when synthetic

    def test_delta_rejects_snapshot_from_the_future(self):
        sketch = QuantileSketch()
        for x in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0):
            sketch.observe(x)
        ahead = sketch.snapshot()
        fresh = QuantileSketch()
        with pytest.raises(ValueError):
            fresh.delta(ahead)


# --------------------------------------------------------------------------
# window merge == wide window
# --------------------------------------------------------------------------


def _scrape_per_window(batches, **sketch_kwargs):
    """Feed each batch into its own window; return the closed windows."""
    metrics = MetricsRegistry()
    store = TimeSeriesStore(metrics, width_seconds=1.0)
    sketch = QuantileSketch(**sketch_kwargs)
    store.track_sketch("lat", sketch)
    counter = metrics.counter("events_total", "test counter")
    for i, batch in enumerate(batches):
        for x in batch:
            sketch.observe(x)
            counter.inc(kind="obs")
        store.scrape(float(i + 1))
    return store.last(len(batches))


class TestWindowMerge:
    @given(
        batches=st.lists(
            st.lists(
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=1,
                max_size=20,
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_wide_window_in_buffer_regime(self, batches):
        windows = _scrape_per_window(batches)
        merged = TimeWindow.merge(windows)
        everything = [x for batch in batches for x in batch]
        assert merged.counter_total("events_total") == len(everything)
        assert merged.start == 0.0 and merged.end == len(batches)
        wide = merged.sketch("lat")
        assert wide is not None and wide.count == len(everything)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert math.isclose(
                wide.quantile(q),
                float(np.quantile(everything, q)),
                rel_tol=1e-9,
                abs_tol=1e-9,
            )

    def test_merge_rank_error_within_documented_bound_when_spilled(self):
        # 4 windows x 1500 smooth lognormal samples through a 512-sample
        # buffer: every window sketch is synthetic and the merge adds
        # reconstruction error — the documented ceiling is 0.05 rank.
        rng = np.random.default_rng(7)
        batches = [
            [float(x) for x in rng.lognormal(0.0, 0.75, 1500)]
            for _ in range(4)
        ]
        windows = _scrape_per_window(batches)
        merged = TimeWindow.merge(windows).sketch("lat")
        everything = np.sort(np.concatenate([np.array(b) for b in batches]))
        n = len(everything)
        assert merged.count == n
        for q in (0.5, 0.9, 0.99):
            estimate = merged.quantile(q)
            rank = np.searchsorted(everything, estimate) / n
            assert abs(rank - q) <= 0.05, (q, estimate, rank)

    def test_empty_idle_windows_merge_harmlessly(self):
        metrics = MetricsRegistry()
        store = TimeSeriesStore(metrics, width_seconds=1.0)
        metrics.counter("events_total", "t").inc()
        assert len(store.advance(3.5)) == 3  # 2 idle windows closed too
        merged = store.merged(3)
        assert merged.counter_total("events_total") == 1.0


# --------------------------------------------------------------------------
# serving phase decomposition stays an exact partition
# --------------------------------------------------------------------------


class TestPhasePartition:
    @given(
        n=st.integers(1, 16),
        distances=st.integers(0, 10_000),
        nodes=st.integers(0, 1_000),
        pages=st.integers(0, 100),
        plan_cached=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_member_phases_sum_to_batch_phases(
        self, n, distances, nodes, pages, plan_cached
    ):
        model = ServiceModel(planning_seconds=5e-3)
        stats = [
            SearchStats(
                distance_computations=distances + i,
                nodes_visited=nodes,
                page_reads=pages,
            )
            for i in range(n)
        ]
        batch = model.phase_seconds(stats, plan_cached=plan_cached)
        summed: dict[str, float] = {}
        for s in stats:
            for phase, seconds in model.member_phase_seconds(
                s, n, plan_cached=plan_cached
            ).items():
                summed[phase] = summed.get(phase, 0.0) + seconds
        assert set(summed) == set(batch)
        for phase in batch:
            assert math.isclose(
                summed[phase], batch[phase], rel_tol=1e-9, abs_tol=1e-15
            )
        assert math.isclose(
            sum(batch.values()),
            model.batch_service_seconds(stats, plan_cached=plan_cached),
            rel_tol=1e-12,
        )


# --------------------------------------------------------------------------
# span links under coalescing
# --------------------------------------------------------------------------


def _serve_once(seed, telemetry=False, fault=False):
    """One small seeded front-door run; returns (db, fd, responses)."""
    rng = np.random.default_rng(3)
    db = VectorDatabase(dim=8, observability=Observability())
    db.insert_many(rng.standard_normal((200, 8)).astype(np.float32))
    fd = ServingFrontDoor(
        db,
        [TenantSpec("t", qps=500.0, burst=50.0, max_inflight=8, max_queue=64)],
        workers=1,
        coalesce_max=4,
        # Slow service so the backlog forces real coalescing.
        service_model=ServiceModel(base_seconds=5e-3),
        telemetry=telemetry,
    )
    trace = TrafficGenerator(
        ["t"], 8, rate=150.0, seed=seed, query_pool=8, fresh_fraction=0.5, k=5
    ).generate(1.0)
    responses = fd.run(trace)
    if fault:
        db.plan_cache = None
    more = TrafficGenerator(
        ["t"], 8, rate=150.0, seed=seed + 1, query_pool=8,
        fresh_fraction=0.5, k=5,
    ).generate(1.0, start_seconds=1.0)
    responses += fd.run(more)
    if telemetry:
        fd.monitor.tick(3.0)
    return db, fd, responses


class TestServingSpanLinks:
    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=8, deadline=None)
    def test_every_member_links_to_exactly_one_batch(self, seed):
        db, fd, responses = _serve_once(seed)
        spans = db.observability.tracer.spans
        assert validate_span_links(spans) == []
        roots = {s.trace_id: s for s in spans if s.name == "serve_request"}
        batches = [s for s in spans if s.name == "serve_batch"]
        batch_ids = {s.span_id for s in batches}
        executed = [r for r in responses if r.status == "ok"]
        assert executed
        for response in executed:
            root = roots[response.request.trace_id]
            outbound = [
                link
                for link in root.links
                if link.attributes.get("role") == "batch"
            ]
            assert len(outbound) == 1  # exactly one carrying batch
            assert outbound[0].span_id in batch_ids
        # Fan-in bookkeeping: each batch links back to `members` roots,
        # and at least one batch actually coalesced.
        for batch in batches:
            member_links = [
                link
                for link in batch.links
                if link.attributes.get("role") == "member"
            ]
            assert len(member_links) == batch.attributes["members"]
            for link in member_links:
                assert roots[link.trace_id].span_id == link.span_id
        assert any(b.attributes["members"] > 1 for b in batches)

    def test_terminal_requests_get_no_batch_link(self):
        db, fd, responses = _serve_once(seed=5)
        spans = db.observability.tracer.spans
        roots = {s.trace_id: s for s in spans if s.name == "serve_request"}
        for response in responses:
            if response.status in ("cache_hit", "rejected"):
                root = roots[response.request.trace_id]
                assert root.links == []
                assert root.end is not None  # terminal path closed it

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=8, deadline=None)
    def test_journey_phases_partition_latency(self, seed):
        # Every completed journey accounts for all of its latency —
        # including coalesced members, whose shared batch residency is
        # charged to coalesce_batch on top of their own work share.
        db, fd, responses = _serve_once(seed, telemetry=True)
        journeys = list(fd.journeys)
        assert journeys
        assert any(j.batch_size > 1 for j in journeys)
        for journey in journeys:
            assert math.isclose(
                journey.phase_total,
                journey.latency_seconds,
                rel_tol=1e-9,
                abs_tol=1e-12,
            )


# --------------------------------------------------------------------------
# anomaly-detector determinism
# --------------------------------------------------------------------------


def _scrub_wall_clock(window_dict):
    """Drop wall-clock self-timings from a window dict.

    The database times its *real* executions (``kind="search"`` /
    ``"batch"``) with the wall clock, so those sums legitimately vary
    between runs; the determinism contract covers everything on the
    simulated clock — including the serving-labeled series.
    """
    sums = window_dict["counters"].get("vdbms_query_seconds_sum")
    if sums:
        window_dict["counters"]["vdbms_query_seconds_sum"] = [
            s for s in sums if s["labels"].get("kind") == "serving"
        ]
    return window_dict


def _telemetry_fingerprint(seed, fault):
    db, fd, _ = _serve_once(seed, telemetry=True, fault=fault)
    return {
        "anomalies": fd.monitor.summary(),
        "windows": [
            _scrub_wall_clock(w.to_dict()) for w in fd.telemetry.last(4)
        ],
        "journeys": [j.to_dict() for j in fd.journeys],
    }


class TestDetectorDeterminism:
    def test_identical_runs_produce_identical_telemetry(self):
        first = _telemetry_fingerprint(seed=11, fault=True)
        second = _telemetry_fingerprint(seed=11, fault=True)
        assert first == second  # down to exemplar trace ids

    def test_steady_healthy_run_never_alarms(self):
        for seed in (2, 9, 31):
            fingerprint = _telemetry_fingerprint(seed, fault=False)
            assert fingerprint["anomalies"] == []


# --------------------------------------------------------------------------
# exemplars: histogram bucket -> trace id -> journey
# --------------------------------------------------------------------------


class TestExemplars:
    def test_histogram_exemplar_round_trip(self):
        metrics = MetricsRegistry()
        histogram = metrics.histogram(
            "lat_seconds", "t", buckets=(0.01, 0.1, 1.0)
        )
        histogram.observe(0.005, exemplar=101, kind="q")
        histogram.observe(0.5, exemplar=202, kind="q")
        assert histogram.exemplar(0.99, kind="q") == (202, 0.5)
        assert histogram.exemplar(0.0, kind="q") == (101, 0.005)
        assert histogram.exemplar(0.5, kind="other") is None
        rendered = "\n".join(histogram.render())
        assert 'trace_id="202"' in rendered

    def test_serving_exemplar_resolves_to_a_recorded_journey(self):
        db, fd, responses = _serve_once(seed=17, telemetry=True)
        witness = db.observability.metrics.histogram(
            "vdbms_query_seconds", "Per-query latency"
        ).exemplar(0.99, kind="serving", tenant="t")
        assert witness is not None
        trace_id, latency = witness
        journey = fd.journeys.get(trace_id)
        assert journey is not None
        assert journey.tenant == "t"
        assert math.isclose(journey.latency_seconds, latency, rel_tol=1e-9)
