"""Behavioral tests specific to table-based indexes (§2.2)."""

import numpy as np
import pytest

from repro.core.types import SearchStats
from repro.index import (
    ItqHashIndex,
    IvfFlatIndex,
    IvfSqIndex,
    LshIndex,
    SpectralHashIndex,
)
from repro.index.l2h import hamming_to_all, pack_bits


class TestLsh:
    def test_more_tables_higher_recall(self, small_data, small_queries,
                                       ground_truth_10):
        def recall(num_tables):
            index = LshIndex(num_tables=num_tables, hashes_per_table=6, seed=0)
            index.build(small_data)
            got = []
            for qi, q in enumerate(small_queries):
                hits = index.search(q, 10)
                truth = set(int(t) for t in ground_truth_10[qi])
                got.append(len(truth.intersection(h.id for h in hits)) / 10)
            return float(np.mean(got))

        assert recall(24) >= recall(2)

    def test_more_hashes_smaller_buckets(self, small_data):
        small_k = LshIndex(num_tables=4, hashes_per_table=2, seed=0).build(small_data)
        large_k = LshIndex(num_tables=4, hashes_per_table=10, seed=0).build(small_data)
        assert np.mean(large_k.bucket_sizes()) < np.mean(small_k.bucket_sizes())

    def test_pstable_family(self, small_data, small_queries):
        index = LshIndex(
            hash_family="pstable", num_tables=8, hashes_per_table=4,
            bucket_width=6.0, seed=0,
        ).build(small_data)
        hits = index.search(small_queries[0], 5)
        assert len(hits) > 0

    def test_incremental_add(self, small_data, small_queries):
        index = LshIndex(num_tables=8, hashes_per_table=4, seed=0)
        index.build(small_data[:200])
        index.add(small_data[200:], np.arange(200, 300))
        assert len(index) == 300
        # An added vector must be findable by itself.
        hits = index.search(small_data[250], 5)
        assert 250 in [h.id for h in hits]

    def test_invalid_family(self):
        with pytest.raises(ValueError):
            LshIndex(hash_family="quantum")

    def test_multiprobe_raises_recall(self, small_data, small_queries,
                                      ground_truth_10):
        index = LshIndex(num_tables=4, hashes_per_table=8, seed=0)
        index.build(small_data)

        def recall(probes):
            got = []
            for qi, q in enumerate(small_queries):
                hits = index.search(q, 10, num_probes=probes)
                truth = set(int(t) for t in ground_truth_10[qi])
                got.append(len(truth.intersection(h.id for h in hits)) / 10)
            return float(np.mean(got))

        assert recall(8) >= recall(1)

    def test_multiprobe_pstable(self, small_data, small_queries):
        index = LshIndex(
            hash_family="pstable", num_tables=4, hashes_per_table=4,
            bucket_width=5.0, num_probes=4, seed=0,
        ).build(small_data)
        hits = index.search(small_queries[0], 5)
        assert len(hits) == 5

    def test_multiprobe_superset_of_single_probe(self, small_data,
                                                 small_queries):
        index = LshIndex(num_tables=4, hashes_per_table=8, seed=0)
        index.build(small_data)
        q = small_queries[0]
        single = index._candidates(q.astype(np.float64), 1)
        multi = index._candidates(q.astype(np.float64), 6)
        assert set(single.tolist()) <= set(multi.tolist())

    def test_invalid_num_probes(self):
        with pytest.raises(ValueError):
            LshIndex(num_probes=0)

    def test_candidates_come_from_buckets(self, small_data):
        index = LshIndex(num_tables=4, hashes_per_table=8, seed=0).build(small_data)
        stats = SearchStats()
        index.search(small_data[0], 5, stats=stats)
        # Candidates examined should be far fewer than the collection.
        assert stats.candidates_examined < len(small_data)


class TestIvfFlat:
    def test_nprobe_recall_monotonic(self, small_data, small_queries,
                                     ground_truth_10):
        index = IvfFlatIndex(nlist=16, seed=0).build(small_data)

        def recall(nprobe):
            got = []
            for qi, q in enumerate(small_queries):
                hits = index.search(q, 10, nprobe=nprobe)
                truth = set(int(t) for t in ground_truth_10[qi])
                got.append(len(truth.intersection(h.id for h in hits)) / 10)
            return float(np.mean(got))

        r1, r4, rall = recall(1), recall(4), recall(16)
        assert r1 <= r4 + 1e-9 <= rall + 2e-9
        assert rall == pytest.approx(1.0)

    def test_full_probe_is_exact(self, small_data, small_queries, flat_oracle):
        index = IvfFlatIndex(nlist=10, seed=0).build(small_data)
        exact = [h.id for h in flat_oracle.search(small_queries[0], 10)]
        got = [h.id for h in index.search(small_queries[0], 10, nprobe=10)]
        assert got == exact

    def test_cells_partition_collection(self, small_data):
        index = IvfFlatIndex(nlist=16, seed=0).build(small_data)
        assert sum(index.cell_sizes()) == len(small_data)

    def test_add_routes_to_cells(self, small_data):
        index = IvfFlatIndex(nlist=8, seed=0).build(small_data[:250])
        index.add(small_data[250:], np.arange(250, 300))
        assert sum(index.cell_sizes()) == 300
        hits = index.search(small_data[260], 3, nprobe=8)
        assert 260 in [h.id for h in hits]

    def test_nlist_clamped_to_n(self):
        data = np.random.default_rng(0).standard_normal((5, 4)).astype(np.float32)
        index = IvfFlatIndex(nlist=64).build(data)
        assert len(index.cell_sizes()) == 5


class TestIvfSq:
    def test_probed_cells_counted(self, small_data, small_queries):
        index = IvfSqIndex(nlist=12, seed=0).build(small_data)
        stats = SearchStats()
        index.search(small_queries[0], 5, nprobe=3, stats=stats)
        assert stats.nodes_visited == 3

    def test_memory_less_than_flat_ivf(self, small_data):
        sq = IvfSqIndex(nlist=12, seed=0).build(small_data)
        # Codes are uint8: 1/4 the bytes of float32 vectors.
        assert sq.memory_bytes() < small_data.nbytes


class TestIvfAdcUpdates:
    def test_add_routes_and_is_searchable(self, small_data):
        from repro.index import IvfAdcIndex

        index = IvfAdcIndex(nlist=8, m=4, ks=32, rerank=20, seed=0)
        index.build(small_data[:250])
        index.add(small_data[250:], np.arange(250, 300))
        assert len(index) == 300
        hits = index.search(small_data[270], 5, nprobe=8)
        assert 270 in [h.id for h in hits]

    def test_add_preserves_existing_results(self, small_data, small_queries):
        from repro.index import IvfAdcIndex

        index = IvfAdcIndex(nlist=8, m=4, ks=32, rerank=20, seed=0)
        index.build(small_data[:250])
        before = [h.id for h in index.search(small_queries[0], 5, nprobe=8)]
        # Add far-away vectors: old results must be unchanged.
        index.add(small_data[250:] + 100.0, np.arange(250, 300))
        after = [h.id for h in index.search(small_queries[0], 5, nprobe=8)]
        assert before == after


class TestBinaryHashes:
    def test_pack_and_hamming(self):
        bits = np.array([[1, 0, 1, 0, 1, 0, 1, 0], [1, 1, 1, 1, 0, 0, 0, 0]])
        codes = pack_bits(bits)
        d = hamming_to_all(codes[0], codes)
        assert d[0] == 0
        assert d[1] == 4

    @pytest.mark.parametrize("cls", [SpectralHashIndex, ItqHashIndex])
    def test_similar_vectors_similar_codes(self, cls, small_data):
        index = cls(nbits=24).build(small_data)
        base = index.encode(small_data[0])[0]
        near = index.encode(small_data[0] + 0.01)[0]
        far = index.encode(small_data[0] + 10.0)[0]
        d_near = hamming_to_all(base, near[None, :])[0]
        d_far = hamming_to_all(base, far[None, :])[0]
        assert d_near <= d_far

    def test_itq_rotation_orthogonal(self, small_data):
        index = ItqHashIndex(nbits=12, iterations=5).build(small_data)
        r = index._rotation
        np.testing.assert_allclose(r @ r.T, np.eye(r.shape[0]), atol=1e-8)

    def test_rerank_budget_controls_exactness(self, small_data, small_queries,
                                              ground_truth_10):
        def recall(budget):
            index = SpectralHashIndex(nbits=24, rerank=budget).build(small_data)
            got = []
            for qi, q in enumerate(small_queries):
                hits = index.search(q, 10)
                truth = set(int(t) for t in ground_truth_10[qi])
                got.append(len(truth.intersection(h.id for h in hits)) / 10)
            return float(np.mean(got))

        assert recall(300) >= recall(15)  # full rerank = exact
        assert recall(300) == pytest.approx(1.0)
