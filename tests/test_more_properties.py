"""Additional property-based tests: quantizers, pager, SQL, top-k."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.sql import parse_sql
from repro.core.types import topk_from_arrays
from repro.quantization import ProductQuantizer, ResidualQuantizer, ScalarQuantizer
from repro.storage import PagedVectorStore, SimulatedDisk

finite = st.floats(min_value=-20, max_value=20, allow_nan=False, width=32)


class TestScalarQuantizerProperties:
    @given(data=arrays(np.float32, (20, 6), elements=finite))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_within_analytic_bound(self, data):
        sq = ScalarQuantizer(bits=8).train(data)
        recon = sq.decode(sq.encode(data))
        bound = sq.max_reconstruction_error()
        assert (np.abs(recon - data) <= bound[None, :] + 1e-4).all()

    @given(
        data=arrays(np.float32, (20, 4), elements=finite),
        point=arrays(np.float32, (4,), elements=finite),
    )
    @settings(max_examples=50, deadline=None)
    def test_codes_within_range(self, data, point):
        sq = ScalarQuantizer(bits=4).train(data)
        codes = sq.encode(point[None, :])
        assert codes.min() >= 0
        assert codes.max() <= sq.levels

    @given(data=arrays(np.float32, (30, 4), elements=finite))
    @settings(max_examples=30, deadline=None)
    def test_idempotent_on_decoded_values(self, data):
        """decode(encode(.)) must be a fixed point (projection)."""
        sq = ScalarQuantizer(bits=6).train(data)
        once = sq.decode(sq.encode(data))
        twice = sq.decode(sq.encode(once))
        np.testing.assert_allclose(once, twice, atol=1e-4)


class TestPqProperties:
    @given(
        seed=st.integers(min_value=0, max_value=100),
        m=st.sampled_from([2, 4]),
    )
    @settings(max_examples=20, deadline=None)
    def test_adc_self_distance_equals_quantization_error(self, seed, m):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((80, 8))
        pq = ProductQuantizer(m=m, ks=16, seed=0).train(data)
        codes = pq.encode(data[:10])
        for i in range(10):
            adc = pq.adc_distances(data[i], codes[i : i + 1])[0]
            recon = pq.decode(codes[i : i + 1]).astype(np.float64)[0]
            err = float(np.sum((data[i] - recon) ** 2))
            assert adc == pytest.approx(err, rel=1e-5, abs=1e-6)

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_encoding_is_loss_minimizing_per_subspace(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((60, 4))
        pq = ProductQuantizer(m=2, ks=8, seed=0).train(data)
        x = rng.standard_normal(4)
        code = pq.encode(x[None, :])[0]
        for sub in range(2):
            block = x[sub * 2 : (sub + 1) * 2]
            dists = np.sum((pq._codebooks[sub] - block) ** 2, axis=1)
            assert dists[code[sub]] == pytest.approx(dists.min())


class TestResidualQuantizerProperties:
    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_error_never_grows_with_level(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((60, 6))
        rq = ResidualQuantizer(levels=3, ks=8, seed=0).train(data)
        # Using only the first j levels of the code must not decrease error.
        codes = rq.encode(data)
        prev = np.inf
        for j in range(1, 4):
            partial = np.zeros((data.shape[0], 6))
            for level in range(j):
                partial += rq._codebooks[level][codes[:, level]]
            err = float(np.mean(np.sum((data - partial) ** 2, axis=1)))
            assert err <= prev + 1e-9
            prev = err


class TestPagerProperties:
    @given(
        vectors=arrays(
            np.float32,
            st.tuples(st.integers(min_value=1, max_value=40), st.just(4)),
            elements=finite,
        ),
        reads=st.lists(st.integers(min_value=0, max_value=39), max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_read_order_returns_written_data(self, vectors, reads):
        store = PagedVectorStore(dim=4, disk=SimulatedDisk(page_size=64))
        store.append(vectors)
        for slot in reads:
            assume(slot < vectors.shape[0])
            np.testing.assert_array_equal(store.get(slot), vectors[slot])

    @given(
        n=st.integers(min_value=1, max_value=60),
        page_size=st.sampled_from([32, 64, 256]),
    )
    @settings(max_examples=50, deadline=None)
    def test_page_count_formula(self, n, page_size):
        store = PagedVectorStore(dim=4, disk=SimulatedDisk(page_size=page_size))
        store.append(np.zeros((n, 4), dtype=np.float32))
        per_page = page_size // 16
        assert store.num_pages == -(-n // per_page)  # ceil


class TestTopKProperties:
    @given(
        dists=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1, max_size=200,
        ),
        k=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_sorted_prefix(self, dists, k):
        arr = np.asarray(dists)
        ids = np.arange(arr.shape[0])
        hits = topk_from_arrays(ids, arr, k)
        expected = sorted(arr)[: min(k, arr.shape[0])]
        assert [h.distance for h in hits] == pytest.approx(expected)


class TestSqlEvaluationEquivalence:
    """Parsed SQL predicates evaluate identically to hand-built ones."""

    @given(
        values=st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                        max_size=30),
        a=st.integers(min_value=0, max_value=9),
        b=st.integers(min_value=0, max_value=9),
    )
    @settings(max_examples=60, deadline=None)
    def test_and_or_equivalence(self, values, a, b):
        from repro.hybrid.predicates import Field

        columns = {"x": np.asarray(values)}
        parsed = parse_sql(
            f"SELECT * FROM t WHERE x < {a} OR x > {b} AND x != {a} "
            "ORDER BY DISTANCE(v, [1]) LIMIT 1"
        ).predicate
        manual = (Field("x") < a) | ((Field("x") > b) & (Field("x") != a))
        np.testing.assert_array_equal(
            parsed.evaluate(columns), manual.evaluate(columns)
        )

    @given(
        low=st.integers(min_value=0, max_value=5),
        high=st.integers(min_value=5, max_value=10),
        values=st.lists(st.integers(min_value=0, max_value=10), min_size=1,
                        max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_between_equivalence(self, low, high, values):
        from repro.hybrid.predicates import Field

        columns = {"x": np.asarray(values)}
        parsed = parse_sql(
            f"SELECT * FROM t WHERE x BETWEEN {low} AND {high} "
            "ORDER BY DISTANCE(v, [1]) LIMIT 1"
        ).predicate
        manual = Field("x").between(low, high)
        np.testing.assert_array_equal(
            parsed.evaluate(columns), manual.evaluate(columns)
        )


class TestBenchRunnerCli:
    def test_quick_run_prints_tables(self, capsys):
        from repro.bench.runner import main

        assert main(["--n", "300", "--dim", "8", "--k", "5"]) == 0
        out = capsys.readouterr().out
        assert "master comparison" in out
        assert "Pareto frontier" in out
        assert "hnsw" in out
