"""Seeded chaos tests for the reliability subsystem (§2.3 fault path).

Covers the acceptance scenario (replica kill at rf=2 vs rf=1), seeded
determinism of fault plans, monotone recall degradation with coverage,
circuit-breaker trip/recovery, deadlines, and storage I/O faults.
"""

import warnings

import numpy as np
import pytest

from repro.core.errors import (
    AllReplicasDownError,
    DeadlineExceededError,
    PageReadError,
    PartialResultWarning,
    ReplicaUnavailableError,
    VdbmsError,
)
from repro.distributed import (
    DistributedSearchCluster,
    NodeLatencyModel,
    UniformSharding,
)
from repro.reliability import (
    CRASH,
    FLAKY,
    PAGE_ERROR,
    SLOW,
    CircuitBreaker,
    Deadline,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.storage.disk import SimulatedDisk
from repro.storage.pager import PagedVectorStore


def _recall(hits, truth_row) -> float:
    truth = set(int(t) for t in truth_row)
    return len(truth.intersection(h.id for h in hits)) / len(truth)


def _cluster(data, shards=4, replicas=1, injector=None, **kwargs):
    cluster = DistributedSearchCluster(
        sharding=UniformSharding(shards), replication_factor=replicas,
        index_type="flat", injector=injector, **kwargs,
    )
    cluster.load(data)
    return cluster


# ------------------------------------------------------------ fault plans


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(FLAKY, probability=1.5)

    def test_target_wildcards(self):
        spec = FaultSpec(CRASH, target="shard0-*")
        assert spec.matches("shard0-replica1")
        assert not spec.matches("shard1-replica0")

    def test_deterministic_window(self):
        plan = FaultPlan((FaultSpec(CRASH, target="n", at_op=2,
                                    duration_ops=2),))
        inj = plan.injector()
        fired = [inj.on_request("n").crashed for _ in range(6)]
        assert fired == [False, False, True, True, False, False]

    def test_same_seed_same_decisions(self):
        plan = FaultPlan((FaultSpec(FLAKY, probability=0.5),), seed=42)
        seq1 = [d.flaky for d in map(plan.injector().on_request, ["n"] * 50)]
        seq2 = [d.flaky for d in map(plan.injector().on_request, ["n"] * 50)]
        assert seq1 == seq2
        assert any(seq1) and not all(seq1)

    def test_probabilistic_crash_heals(self):
        plan = FaultPlan(
            (FaultSpec(CRASH, probability=1.0, duration_ops=3),), seed=0
        )
        inj = plan.injector()
        assert inj.on_request("n").crashed  # trips, heal counter = 3
        assert inj.is_down("n")
        inj.heal_all()
        assert not inj.is_down("n")

    def test_slow_decision_carries_slowdown(self):
        plan = FaultPlan((FaultSpec(SLOW, at_op=0, slowdown=25.0),))
        decision = plan.injector().on_request("n")
        assert decision.kind == SLOW
        assert decision.slowdown == 25.0


# --------------------------------------------------------- retry/deadline


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay_seconds=0.001, multiplier=2.0,
                             max_delay_seconds=0.004, jitter=0.0)
        assert policy.backoff(1) == pytest.approx(0.001)
        assert policy.backoff(2) == pytest.approx(0.002)
        assert policy.backoff(4) == pytest.approx(0.004)  # capped
        assert policy.backoff(9) == pytest.approx(0.004)

    def test_jitter_is_seeded(self):
        a = RetryPolicy(jitter=0.5, seed=3)
        b = RetryPolicy(jitter=0.5, seed=3)
        assert [a.backoff(i) for i in range(1, 5)] == [
            b.backoff(i) for i in range(1, 5)
        ]

    def test_invalid_knobs(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)

    def test_deadline_charge_and_check(self):
        deadline = Deadline(0.01)
        deadline.charge(0.005)
        assert not deadline.exceeded
        deadline.check()
        deadline.charge(0.006)
        assert deadline.exceeded
        with pytest.raises(DeadlineExceededError):
            deadline.check()


# --------------------------------------------------------- circuit breaker


class TestCircuitBreaker:
    def test_trips_after_threshold_and_half_opens(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_ops=2)
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()          # cooldown tick 1
        assert breaker.allow()              # cooldown done -> half-open probe
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_retrips(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ops=1)
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.allow()              # half-open
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2


# ----------------------------------------------------- acceptance scenario


class TestReplicaKillAcceptance:
    """ISSUE acceptance: one replica of every shard killed by a plan."""

    def test_rf2_survives_with_full_coverage(self, small_data, small_queries):
        plan = FaultPlan.kill_replicas(num_shards=4, replica=0, seed=7)
        cluster = _cluster(small_data, shards=4, replicas=2,
                           injector=plan.injector())
        failovers = 0
        for q in small_queries:
            result, dstats = cluster.search(q, 10)   # strict: must not raise
            assert dstats.coverage_fraction == 1.0
            assert not result.is_partial
            assert len(result) == 10
            failovers += dstats.failovers
        assert failovers > 0

    def test_rf2_matches_faultfree_results(self, small_data, small_queries):
        plan = FaultPlan.kill_replicas(num_shards=4, replica=0, seed=7)
        faulty = _cluster(small_data, shards=4, replicas=2,
                          injector=plan.injector())
        healthy = _cluster(small_data, shards=4, replicas=2)
        for q in small_queries:
            got, _ = faulty.search(q, 10)
            want, _ = healthy.search(q, 10)
            assert got.ids == want.ids

    def test_rf1_partial_in_nonstrict_mode(self, small_data, small_queries):
        plan = FaultPlan.kill_replicas(num_shards=4, replica=0, seed=7)
        cluster = _cluster(small_data, shards=4, replicas=1,
                           injector=plan.injector(), strict=False)
        with pytest.warns(PartialResultWarning):
            result, dstats = cluster.search(small_queries[0], 10)
        assert dstats.coverage_fraction < 1.0
        assert result.is_partial
        assert result.stats.partial
        assert dstats.shards_failed == 4
        assert dstats.skipped_shards == [0, 1, 2, 3]

    def test_rf1_raises_in_strict_mode(self, small_data, small_queries):
        plan = FaultPlan.kill_replicas(num_shards=4, replica=0, seed=7)
        cluster = _cluster(small_data, shards=4, replicas=1,
                           injector=plan.injector(), strict=True)
        with pytest.raises(AllReplicasDownError):
            cluster.search(small_queries[0], 10)

    def test_typed_error_is_backward_compatible(self, small_data,
                                                small_queries):
        cluster = _cluster(small_data, shards=4, replicas=1)
        cluster.fail_node(0, 0)
        with pytest.raises(VdbmsError, match="all replicas"):
            cluster.search(small_queries[0], 5)


# ----------------------------------------------------------- determinism


class TestSeededChaosDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_same_seed_identical_results(self, small_data, small_queries,
                                         seed):
        plan = FaultPlan.random_plan(
            seed=seed, crash_rate=0.05, flaky_rate=0.1, slow_rate=0.1,
            slowdown=5.0, crash_duration_ops=4,
        )

        def run():
            cluster = _cluster(small_data, shards=4, replicas=2,
                               injector=plan.injector(), strict=False)
            ids, coverage, latency = [], [], []
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", PartialResultWarning)
                for q in small_queries:
                    result, dstats = cluster.search(q, 10)
                    ids.append(tuple(result.ids))
                    coverage.append(dstats.coverage_fraction)
                    latency.append(round(dstats.simulated_latency_seconds, 12))
            return ids, coverage, latency

        assert run() == run()


# ------------------------------------------------- graceful degradation


class TestGracefulDegradation:
    def test_recall_degrades_monotonically_with_coverage(
        self, small_data, small_queries, ground_truth_10
    ):
        recalls, coverages = [], []
        for killed in range(5):
            cluster = _cluster(small_data, shards=4, replicas=1,
                               strict=False)
            for s in range(killed):
                cluster.fail_node(s, 0)
            per_query, cov = [], []
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", PartialResultWarning)
                for i, q in enumerate(small_queries):
                    result, dstats = cluster.search(q, 10)
                    per_query.append(_recall(result.hits, ground_truth_10[i]))
                    cov.append(dstats.coverage_fraction)
            recalls.append(float(np.mean(per_query)))
            coverages.append(float(np.mean(cov)))
        assert coverages == [1.0, 0.75, 0.5, 0.25, 0.0]
        for better, worse in zip(recalls, recalls[1:]):
            assert worse <= better + 1e-9
        assert recalls[0] == 1.0 and recalls[-1] == 0.0

    def test_partial_results_still_sorted(self, small_data, small_queries):
        cluster = _cluster(small_data, shards=4, replicas=1, strict=False)
        cluster.fail_node(2, 0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PartialResultWarning)
            result, _ = cluster.search(small_queries[0], 10)
        distances = result.distances
        assert distances == sorted(distances)


# ------------------------------------------------------ breaker in cluster


class TestClusterBreaker:
    def test_breaker_trips_then_recovers(self, small_data, small_queries):
        cluster = _cluster(small_data, shards=4, replicas=2,
                           breaker_failure_threshold=2,
                           breaker_cooldown_ops=2)
        for s in range(4):
            cluster.fail_node(s, 0)
        skips = 0
        for _ in range(6):
            _, dstats = cluster.search(small_queries[0], 5)
            skips += dstats.breaker_skips
        health = cluster.health()
        assert health.tripped_replicas == 4
        assert skips > 0
        assert health.shards_at_risk() == []   # replica1 of each shard is up
        # Recover the nodes; cooldown elapses, probes succeed, breakers
        # close again.
        for s in range(4):
            cluster.recover_node(s, 0)
        for _ in range(8):
            cluster.search(small_queries[0], 5)
        health = cluster.health()
        assert health.tripped_replicas == 0
        assert health.healthy_replicas == 8

    def test_health_summary_mentions_risky_shards(self, small_data):
        cluster = _cluster(small_data, shards=2, replicas=1)
        cluster.fail_node(1, 0)
        assert "1" in cluster.health().summary()


# ------------------------------------------------------------- deadlines


class TestDeadlines:
    def _slow_cluster(self, data, **kwargs):
        plan = FaultPlan((FaultSpec(SLOW, at_op=0, slowdown=1000.0),))
        return _cluster(data, shards=4, replicas=1,
                        injector=plan.injector(), **kwargs)

    def test_deadline_raises_in_strict_mode(self, small_data, small_queries):
        cluster = self._slow_cluster(small_data, strict=True)
        with pytest.raises(DeadlineExceededError):
            cluster.search(small_queries[0], 10, deadline_seconds=0.01)

    def test_deadline_partial_in_nonstrict_mode(self, small_data,
                                                small_queries):
        cluster = self._slow_cluster(small_data, strict=False)
        with pytest.warns(PartialResultWarning):
            result, dstats = cluster.search(
                small_queries[0], 10, deadline_seconds=0.01
            )
        assert dstats.deadline_exceeded
        assert result.is_partial
        assert dstats.coverage_fraction < 1.0

    def test_generous_deadline_is_harmless(self, small_data, small_queries):
        cluster = _cluster(small_data, shards=4, replicas=1)
        result, dstats = cluster.search(
            small_queries[0], 10, deadline_seconds=60.0
        )
        assert len(result) == 10
        assert not dstats.deadline_exceeded


# --------------------------------------------------- retries and latency


class TestRetriesAndLatency:
    def test_flaky_replica_retried_then_failed_over(self, small_data,
                                                    small_queries):
        plan = FaultPlan(
            (FaultSpec(FLAKY, target="shard*-replica0", probability=1.0),)
        )
        cluster = _cluster(small_data, shards=4, replicas=2,
                           injector=plan.injector())
        cluster.search(small_queries[0], 5)            # replica1-first round
        _, dstats = cluster.search(small_queries[0], 5)  # replica0-first round
        assert dstats.retries > 0
        assert dstats.failovers > 0

    def test_failed_attempts_charge_the_simulated_clock(self, small_data,
                                                        small_queries):
        cluster = _cluster(small_data, shards=4, replicas=2)
        cluster.fail_node(0, 0)
        _, warm = cluster.search(small_queries[0], 5)   # replica1 first: clean
        _, fo = cluster.search(small_queries[0], 5)     # replica0 first: fails
        assert fo.failovers > 0
        assert (fo.simulated_latency_seconds
                > warm.simulated_latency_seconds)

    def test_failed_attempt_latency_overridable(self):
        model = NodeLatencyModel(network_seconds=0.001,
                                 failed_attempt_seconds=0.05)
        assert model.failed_request_latency() == 0.05
        assert NodeLatencyModel(network_seconds=0.001).failed_request_latency() \
            == 0.001

    def test_node_raises_typed_transient_error(self, small_data):
        plan = FaultPlan((FaultSpec(FLAKY, probability=1.0),))
        cluster = _cluster(small_data, shards=1, replicas=1,
                           injector=plan.injector())
        node = cluster.nodes[0][0]
        with pytest.raises(ReplicaUnavailableError) as err:
            node.search(small_data[0], 1)
        assert err.value.transient


# ------------------------------------------------------- storage faults


class TestStorageFaults:
    def test_injected_page_error_raises_and_counts(self):
        plan = FaultPlan((FaultSpec(PAGE_ERROR, target="disk", at_op=0),))
        disk = SimulatedDisk(injector=plan.injector())
        page = disk.allocate()
        disk.write_page(page, b"abc")
        with pytest.raises(PageReadError):
            disk.read_page(page)
        assert disk.stats.read_errors == 1
        assert disk.stats.reads == 0

    def test_pager_retries_transient_page_faults(self):
        plan = FaultPlan(
            (FaultSpec(PAGE_ERROR, target="disk", at_op=0, duration_ops=2),)
        )
        disk = SimulatedDisk(injector=plan.injector())
        store = PagedVectorStore(4, disk=disk,
                                 retry_policy=RetryPolicy(max_attempts=3))
        vectors = np.arange(20, dtype=np.float32).reshape(5, 4)
        # Appending rows 2..5 re-reads the tail page; the first two read
        # attempts hit the fault window and are retried transparently.
        store.append(vectors)
        np.testing.assert_array_equal(store.get(0), vectors[0])
        assert store.read_retries == 2

    def test_pager_gives_up_after_max_attempts(self):
        plan = FaultPlan((FaultSpec(PAGE_ERROR, target="disk", at_op=0),))
        disk = SimulatedDisk(injector=plan.injector())
        store = PagedVectorStore(4, disk=disk,
                                 retry_policy=RetryPolicy(max_attempts=3))
        store.append(np.ones((1, 4), dtype=np.float32))
        with pytest.raises(PageReadError):
            store.get(0)

    def test_scan_survives_transient_faults(self):
        plan = FaultPlan(
            (FaultSpec(PAGE_ERROR, target="disk", probability=0.2),), seed=5
        )
        disk = SimulatedDisk(injector=plan.injector())
        store = PagedVectorStore(8, disk=disk,
                                 retry_policy=RetryPolicy(max_attempts=10))
        vectors = np.random.default_rng(0).normal(
            size=(64, 8)
        ).astype(np.float32)
        store.append(vectors)
        np.testing.assert_array_equal(store.scan(), vectors)
