"""Tests for the multi-tenant serving front door.

Covers the tiers bottom-up: token buckets and tenant specs, the
admission controller's rejection/shedding semantics, the coalescer's
bounded-recall and exact stats-conservation contracts, per-tenant
result caches (bit-identical hits, structural invalidation), the event
loop end to end (determinism, isolation, SLOs, health report), and the
seeded traffic generator's distributional properties.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.database import VectorDatabase
from repro.core.types import SearchStats
from repro.observability.instrument import Observability
from repro.serving import (
    AdmissionController,
    AdmissionRejected,
    Burst,
    DiurnalSchedule,
    QueryResultCache,
    ServedResponse,
    ServingFrontDoor,
    ServingRequest,
    ServiceModel,
    TenantSpec,
    TokenBucket,
    TrafficGenerator,
    execute_coalesced,
    result_cache_key,
    split_stats,
)


def make_db(n=400, dim=12, seed=3, index=True, observability=None, **db_kwargs):
    rng = np.random.default_rng(seed)
    db = VectorDatabase(
        dim=dim, observability=observability or Observability(), **db_kwargs
    )
    db.insert_many(rng.standard_normal((n, dim)).astype(np.float32))
    if index:
        db.create_index("hnsw", "hnsw", m=8, ef_construction=48, seed=0)
    return db


def req(tenant, vector, k=10, t=0.0, **kwargs):
    return ServingRequest(tenant, vector, k=k, arrival_seconds=t, **kwargs)


# ---------------------------------------------------------------------------
# Quota


class TestTokenBucket:
    def test_starts_full_then_throttles(self):
        bucket = TokenBucket(rate=10.0, capacity=3.0)
        assert [bucket.try_take(0.0) for _ in range(4)] == [True] * 3 + [False]

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=10.0, capacity=3.0)
        for _ in range(3):
            bucket.try_take(0.0)
        assert not bucket.try_take(0.05)  # only half a token back
        assert bucket.try_take(0.1)

    def test_capacity_caps_refill(self):
        bucket = TokenBucket(rate=100.0, capacity=2.0)
        bucket.try_take(0.0)
        bucket._refill(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_retry_after_is_exact(self):
        bucket = TokenBucket(rate=4.0, capacity=1.0)
        assert bucket.try_take(0.0)
        wait = bucket.retry_after(0.0)
        assert wait == pytest.approx(0.25)
        assert not bucket.try_take(0.0 + wait * 0.9)
        assert bucket.try_take(0.0 + wait)

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(rate=10.0, capacity=5.0)
        bucket.try_take(1.0)
        bucket._refill(0.5)  # stale timestamp must not refund tokens
        assert bucket.updated == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0.5)


class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantSpec("")
        with pytest.raises(ValueError):
            TenantSpec("t", qps=0)
        with pytest.raises(ValueError):
            TenantSpec("t", max_inflight=0)
        with pytest.raises(ValueError):
            TenantSpec("t", slo_p99_seconds=-1.0)
        with pytest.raises(ValueError):
            TenantSpec("t", slo_budget=1.5)


# ---------------------------------------------------------------------------
# Admission


class TestAdmission:
    def vec(self, seed=0, dim=4):
        return np.random.default_rng(seed).standard_normal(dim).astype(np.float32)

    def controller(self, **overrides):
        spec = dict(qps=10.0, burst=2.0, max_inflight=2, max_queue=3)
        spec.update(overrides)
        return AdmissionController({"a": TenantSpec("a", **spec)})

    def test_unknown_tenant(self):
        ctl = self.controller()
        with pytest.raises(AdmissionRejected) as exc:
            ctl.admit(req("ghost", self.vec()), now=0.0)
        assert exc.value.reason == "unknown_tenant"

    def test_throttle_carries_retry_after(self):
        ctl = self.controller(burst=1.0)
        ctl.admit(req("a", self.vec()), now=0.0)
        with pytest.raises(AdmissionRejected) as exc:
            ctl.admit(req("a", self.vec(1)), now=0.0)
        assert exc.value.reason == "throttled"
        assert exc.value.retry_after_seconds == pytest.approx(0.1)
        # Waiting the advertised time makes the retry succeed.
        ctl.admit(req("a", self.vec(1)), now=exc.value.retry_after_seconds)

    def test_queue_full(self):
        ctl = self.controller(burst=10.0, max_queue=2)
        ctl.admit(req("a", self.vec(0)), now=0.0)
        ctl.admit(req("a", self.vec(1)), now=0.0)
        with pytest.raises(AdmissionRejected) as exc:
            ctl.admit(req("a", self.vec(2)), now=0.0)
        assert exc.value.reason == "queue_full"
        assert exc.value.retry_after_seconds > 0

    def test_priority_dispatch_order(self):
        ctl = AdmissionController({
            "lo": TenantSpec("lo", priority=5, burst=8),
            "hi": TenantSpec("hi", priority=1, burst=8),
        })
        ctl.admit(req("lo", self.vec(0)), now=0.0)
        ctl.admit(req("hi", self.vec(1)), now=0.0)
        batch, shed = ctl.next_batch(0.0, coalesce_max=1, capacity=lambda t: 4)
        assert not shed
        assert [r.tenant for r in batch] == ["hi"]

    def test_deadline_shed_at_dispatch(self):
        ctl = self.controller(burst=10.0)
        ctl.admit(req("a", self.vec(0), t=0.0, deadline_seconds=0.5), now=0.0)
        ctl.admit(req("a", self.vec(1), t=0.0), now=0.0)
        batch, shed = ctl.next_batch(1.0, coalesce_max=1, capacity=lambda t: 4)
        assert len(shed) == 1 and shed[0].deadline_seconds == 0.5
        assert len(batch) == 1 and batch[0].deadline_seconds is None

    def test_inflight_cap_defers_without_losing(self):
        ctl = self.controller(burst=10.0)
        ctl.admit(req("a", self.vec(0)), now=0.0)
        batch, _ = ctl.next_batch(0.0, coalesce_max=4, capacity=lambda t: 0)
        assert batch == [] and ctl.pending() == 1
        batch, _ = ctl.next_batch(0.0, coalesce_max=4, capacity=lambda t: 2)
        assert len(batch) == 1 and ctl.pending() == 0

    def test_coalesces_same_key_in_arrival_order(self):
        ctl = self.controller(burst=10.0, max_queue=10)
        for i in range(4):
            ctl.admit(req("a", self.vec(i), t=float(i)), now=float(i))
        batch, _ = ctl.next_batch(3.0, coalesce_max=3, capacity=lambda t: 8)
        assert [r.arrival_seconds for r in batch] == [0.0, 1.0, 2.0]
        assert ctl.pending() == 1

    def test_coalesce_respects_capacity(self):
        ctl = self.controller(burst=10.0, max_queue=10)
        for i in range(4):
            ctl.admit(req("a", self.vec(i)), now=0.0)
        batch, _ = ctl.next_batch(0.0, coalesce_max=8, capacity=lambda t: 2)
        assert len(batch) == 2

    def test_different_k_not_coalesced(self):
        ctl = self.controller(burst=10.0, max_queue=10)
        ctl.admit(req("a", self.vec(0), k=5), now=0.0)
        ctl.admit(req("a", self.vec(1), k=7), now=0.0)
        batch, _ = ctl.next_batch(0.0, coalesce_max=8, capacity=lambda t: 8)
        assert len(batch) == 1 and batch[0].k == 5


# ---------------------------------------------------------------------------
# Coalescer


class TestSplitStats:
    @pytest.mark.parametrize("parts", [1, 2, 3, 7])
    def test_counters_sum_exactly(self, parts):
        total = SearchStats(
            distance_computations=1001, nodes_visited=37, page_reads=5,
            candidates_examined=998, predicate_evaluations=13,
            predicate_rejections=6, elapsed_seconds=0.5, plan_name="x",
        )
        shares = split_stats(total, parts)
        assert len(shares) == parts
        for name in ("distance_computations", "nodes_visited", "page_reads",
                     "candidates_examined", "predicate_evaluations",
                     "predicate_rejections"):
            assert sum(getattr(s, name) for s in shares) == getattr(total, name)
        assert sum(s.elapsed_seconds for s in shares) == pytest.approx(0.5)

    def test_rejects_nonpositive_parts(self):
        with pytest.raises(ValueError):
            split_stats(SearchStats(), 0)


class TestCoalescedExecution:
    @pytest.fixture(scope="class")
    def db(self):
        # Large enough that the planner prefers the graph index over a
        # brute-force scan (the coalescer follows the plan).
        return make_db(n=1000, dim=16, seed=11)

    @pytest.fixture(scope="class")
    def queries(self):
        return np.random.default_rng(5).standard_normal((32, 16)).astype(
            np.float32
        )

    @staticmethod
    def recall(hits, truth, k):
        return len(set(h.id for h in hits[:k]) & set(truth[:k])) / k

    def test_graph_path_matches_solo_within_bounded_recall(self, db, queries):
        k = 10
        requests = [req("a", q, k=k) for q in queries]
        hits, stats, mode, _ = execute_coalesced(db, requests)
        assert mode == "batched_graph"
        # Ground truth + solo runs per query; coalesced recall must not
        # trail solo by more than the batched kernel's documented 0.05.
        vectors = db.collection.vectors[: len(db.collection)]
        coalesced, solo = [], []
        for q, merged in zip(queries, hits):
            dists = np.linalg.norm(vectors - q, axis=1)
            truth = list(np.argsort(dists)[:k])
            solo_ids = db.search(vector=q, k=k).ids
            coalesced.append(self.recall(merged, truth, k))
            solo.append(len(set(solo_ids) & set(truth)) / k)
        assert float(np.mean(coalesced)) >= float(np.mean(solo)) - 0.05

    def test_graph_path_stats_sum_to_batch_total(self, db, queries):
        requests = [req("a", q) for q in queries[:8]]
        _, stats, mode, _ = execute_coalesced(db, requests)
        assert mode == "batched_graph"
        total = SearchStats()
        from repro.serving.coalescer import _SPLIT_COUNTERS

        # Re-run the same batch through the raw kernel for reference
        # totals: splitting must conserve, not rescale.
        from repro.core.batched import batched_graph_search

        reference = SearchStats()
        batched_graph_search(
            db.indexes["hnsw"], np.stack([r.vector for r in requests]), 10,
            stats=reference,
        )
        for name in _SPLIT_COUNTERS:
            assert sum(getattr(s, name) for s in stats) == getattr(
                reference, name
            ), name
        assert total.distance_computations == 0  # untouched scratch

    def test_brute_force_fallback_splits_shared_stats(self, queries):
        db = make_db(n=120, dim=16, seed=2, index=False)
        requests = [req("a", q, k=5) for q in queries[:6]]
        hits, stats, mode, strategy = execute_coalesced(db, requests)
        assert mode == "batched_scan" and strategy == "brute_force"
        assert len(hits) == 6 and len(stats) == 6
        # Distinct objects per member (the executor shares one).
        assert len({id(s) for s in stats}) == 6
        totals = sum(s.distance_computations for s in stats)
        assert totals == 6 * 120

    def test_predicated_group_avoids_graph_kernel(self, queries):
        from repro.hybrid.predicates import Comparison

        rng = np.random.default_rng(6)
        db = VectorDatabase(dim=16)
        db.insert_many(
            rng.standard_normal((300, 16)).astype(np.float32),
            [{"group": i % 3} for i in range(300)],
        )
        db.create_index("hnsw", "hnsw", m=8, ef_construction=48, seed=0)
        pred = Comparison("group", "==", 1)
        requests = [req("a", q, predicate=pred) for q in queries[:3]]
        hits, _, mode, _ = execute_coalesced(db, requests)
        assert mode != "batched_graph"
        # ids were assigned in insertion order, so group == id % 3.
        assert hits[0] and all(h.id % 3 == 1 for h in hits[0])

    def test_tombstones_disable_graph_path(self, queries):
        db = make_db(n=200, dim=16, seed=4)
        db.delete(0)
        requests = [req("a", q) for q in queries[:4]]
        _, _, mode, _ = execute_coalesced(db, requests)
        assert mode != "batched_graph"

    def test_singleton_runs_solo(self, db, queries):
        hits, stats, mode, _ = execute_coalesced(db, [req("a", queries[0])])
        assert mode == "solo" and len(hits) == 1 and len(stats) == 1


# ---------------------------------------------------------------------------
# Result cache


class TestQueryResultCache:
    def test_hit_is_fresh_copy(self):
        cache = QueryResultCache(4)
        key = ("k",)
        cache.put(key, [1, 2, 3])
        first = cache.get(key)
        first.append(99)
        assert cache.get(key) == [1, 2, 3]

    def test_lru_eviction(self):
        cache = QueryResultCache(2)
        cache.put("a", [1])
        cache.put("b", [2])
        assert cache.get("a") == [1]  # refresh a
        cache.put("c", [3])  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == [1]

    def test_unhashable_key_uncacheable(self):
        vec = np.ones(4, dtype=np.float32)
        assert result_cache_key(0, vec, 5, params={"bad": [1]}) is None

    def test_generation_changes_key(self):
        vec = np.ones(4, dtype=np.float32)
        assert result_cache_key(0, vec, 5) != result_cache_key(1, vec, 5)

    def test_info_ratio(self):
        cache = QueryResultCache(2)
        cache.put("a", [1])
        cache.get("a")
        cache.get("zzz")
        info = cache.info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["hit_ratio"] == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# Front door event loop


def run_frontdoor(db=None, tenants=None, trace=None, **kwargs):
    db = db or make_db(n=300, dim=12, seed=9)
    tenants = tenants or [TenantSpec("a", qps=500, burst=50, max_queue=200)]
    fd = ServingFrontDoor(db, tenants, **kwargs)
    responses = fd.run(trace)
    return fd, responses


class TestFrontDoor:
    def trace(self, n=40, dim=12, seed=1, tenant="a", spacing=0.001):
        rng = np.random.default_rng(seed)
        return [
            req(tenant, rng.standard_normal(dim).astype(np.float32),
                t=i * spacing)
            for i in range(n)
        ]

    def test_every_request_answered_once(self):
        trace = self.trace(50)
        fd, responses = run_frontdoor(trace=trace)
        assert len(responses) == 50
        assert all(r.status == "ok" for r in responses)
        assert fd.report().totals["executed"] == 50

    def test_cache_hit_bit_identical_to_cold(self):
        db = make_db(n=300, dim=12, seed=9)
        rng = np.random.default_rng(3)
        vec = rng.standard_normal(12).astype(np.float32)
        trace = [req("a", vec.copy(), t=0.0), req("a", vec.copy(), t=0.5)]
        fd, responses = run_frontdoor(db=db, trace=trace)
        cold, warm = responses
        assert cold.status == "ok" and warm.status == "cache_hit"
        assert warm.hits == cold.hits  # SearchHit is frozen: == is exact
        assert warm.latency_seconds < cold.latency_seconds

    def test_mutation_invalidates_result_cache(self):
        db = make_db(n=300, dim=12, seed=9)
        rng = np.random.default_rng(3)
        vec = rng.standard_normal(12).astype(np.float32)
        fd = ServingFrontDoor(
            db, [TenantSpec("a", qps=500, burst=50, max_queue=200)]
        )
        first = fd.run([req("a", vec.copy(), t=0.0)])
        db.insert(rng.standard_normal(12).astype(np.float32))
        again = fd.run([req("a", vec.copy(), t=10.0)])
        assert first[0].status == "ok"
        assert again[0].status == "ok"  # generation moved: not a cache hit

    def test_coalescing_under_backlog(self):
        # One worker and a slow base cost force a backlog; queued
        # same-shape requests must merge into multi-member batches.
        trace = self.trace(32, spacing=0.0001)
        fd, responses = run_frontdoor(
            trace=trace, workers=1, coalesce_max=8,
            service_model=ServiceModel(base_seconds=5e-3),
        )
        report = fd.report()
        assert report.totals["batches"] < 32
        assert report.totals["mean_batch_size"] > 1.5
        assert max(r.batch_size for r in responses) > 1

    def test_stats_split_sums_across_batch(self):
        trace = self.trace(16, spacing=0.0001)
        fd, responses = run_frontdoor(
            trace=trace, workers=1, coalesce_max=8,
            service_model=ServiceModel(base_seconds=5e-3),
        )
        by_size = {}
        for r in responses:
            if r.batch_size > 1:
                by_size.setdefault(r.batch_size, []).append(r)
        assert by_size, "expected at least one coalesced batch"
        for size, members in by_size.items():
            assert len(members) % size == 0

    def test_rejection_carries_retry_after(self):
        trace = self.trace(20, spacing=0.0)  # all at t=0: burst of 5 only
        fd, responses = run_frontdoor(
            tenants=[TenantSpec("a", qps=10, burst=5, max_queue=100)],
            trace=trace,
        )
        rejected = [r for r in responses if r.status == "rejected"]
        assert len(rejected) == 15
        assert all(r.reason == "throttled" for r in rejected)
        assert all(r.retry_after_seconds > 0 for r in rejected)

    def test_deadline_shedding_under_overload(self):
        trace = [
            req("a", v.vector, t=v.arrival_seconds) for v in self.trace(30)
        ]
        fd, responses = run_frontdoor(
            tenants=[TenantSpec("a", qps=1000, burst=100, max_queue=100,
                                deadline_seconds=0.002)],
            trace=trace, workers=1, coalesce_max=1,
            service_model=ServiceModel(base_seconds=2e-3),
        )
        statuses = {r.status for r in responses}
        assert "shed" in statuses
        shed = [r for r in responses if r.status == "shed"]
        assert all(r.reason == "deadline" for r in shed)

    def test_deterministic_replay(self):
        def one_run():
            db = make_db(n=300, dim=12, seed=9)
            gen = TrafficGenerator(["a", "b"], 12, rate=400, seed=21)
            fd = ServingFrontDoor(
                db,
                [TenantSpec("a", qps=200, burst=20, max_queue=50),
                 TenantSpec("b", qps=100, burst=10, max_queue=50)],
                workers=1,
            )
            return [
                (r.status, r.latency_seconds, tuple(h.id for h in r.hits))
                for r in fd.run(gen.generate(1.0))
            ]

        assert one_run() == one_run()

    def test_isolation_low_priority_flood_spares_well_behaved(self):
        """A flooding low-priority tenant must not drag a light
        high-priority tenant's p99 with it (the E23 claim, in miniature).
        """
        db = make_db(n=300, dim=12, seed=9)
        rng = np.random.default_rng(8)
        trace = []
        # Flood: 400 abuser requests in 0.2s; light tenant: 20 spread out.
        for i in range(400):
            trace.append(req(
                "abuser", rng.standard_normal(12).astype(np.float32),
                t=i * 0.0005,
            ))
        for i in range(20):
            trace.append(req(
                "polite", rng.standard_normal(12).astype(np.float32),
                t=i * 0.01,
            ))
        fd = ServingFrontDoor(
            db,
            [TenantSpec("abuser", qps=10_000, burst=1000, max_queue=500,
                        priority=5, max_inflight=2),
             TenantSpec("polite", qps=100, burst=20, max_queue=50,
                        priority=1)],
            workers=1, coalesce_max=4,
            service_model=ServiceModel(base_seconds=2e-3),
        )
        fd.run(trace)
        report = fd.report()
        polite = report.tenants["polite"]["latency_seconds"]["p99"]
        abuser = report.tenants["abuser"]["latency_seconds"]["p99"]
        assert polite < abuser / 5

    def test_slo_alert_fires_under_sustained_breach(self):
        trace = self.trace(80, spacing=0.0001)
        fd, _ = run_frontdoor(
            tenants=[TenantSpec("a", qps=5000, burst=500, max_queue=500,
                                slo_p99_seconds=1e-4, slo_budget=0.01)],
            trace=trace, workers=1,
            service_model=ServiceModel(base_seconds=5e-3),
        )
        assert fd.slo is not None
        assert not fd.slo.ok
        assert fd.report().slos[0]["alerting"]

    def test_tenant_labels_reach_prometheus(self):
        db = make_db(n=200, dim=12, seed=9)
        trace = self.trace(5)
        fd, _ = run_frontdoor(db=db, trace=trace)
        text = db.observability.metrics.render_prometheus()
        assert 'tenant="a"' in text
        assert "vdbms_serving_requests_total" in text
        assert 'vdbms_queries_total{kind="serving"' in text

    def test_health_carries_serving_section(self):
        db = make_db(n=200, dim=12, seed=9)
        fd, _ = run_frontdoor(db=db, trace=self.trace(10))
        health = fd.health()
        assert health.serving is not None
        assert health.serving["totals"]["requests"] == 10
        assert "serving" in health.render()
        assert health.to_dict()["serving"]["tenants"]["a"]["submitted"] == 10

    def test_duplicate_tenants_rejected(self):
        db = make_db(n=50, dim=12, seed=9, index=False)
        with pytest.raises(ValueError):
            ServingFrontDoor(db, [TenantSpec("a"), TenantSpec("a")])

    def test_unknown_tenant_rejected_not_crashed(self):
        fd, responses = run_frontdoor(trace=[
            req("nobody", np.ones(12, dtype=np.float32))
        ])
        assert responses[0].status == "rejected"
        assert responses[0].reason == "unknown_tenant"


# ---------------------------------------------------------------------------
# Database.health satellite


class TestHealthSatellite:
    def test_plan_cache_and_slow_queries_in_health(self):
        obs = Observability(slow_query_seconds=0.0)  # everything is "slow"
        db = make_db(n=100, dim=8, seed=1, observability=obs)
        q = np.zeros(8, dtype=np.float32)
        db.search(vector=q, k=3)
        db.search(vector=q, k=3)
        info = db.health().database
        assert info["plan_cache"]["hits"] >= 1
        assert 0.0 < info["plan_cache"]["hit_ratio"] <= 1.0
        assert info["slow_queries"] >= 2

    def test_no_plan_cache_omits_key(self):
        db = make_db(n=50, dim=8, seed=1, index=False, plan_cache=False)
        assert "plan_cache" not in db.health().database


# ---------------------------------------------------------------------------
# Traffic generation


class TestTraffic:
    def test_same_seed_same_trace(self):
        def trace(seed):
            gen = TrafficGenerator(["a", "b"], 8, rate=200, seed=seed)
            return [
                (r.tenant, r.arrival_seconds, r.vector.tobytes())
                for r in gen.generate(2.0)
            ]

        assert trace(5) == trace(5)
        assert trace(5) != trace(6)

    def test_rate_is_respected(self):
        gen = TrafficGenerator(["a"], 8, rate=500, seed=0, fresh_fraction=0)
        n = len(gen.generate(4.0))
        assert 0.8 * 2000 < n < 1.2 * 2000

    def test_zipf_tenant_skew(self):
        gen = TrafficGenerator(["hot", "mid", "cold"], 8, rate=400, seed=2,
                               tenant_zipf_s=1.2)
        counts = {"hot": 0, "mid": 0, "cold": 0}
        for r in gen.generate(3.0):
            counts[r.tenant] += 1
        assert counts["hot"] > counts["mid"] > counts["cold"]

    def test_pool_repeats_enable_caching(self):
        gen = TrafficGenerator(["a"], 8, rate=400, seed=3, query_pool=8,
                               fresh_fraction=0.0)
        payloads = {r.vector.tobytes() for r in gen.generate(2.0)}
        assert len(payloads) <= 8

    def test_burst_concentrates_arrivals(self):
        schedule = DiurnalSchedule(
            period_seconds=100.0, amplitude=0.0,
            bursts=(Burst(1.0, 1.0, 8.0),),
        )
        gen = TrafficGenerator(["a"], 8, rate=100, seed=4, schedule=schedule)
        trace = gen.generate(3.0)
        inside = sum(1 for r in trace if 1.0 <= r.arrival_seconds < 2.0)
        outside = len(trace) - inside
        assert inside > 2 * (outside / 2)  # burst second beats others

    def test_diurnal_multiplier_bounds(self):
        schedule = DiurnalSchedule(period_seconds=10.0, amplitude=0.5,
                                   bursts=(Burst(0.0, 1.0, 3.0),))
        peak = schedule.peak()
        for t in np.linspace(0, 20, 500):
            assert schedule.multiplier(float(t)) <= peak + 1e-9

    def test_arrivals_sorted_and_in_window(self):
        gen = TrafficGenerator(["a"], 8, rate=300, seed=9)
        trace = gen.generate(1.5, start_seconds=4.0)
        times = [r.arrival_seconds for r in trace]
        assert times == sorted(times)
        assert all(4.0 <= t < 5.5 for t in times)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficGenerator([], 8)
        with pytest.raises(ValueError):
            TrafficGenerator(["a"], 8, rate=0)
        with pytest.raises(ValueError):
            DiurnalSchedule(amplitude=1.5)
        with pytest.raises(ValueError):
            Burst(0.0, 0.0)


# ---------------------------------------------------------------------------
# Report / response plumbing


class TestReporting:
    def test_served_response_repr_and_ok(self):
        r = ServedResponse(
            req("a", np.ones(4, dtype=np.float32)), "rejected",
            reason="throttled", retry_after_seconds=0.5,
        )
        assert not r.ok and "throttled" in repr(r)
        assert math.isnan(r.latency_seconds)

    def test_report_round_trips_dict(self):
        fd, _ = run_frontdoor(trace=[
            req("a", np.ones(12, dtype=np.float32))
        ])
        d = fd.report().to_dict()
        assert set(d) == {"tenants", "totals", "slos"}
        assert d["totals"]["requests"] == 1
