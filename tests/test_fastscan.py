"""Tests for the register-blocked (Quick-ADC analogue) scan."""

import numpy as np
import pytest

from repro.quantization import (
    FastScanPQ,
    IvfAdc,
    ProductQuantizer,
    blocked_adc_scan,
    concat_blocked,
    fastscan_accumulate,
    gather_packed_cells,
    naive_adc_scan,
    pack_codes_blocked,
    quantize_table,
    quantize_tables,
    table_quantization_error,
    transpose_codes,
)


@pytest.fixture(scope="module")
def pq_and_codes():
    rng = np.random.default_rng(2)
    data = rng.standard_normal((300, 16))
    pq = ProductQuantizer(m=4, ks=16, seed=0).train(data)
    codes = pq.encode(data)
    return pq, data, codes


class TestQuantizeTable:
    def test_roundtrip_error_within_bound(self, pq_and_codes):
        pq, data, _ = pq_and_codes
        table = pq.adc_table(data[0])
        qt = quantize_table(table)
        recon = qt.table.astype(np.float64) * qt.scale + qt.offset
        bound = table_quantization_error(table)
        assert np.abs(recon - table).max() <= bound * 2 + 1e-9

    def test_constant_table(self):
        qt = quantize_table(np.full((2, 4), 7.0))
        assert (qt.table == 0).all()
        assert qt.offset == 7.0

    def test_subnormal_span_regression(self):
        # Span so small that span / 255 underflows: dividing by the
        # underflowed scale used to emit inf and make the uint8 cast
        # undefined.  The degenerate path must treat it as constant.
        tiny = np.float64(5e-324)
        table = np.array([[0.0, tiny], [tiny, 0.0]])
        with np.errstate(all="raise"):
            qt = quantize_table(table)
        assert qt.scale == 0.0
        assert (qt.table == 0).all()
        recon = qt.dequantize(np.zeros(3, dtype=np.uint32), m=2)
        assert np.isfinite(recon).all()
        np.testing.assert_allclose(recon, 0.0, atol=1e-300)

    def test_constant_table_roundtrips_to_m_lo(self):
        qt = quantize_table(np.full((3, 8), -2.5))
        acc = np.zeros(5, dtype=np.uint32)
        np.testing.assert_allclose(qt.dequantize(acc, m=3), 3 * -2.5)


class TestScans:
    def test_exact_blocked_equals_naive(self, pq_and_codes):
        pq, data, codes = pq_and_codes
        table = pq.adc_table(data[3])
        naive = naive_adc_scan(table, codes)
        blocked = blocked_adc_scan(table, transpose_codes(codes), exact=True)
        np.testing.assert_allclose(naive, blocked, rtol=1e-10)

    def test_quantized_blocked_close_to_naive(self, pq_and_codes):
        pq, data, codes = pq_and_codes
        table = pq.adc_table(data[3])
        naive = naive_adc_scan(table, codes)
        approx = blocked_adc_scan(table, transpose_codes(codes), exact=False)
        per_entry = table_quantization_error(table)
        assert np.abs(naive - approx).max() <= pq.m * per_entry * 2 + 1e-6

    def test_quantized_preserves_ranking(self, pq_and_codes):
        pq, data, codes = pq_and_codes
        table = pq.adc_table(data[3])
        naive = naive_adc_scan(table, codes)
        approx = blocked_adc_scan(table, transpose_codes(codes), exact=False)
        top_naive = set(np.argsort(naive)[:10])
        top_approx = set(np.argsort(approx)[:20])
        assert len(top_naive & top_approx) >= 8

    def test_transpose_layout(self, pq_and_codes):
        _, _, codes = pq_and_codes
        t = transpose_codes(codes)
        assert t.shape == (codes.shape[1], codes.shape[0])
        assert t.flags["C_CONTIGUOUS"]


class TestFastScanPQ:
    def test_search_self_is_top(self, pq_and_codes):
        pq, data, _ = pq_and_codes
        fs = FastScanPQ(pq)
        fs.add(np.arange(len(data)), data)
        ids, dists = fs.search(data[11], k=5, exact=True)
        assert ids[0] == 11 or 11 in ids[:3]
        assert (np.diff(dists) >= -1e-9).all()

    def test_incremental_add(self, pq_and_codes):
        pq, data, _ = pq_and_codes
        fs = FastScanPQ(pq)
        fs.add(np.arange(100), data[:100])
        fs.add(np.arange(100, 200), data[100:200])
        assert len(fs) == 200
        ids, _ = fs.search(data[150], k=3)
        assert 150 in ids

    def test_empty_search(self, pq_and_codes):
        pq, _, _ = pq_and_codes
        fs = FastScanPQ(pq)
        ids, dists = fs.search(np.zeros(16), k=5)
        assert ids.size == 0


class TestBlockedLayout:
    def test_pair_fusion_engages_and_roundtrips(self, pq_and_codes):
        pq, _, codes = pq_and_codes
        blocked = pack_codes_blocked(codes, pq.ks)
        assert blocked.paired  # ks=16, m=4
        assert blocked.m_eff == pq.m // 2
        assert blocked.lut_size == 256
        for p in range(blocked.m_eff):
            fused = (codes[:, 2 * p].astype(np.uint8) << 4) | codes[:, 2 * p + 1]
            np.testing.assert_array_equal(blocked.packed[p], fused)

    def test_unpaired_when_codebook_too_wide(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 200, size=(40, 4), dtype=np.uint8)
        blocked = pack_codes_blocked(codes, ks=256)
        assert not blocked.paired
        assert blocked.m_eff == 4
        np.testing.assert_array_equal(blocked.packed, codes.T)

    def test_blocks_view_pads_tail(self, pq_and_codes):
        pq, _, codes = pq_and_codes
        blocked = pack_codes_blocked(codes[:50], pq.ks)
        tiles = blocked.blocks()
        assert tiles.shape == (blocked.m_eff, 2, 32)
        np.testing.assert_array_equal(
            tiles.reshape(blocked.m_eff, -1)[:, :50], blocked.packed
        )
        assert (tiles.reshape(blocked.m_eff, -1)[:, 50:] == 0).all()

    def test_concat_blocked_preserves_sequence(self, pq_and_codes):
        pq, _, codes = pq_and_codes
        a = pack_codes_blocked(codes[:30], pq.ks)
        b = pack_codes_blocked(codes[30:75], pq.ks)
        cat = concat_blocked([a, b])
        whole = pack_codes_blocked(codes[:75], pq.ks)
        assert cat.n == 75
        np.testing.assert_array_equal(cat.packed, whole.packed)

    def test_accumulate_matches_float_lookup_within_bound(self, pq_and_codes):
        pq, data, codes = pq_and_codes
        table = pq.adc_table(data[5])
        blocked = pack_codes_blocked(codes, pq.ks)
        qluts = quantize_tables(table, paired=blocked.paired)
        approx = qluts.dequantize(fastscan_accumulate(qluts.luts, blocked.packed))
        exact = pq.lookup(table, codes)
        bound = pq.m * table_quantization_error(table) * 2 + 1e-6
        assert np.abs(approx - exact).max() <= bound

    def test_slot_offsets_select_per_cell_luts(self, pq_and_codes):
        pq, data, codes = pq_and_codes
        tables = pq.adc_tables(data[:3])  # 3 "cells"
        parts = [
            pack_codes_blocked(codes[:20], pq.ks),
            pack_codes_blocked(codes[20:50], pq.ks),
            pack_codes_blocked(codes[50:60], pq.ks),
        ]
        blocked = gather_packed_cells(parts, np.array([2, 0]))
        # The LUT stack is built in probe order (slot = probe position),
        # exactly as IvfAdc stacks the probed cells' residual tables.
        qluts = quantize_tables(tables[np.array([2, 0])], paired=blocked.paired)
        slots = np.repeat(np.array([0, 1], dtype=np.int32), [10, 20])
        acc = fastscan_accumulate(
            qluts.luts, blocked.packed, slots * qluts.lut_size
        )
        # Each candidate must be scored against its own cell's table:
        # cell 2's codes against tables[2], cell 0's against tables[0].
        exact = np.concatenate(
            [pq.lookup(tables[2], codes[50:60]), pq.lookup(tables[0], codes[:20])]
        )
        bound = pq.m * (float(tables.max() - tables.min()) / 255.0) + 1e-6
        assert np.abs(qluts.dequantize(acc) - exact).max() <= bound

    def test_joint_quantization_shares_scale(self, pq_and_codes):
        pq, data, _ = pq_and_codes
        tables = pq.adc_tables(data[:4])
        qluts = quantize_tables(tables, paired=True)
        assert qluts.luts.shape == (pq.m // 2, 4, 256)
        assert qluts.luts.flags["C_CONTIGUOUS"]
        # One affine map across the stack: global extrema hit 0 / 255
        # (pair-fused entries sum two uint8 codes, max 510).
        assert qluts.scale >= 0
        assert qluts.luts.max() <= 510


class TestIvfAdcBlockedDifferential:
    """Blocked FastScan vs the per-cell float-table reference scan."""

    @pytest.fixture(scope="class")
    def cores(self):
        rng = np.random.default_rng(11)
        centers = rng.standard_normal((16, 32)) * 3.0
        data = (
            centers[rng.integers(0, 16, size=1500)]
            + rng.standard_normal((1500, 32))
        )
        core = IvfAdc(nlist=16, m=16, ks=16, seed=0, layout="blocked").train(data)
        core.add(np.arange(1500), data)
        queries = data[rng.integers(0, 1500, size=12)] + 0.05 * rng.standard_normal(
            (12, 32)
        )
        return core, data, queries

    def test_exact_rerank_preserves_topk_quality(self, cores):
        core, data, queries = cores
        k = 10
        for q in queries:
            ref_ids, ref_d, _ = core.search_reference(q, k, nprobe=8)
            vec_ids, vec_d, _ = core.search(q, k, nprobe=8)
            assert vec_ids.shape == ref_ids.shape
            # The rerank tail re-scores exactly, so the blocked top-k's
            # true distances can't trail the reference's ADC estimates
            # by more than the estimates' own error; compare against
            # brute-force truth instead of id identity (duplicate PQ
            # codes tie, and tie order is layout-dependent).
            true_vec = np.sum((data[vec_ids] - q) ** 2, axis=1)
            assert np.median(true_vec) <= np.median(ref_d) * 1.5 + 1e-9

    def test_recall_floor_vs_float_adc(self, cores):
        core, data, queries = cores
        k = 10
        ref_hits = vec_hits = 0
        for q in queries:
            truth = set(np.argsort(np.sum((data - q) ** 2, axis=1))[:k].tolist())
            ref_ids, _, _ = core.search_reference(q, k, nprobe=8)
            vec_ids, _, _ = core.search(q, k, nprobe=8)
            ref_hits += len(truth & set(ref_ids.tolist()))
            vec_hits += len(truth & set(vec_ids.tolist()))
        # Bounded-recall contract: the blocked path (quantized LUT +
        # exact rerank) must not trail the float-table reference by
        # more than half a hit per query on average.
        assert vec_hits >= ref_hits - len(queries) // 2

    def test_rerank_zero_returns_lut_estimates(self, cores):
        core, _, queries = cores
        q = queries[0]
        ids, dists, _ = core.search(q, 10, nprobe=8, rerank=0)
        assert ids.shape == (10,)
        assert (np.diff(dists) >= -1e-9).all()
        ref_ids, ref_d, _ = core.search_reference(q, 40, nprobe=8)
        # LUT estimates carry bounded quantization error; the raw top-10
        # must still land inside the float ADC top-40.
        assert len(set(ids.tolist()) & set(ref_ids.tolist())) >= 7

    def test_stats_parity(self, cores):
        core, _, queries = cores
        q = queries[3]
        _, _, ref_stats = core.search_reference(q, 10, nprobe=8)
        _, _, vec_stats = core.search(q, 10, nprobe=8)
        assert vec_stats.cells_probed == ref_stats.cells_probed
        assert vec_stats.codes_scanned == ref_stats.codes_scanned

    def test_adc_tables_match_per_query_table(self, cores):
        core, _, queries = cores
        residuals = queries[:4] - core.centroids[0]
        stacked = core.pq.adc_tables(residuals)
        for i in range(4):
            np.testing.assert_array_equal(
                stacked[i], core.pq.adc_table(residuals[i])
            )

    def test_deterministic(self, cores):
        core, _, queries = cores
        q = queries[5]
        a = core.search(q, 10, nprobe=8)
        b = core.search(q, 10, nprobe=8)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
