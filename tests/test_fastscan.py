"""Tests for the register-blocked (Quick-ADC analogue) scan."""

import numpy as np
import pytest

from repro.quantization import (
    FastScanPQ,
    ProductQuantizer,
    blocked_adc_scan,
    naive_adc_scan,
    quantize_table,
    table_quantization_error,
    transpose_codes,
)


@pytest.fixture(scope="module")
def pq_and_codes():
    rng = np.random.default_rng(2)
    data = rng.standard_normal((300, 16))
    pq = ProductQuantizer(m=4, ks=16, seed=0).train(data)
    codes = pq.encode(data)
    return pq, data, codes


class TestQuantizeTable:
    def test_roundtrip_error_within_bound(self, pq_and_codes):
        pq, data, _ = pq_and_codes
        table = pq.adc_table(data[0])
        qt = quantize_table(table)
        recon = qt.table.astype(np.float64) * qt.scale + qt.offset
        bound = table_quantization_error(table)
        assert np.abs(recon - table).max() <= bound * 2 + 1e-9

    def test_constant_table(self):
        qt = quantize_table(np.full((2, 4), 7.0))
        assert (qt.table == 0).all()
        assert qt.offset == 7.0


class TestScans:
    def test_exact_blocked_equals_naive(self, pq_and_codes):
        pq, data, codes = pq_and_codes
        table = pq.adc_table(data[3])
        naive = naive_adc_scan(table, codes)
        blocked = blocked_adc_scan(table, transpose_codes(codes), exact=True)
        np.testing.assert_allclose(naive, blocked, rtol=1e-10)

    def test_quantized_blocked_close_to_naive(self, pq_and_codes):
        pq, data, codes = pq_and_codes
        table = pq.adc_table(data[3])
        naive = naive_adc_scan(table, codes)
        approx = blocked_adc_scan(table, transpose_codes(codes), exact=False)
        per_entry = table_quantization_error(table)
        assert np.abs(naive - approx).max() <= pq.m * per_entry * 2 + 1e-6

    def test_quantized_preserves_ranking(self, pq_and_codes):
        pq, data, codes = pq_and_codes
        table = pq.adc_table(data[3])
        naive = naive_adc_scan(table, codes)
        approx = blocked_adc_scan(table, transpose_codes(codes), exact=False)
        top_naive = set(np.argsort(naive)[:10])
        top_approx = set(np.argsort(approx)[:20])
        assert len(top_naive & top_approx) >= 8

    def test_transpose_layout(self, pq_and_codes):
        _, _, codes = pq_and_codes
        t = transpose_codes(codes)
        assert t.shape == (codes.shape[1], codes.shape[0])
        assert t.flags["C_CONTIGUOUS"]


class TestFastScanPQ:
    def test_search_self_is_top(self, pq_and_codes):
        pq, data, _ = pq_and_codes
        fs = FastScanPQ(pq)
        fs.add(np.arange(len(data)), data)
        ids, dists = fs.search(data[11], k=5, exact=True)
        assert ids[0] == 11 or 11 in ids[:3]
        assert (np.diff(dists) >= -1e-9).all()

    def test_incremental_add(self, pq_and_codes):
        pq, data, _ = pq_and_codes
        fs = FastScanPQ(pq)
        fs.add(np.arange(100), data[:100])
        fs.add(np.arange(100, 200), data[100:200])
        assert len(fs) == 200
        ids, _ = fs.search(data[150], k=3)
        assert 150 in ids

    def test_empty_search(self, pq_and_codes):
        pq, _, _ = pq_and_codes
        fs = FastScanPQ(pq)
        ids, dists = fs.search(np.zeros(16), k=5)
        assert ids.size == 0
