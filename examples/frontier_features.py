"""Frontier features: the paper's §2.6 open problems, working.

The tutorial closes with six open problems.  This example drives the
library's prototype answer to each:

1. score selection — diagnostics + multi-score querying (§2.6(1));
2. operator/index design — stitched filtered graphs (§2.6(2));
3. cost estimation — a regression-fitted empirical cost model (§2.6(3));
4. security — DCPE secure k-NN on an untrusted server (§2.6(4));
5. incremental search — resumable pagination (§2.6(5));
6. multi-vector search — entities with several facet vectors (§2.6(6)).

Run:  python examples/frontier_features.py
"""

import time

import numpy as np

from repro.bench.datasets import gaussian_mixture, multi_vector_entities
from repro.core.cost import EmpiricalCostModel
from repro.core.database import VectorDatabase
from repro.core.incremental import IncrementalSearcher
from repro.core.multivector import MultiVectorEntityCollection
from repro.core.planner import QueryPlan
from repro.index import FilteredHnswIndex, HnswIndex
from repro.scores import recommend_score
from repro.security import DcpeKey, SecureKnnClient, SecureSearchServer


def main() -> None:
    rng = np.random.default_rng(0)
    ds = gaussian_mixture(n=2000, dim=24, num_queries=5, seed=8)
    q = ds.queries[0]

    # --- 1. score selection -------------------------------------------------
    print("=== 1. score selection (§2.6(1)) ===")
    rec = recommend_score(ds.train.astype(np.float64))
    print(f"  recommended: {rec.score.name} — {rec.reason[:70]}")
    db = VectorDatabase(dim=ds.dim)
    db.insert_many(ds.train)
    per_score = db.multi_score_search(q, k=3, scores=["l2", "cosine", "ip"])
    for name, result in per_score.items():
        print(f"  {name:7s} top-3: {result.ids}")

    # --- 2. attribute-aware graph construction ------------------------------
    print("\n=== 2. stitched filtered graph (§2.6(2)) ===")
    labels = rng.integers(50, size=len(ds.train))  # selectivity ~2%
    stitched = FilteredHnswIndex(m=12, label_k=6, seed=0).build_with_labels(
        ds.train, labels
    )
    from repro.core.types import SearchStats

    s_stats, b_stats = SearchStats(), SearchStats()
    plain = HnswIndex(m=12, seed=0).build(ds.train)
    stitched.search(q, 10, label=7, stats=s_stats)
    plain.search(q, 10, allowed=(labels == 7), stats=b_stats)
    print(f"  stitched label-subgraph search: {s_stats.distance_computations} dists")
    print(f"  bitmask blocking on plain HNSW: {b_stats.distance_computations} dists")

    # --- 3. empirical cost model --------------------------------------------
    print("\n=== 3. fitted cost model (§2.6(3)) ===")
    db.create_index("g", "hnsw", m=12, seed=0)
    model = EmpiricalCostModel()
    for query in ds.queries:
        for plan in (QueryPlan("brute_force"), QueryPlan("index_scan", "g")):
            start = time.perf_counter()
            result = db.search(query, k=10, plan=plan)
            model.observe(result.stats, time.perf_counter() - start)
    model.fit()
    print(f"  fitted unit costs: distance={model.weights.distance:.2e}s,"
          f" predicate={model.weights.predicate:.2e}s"
          f" (residual rms {model.residual_rms:.2e}s)")

    # --- 4. secure k-NN ------------------------------------------------------
    print("\n=== 4. secure k-NN via DCPE (§2.6(4)) ===")
    key = DcpeKey.generate(ds.dim, scale=3.0, noise_radius=0.05, seed=1)
    client = SecureKnnClient(key, seed=2)
    server = SecureSearchServer("hnsw", m=12, seed=0)
    server.load(client.encrypt(ds.train))  # server only ever sees ciphertexts
    hits = server.search(client.encrypt(q)[0], 5)
    plain_hits = db.search(q, k=5, plan=QueryPlan("brute_force"))
    overlap = len(set(h.id for h in hits) & set(plain_hits.ids))
    print(f"  encrypted-search overlap with plaintext top-5: {overlap}/5"
          f" (comparison slack {client.comparison_slack():.3f})")

    # --- 5. incremental search ----------------------------------------------
    print("\n=== 5. incremental search (§2.6(5)) ===")
    inc = IncrementalSearcher(db.indexes["g"], q)
    for page in range(3):
        batch = inc.next_batch(5)
        marks = inc.stats.distance_computations
        print(f"  page {page + 1}: {[h.id for h in batch]}"
              f" (cumulative dists: {marks})")

    # --- 6. multi-vector entities -------------------------------------------
    print("\n=== 6. multi-vector entity search (§2.6(6)) ===")
    entities, queries = multi_vector_entities(
        num_entities=500, vectors_per_entity=4, dim=24, num_queries=3,
        query_vectors=2, seed=3,
    )
    coll = MultiVectorEntityCollection(
        dim=24, index_factory=lambda: HnswIndex(m=8, seed=0)
    )
    coll.insert_many(entities)
    coll.build_index()
    exact = coll.search_exact(queries[0], k=5)
    accel = coll.search(queries[0], k=5)
    print(f"  exact entity top-5:       {exact.ids}")
    print(f"  index-accelerated top-5:  {accel.ids}")
    print(f"  (aggregated {accel.stats.candidates_examined} of {len(coll)}"
          " entities)")


if __name__ == "__main__":
    main()
