"""Scaling patterns: disk-resident indexes, distributed search, updates.

The paper's applications "may involve billions of vectors" — three
orders of magnitude beyond a laptop.  The *mechanisms* that make that
scale work are what this example exercises, on a simulated substrate
whose I/O and network costs are explicit:

1. memory-constrained serving with DiskANN and SPANN on the simulated
   page store (I/Os per query is the currency);
2. scatter-gather over a sharded, replicated cluster, with index-guided
   routing and a failure drill;
3. a sustained insert stream absorbed by LSM-buffered out-of-place
   updates while queries keep running.

Run:  python examples/billion_scale_simulation.py
"""

import numpy as np

from repro.bench.datasets import gaussian_mixture
from repro.bench.metrics import exact_ground_truth, recall_at_k
from repro.core.types import SearchStats
from repro.core.updates import BufferedVectorIndex
from repro.distributed import (
    DistributedSearchCluster,
    IndexGuidedSharding,
    NodeLatencyModel,
    UniformSharding,
)
from repro.index import DiskAnnIndex, HnswIndex, SpannIndex
from repro.scores import EuclideanScore


def disk_resident_serving(dataset, truth):
    print("=== 1. disk-resident indexes (RAM is the constraint) ===")
    raw_mb = dataset.train.nbytes / 1e6
    for name, index in (
        ("diskann", DiskAnnIndex(max_degree=24, build_beam_width=64,
                                 pq_m=16, pq_ks=64, beam_width=32, seed=0)),
        ("spann", SpannIndex(num_postings=64, closure_epsilon=0.25,
                             max_replicas=3, nprobe=6, seed=0)),
    ):
        index.build(dataset.train)
        stats = SearchStats()
        recalls = [
            recall_at_k([h.id for h in index.search(q, 10, stats=stats)],
                        truth[i])
            for i, q in enumerate(dataset.queries)
        ]
        print(
            f"  {name:8s} recall@10={np.mean(recalls):.3f}"
            f" pages/query={stats.page_reads / len(dataset.queries):5.1f}"
            f" RAM={index.memory_bytes() / 1e6:.2f}MB"
            f" (raw vectors: {raw_mb:.2f}MB)"
        )


def distributed_serving(dataset, truth):
    print("\n=== 2. distributed scatter-gather ===")
    latency = NodeLatencyModel(network_seconds=0.0005, per_distance_seconds=2e-7)
    for label, sharding, nprobe in (
        ("uniform x8", UniformSharding(8), 8),
        ("index-guided x8", IndexGuidedSharding(8, cells_per_shard=4, seed=0), 2),
    ):
        cluster = DistributedSearchCluster(
            sharding=sharding, replication_factor=2, index_type="flat",
            latency=latency,
        )
        cluster.load(dataset.train)
        recalls, contacted, lat = [], [], []
        for i, q in enumerate(dataset.queries):
            result, dstats = cluster.search(q, 10, route_nprobe=nprobe)
            recalls.append(recall_at_k(result.ids, truth[i]))
            contacted.append(dstats.shards_contacted)
            lat.append(dstats.simulated_latency_seconds)
        print(
            f"  {label:16s} recall@10={np.mean(recalls):.3f}"
            f" shards/query={np.mean(contacted):.1f}"
            f" sim-latency={np.mean(lat) * 1e3:.2f}ms"
        )

    # Failure drill: kill one replica of every shard; service continues.
    cluster = DistributedSearchCluster(
        sharding=UniformSharding(4), replication_factor=2, index_type="flat",
        latency=latency,
    )
    cluster.load(dataset.train)
    before, _ = cluster.search(dataset.queries[0], 5)
    for shard in range(4):
        cluster.fail_node(shard, 0)
    after, dstats = cluster.search(dataset.queries[0], 5)
    print("  failure drill: results identical after killing 4 replicas:"
          f" {after.ids == before.ids} (failovers={dstats.failovers})")


def streaming_updates(dataset, truth):
    print("\n=== 3. sustained writes with out-of-place updates ===")
    base, stream = dataset.train[:3000], dataset.train[3000:]
    buffered = BufferedVectorIndex(
        lambda: HnswIndex(m=12, ef_construction=48, seed=0),
        dim=dataset.dim, merge_threshold=400,
    )
    for v in base:
        buffered.insert(v)
    buffered.merge()
    import time

    start = time.perf_counter()
    checkpoints = []
    for i, v in enumerate(stream):
        buffered.insert(v)
        if (i + 1) % 250 == 0:
            recalls = [
                recall_at_k([h.id for h in buffered.search(q, 10)], truth[j])
                for j, q in enumerate(dataset.queries)
            ]
            checkpoints.append((i + 1, float(np.mean(recalls))))
    elapsed = time.perf_counter() - start
    print(f"  ingested {len(stream)} inserts at"
          f" {len(stream) / elapsed:.0f} writes/s"
          f" ({buffered.merges} background merges)")
    for count, recall in checkpoints:
        print(f"    after {count:4d} inserts: recall@10={recall:.3f}")


def main() -> None:
    dataset = gaussian_mixture(n=4000, dim=32, num_clusters=32,
                               num_queries=20, seed=21)
    truth = exact_ground_truth(dataset.train, dataset.queries, 10,
                               EuclideanScore())
    disk_resident_serving(dataset, truth)
    distributed_serving(dataset, truth)
    streaming_updates(dataset, truth)


if __name__ == "__main__":
    main()
