"""Quickstart: the 5-minute tour of the VDBMS.

Covers the core loop every vector database user runs: insert vectors
with attributes, build an index, run plain / hybrid / range / batch
queries, inspect the optimizer's choice, and use the SQL surface.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Field, VectorDatabase, execute_sql
from repro.core.query import SearchQuery


def main() -> None:
    rng = np.random.default_rng(42)
    dim = 32

    # 1. Create a database and load a small collection with attributes.
    db = VectorDatabase(dim=dim, score="l2", selector="cost")
    vectors = rng.standard_normal((2000, dim)).astype(np.float32)
    attributes = [
        {
            "category": ["shoes", "bags", "hats", "socks"][i % 4],
            "price": float(5 + (i * 7) % 120),
            "rating": int(1 + i % 5),
        }
        for i in range(2000)
    ]
    db.insert_many(vectors, attributes)
    print(f"loaded: {db!r}")

    # 2. Build an HNSW index (the default of most commercial VDBMSs).
    db.create_index("main", "hnsw", m=16, ef_construction=100, seed=0)
    print(f"index built in {db.indexes['main'].build_seconds:.2f}s")

    # 3. Plain k-NN search.
    query = vectors[17] + 0.05 * rng.standard_normal(dim).astype(np.float32)
    result = db.search(query, k=5)
    print("\ntop-5 nearest:")
    for hit in result:
        print(f"  id={hit.id:5d} distance={hit.distance:.4f}")
    print(f"  [plan: {result.stats.plan_name},"
          f" {result.stats.distance_computations} distance computations]")

    # 4. Hybrid search: combine the vector query with attribute filters.
    predicate = (Field("category") == "shoes") & (Field("price") < 60)
    hybrid = db.search(query, k=5, predicate=predicate)
    print("\ntop-5 cheap shoes:")
    for hit in hybrid:
        attrs = db.collection.attributes(hit.id)
        print(f"  id={hit.id:5d} distance={hit.distance:.4f} {attrs}")
    print(f"  [plan: {hybrid.stats.plan_name}]")

    # 5. Ask the optimizer to explain itself.
    print("\nEXPLAIN:")
    print(db.explain(SearchQuery(query, 5, predicate=predicate)))

    # 6. Range and batch queries.
    nearby = db.range_search(query, radius=4.0)
    print(f"\n{len(nearby)} vectors within distance 4.0")
    batch = db.batch_search(vectors[:4], k=3)
    print(f"batch of 4 queries -> {[r.ids for r in batch]}")

    # 7. The SQL interface (how extended relational systems expose this).
    vector_literal = "[" + ", ".join(f"{x:.4f}" for x in query) + "]"
    sql = (
        "SELECT * FROM items WHERE category = 'shoes' AND price < 60 "
        f"ORDER BY DISTANCE(vec, {vector_literal}) LIMIT 3"
    )
    print("\nSQL:", sql[:70] + "...")
    print("   ->", execute_sql(db, sql).ids)

    # 8. Deletes are immediate, across every plan.
    victim = result.ids[0]
    db.delete(victim)
    assert victim not in db.search(query, k=5).ids
    print(f"\ndeleted id={victim}; it no longer appears in results")


if __name__ == "__main__":
    main()
