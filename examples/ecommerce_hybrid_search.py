"""E-commerce hybrid search: the workload the paper's intro motivates.

A product catalog where every item has an embedding (visual/text
similarity) plus structured attributes (category, price, rating,
in-stock).  Shoppers issue *hybrid* queries — "things like this, but
under $80 and in stock" — at wildly different predicate selectivities,
which is exactly why plan selection (§2.3) exists.

The script:

1. builds a catalog with correlated attributes (categories cluster in
   embedding space, as real catalogs do);
2. compares pre-filter / block-first / visit-first / post-filter plans
   on a narrow and a broad filter, showing the crossover;
3. lets the cost-based optimizer choose, and checks it picks sensibly;
4. demonstrates offline blocking with a category-partitioned index
   (Milvus-style) for the hottest filter.

Run:  python examples/ecommerce_hybrid_search.py
"""

import numpy as np

from repro import Field, VectorDatabase
from repro.core.planner import QueryPlan
from repro.core.query import SearchQuery


def build_catalog(num_products=5000, dim=48, seed=7):
    """Products whose embeddings cluster by category (correlated)."""
    rng = np.random.default_rng(seed)
    categories = ["sneakers", "boots", "sandals", "bags", "jackets"]
    centers = rng.standard_normal((len(categories), dim))
    vectors = np.empty((num_products, dim), dtype=np.float32)
    attributes = []
    for i in range(num_products):
        cat = i % len(categories)
        vectors[i] = centers[cat] + 0.5 * rng.standard_normal(dim)
        attributes.append(
            {
                "category": categories[cat],
                "price": float(np.round(rng.lognormal(3.8, 0.6), 2)),
                "rating": int(rng.integers(1, 6)),
                "in_stock": int(rng.uniform() < 0.8),
            }
        )
    return vectors, attributes


def main() -> None:
    vectors, attributes = build_catalog()
    db = VectorDatabase(dim=vectors.shape[1], score="cosine", selector="cost")
    db.insert_many(vectors, attributes)
    db.create_index("hnsw", "hnsw", m=16, ef_construction=80, seed=0)
    print(f"catalog: {db!r}\n")

    # A shopper looking at product 123 ("more like this").
    anchor = vectors[123]

    filters = {
        "narrow (premium in-stock boots)": (
            (Field("category") == "boots")
            & (Field("rating") >= 4)
            & (Field("in_stock") == 1)
            & (Field("price") > 90)
        ),
        "broad (anything in stock)": Field("in_stock") == 1,
    }

    for label, predicate in filters.items():
        selectivity = db.collection.selectivity(predicate)
        print(f"--- {label}: selectivity {selectivity:.3f} ---")
        plans = [
            QueryPlan("pre_filter"),
            QueryPlan("block_first", "hnsw"),
            QueryPlan("visit_first", "hnsw"),
            QueryPlan("post_filter", "hnsw"),  # adaptive a*k
        ]
        for plan in plans:
            result = db.search(anchor, k=10, predicate=predicate, plan=plan)
            print(
                f"  {plan.strategy:12s} -> {len(result):2d} results,"
                f" {result.stats.distance_computations:6d} dists,"
                f" {result.stats.predicate_evaluations:6d} pred evals,"
                f" {result.stats.elapsed_seconds * 1e3:6.2f} ms"
            )
        chosen, _ = db.plan(SearchQuery(anchor, 10, predicate=predicate))
        print(f"  optimizer picks: {chosen.describe()}\n")

    # Offline blocking: the category filter is hot, so pre-partition.
    db.create_partitioned_index("by_category", "hnsw", "category", m=12, seed=0)
    predicate = Field("category") == "sneakers"
    result = db.search(
        anchor, k=10, predicate=predicate, plan=QueryPlan("partition", "by_category")
    )
    print("--- offline blocking (category-partitioned HNSW) ---")
    print(f"  partition sizes: {db.partitioned['by_category'].partition_sizes()}")
    print("  sneakers-only search touched"
          f" {result.stats.distance_computations} vectors"
          f" ({len(result)} results)")

    # Sanity: every returned product satisfies the filter.
    cols = db.collection.columns
    assert all(cols["category"][i] == "sneakers" for i in result.ids)
    print("\nall results satisfy their predicates ✓")


if __name__ == "__main__":
    main()
