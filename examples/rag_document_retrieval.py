"""Retrieval for LLMs (RAG): indirect manipulation + index tradeoffs.

The paper opens with retrieval-based LLMs as the driving application:
documents are embedded, stored in a VDBMS, and retrieved by semantic
similarity to ground a model's answers.  This example runs that loop
with the library's built-in deterministic text embedder (a character
n-gram hasher standing in for a neural encoder — see DESIGN.md
"Substitutions"):

1. *indirect data manipulation* (§2.1): the database owns the embedder;
   callers insert and query with raw text;
2. index choice: the same corpus served by flat (exact), IVF, and HNSW,
   with recall-vs-work measured against the exact oracle;
3. multi-vector queries (§2.1): a question plus a rephrasing, combined
   with aggregate scores, retrieves better than either alone.

Run:  python examples/rag_document_retrieval.py
"""

import numpy as np

from repro import VectorDatabase
from repro.core.planner import QueryPlan
from repro.embed import HashingTextEmbedder

CORPUS = [
    # databases
    "PostgreSQL uses multi-version concurrency control for transactions",
    "B-tree indexes accelerate range scans over sorted attributes",
    "query optimizers enumerate join orders and pick the cheapest plan",
    "write-ahead logging makes crash recovery possible in databases",
    "LSM trees buffer writes in memtables and merge sorted runs",
    # vector search
    "HNSW builds a hierarchy of navigable small world graphs",
    "product quantization compresses vectors into compact codes",
    "approximate nearest neighbor search trades recall for speed",
    "locality sensitive hashing buckets similar vectors together",
    "inverted file indexes partition vectors with k-means clustering",
    # cooking
    "knead the dough until smooth and let it rise for an hour",
    "caramelize the onions slowly over low heat with butter",
    "a sourdough starter needs regular feeding with flour and water",
    # astronomy
    "neutron stars compress more mass than the sun into a city-sized sphere",
    "the james webb telescope observes galaxies in the infrared",
    "dark matter explains the rotation curves of spiral galaxies",
]

QUESTIONS = [
    ("how do vector databases search approximately?", {7, 8, 5}),
    ("what makes database crash recovery work?", {3, 4}),
    ("tell me about bread baking with a starter", {10, 12}),
    ("what do telescopes see in deep space?", {14, 15}),
]


def main() -> None:
    embedder = HashingTextEmbedder(dim=128, ngram=3)
    db = VectorDatabase(embedder=embedder, score="cosine")
    db.insert_many(entities=CORPUS)
    print(f"indexed {len(db)} documents, dim={db.dim}")

    # --- 1. Ask questions through the embedder (indirect manipulation).
    print("\n=== semantic retrieval ===")
    hits_at_3 = 0
    for question, relevant in QUESTIONS:
        result = db.search(entity=question, k=3)
        found = set(result.ids)
        hits_at_3 += bool(found & relevant)
        print(f"Q: {question}")
        for hit in result:
            marker = "*" if hit.id in relevant else " "
            print(f"  {marker} [{hit.distance:.3f}] {CORPUS[hit.id][:60]}")
    print(f"\nquestions with a relevant doc in top-3: {hits_at_3}/{len(QUESTIONS)}")

    # --- 2. Index tradeoffs on a larger synthetic corpus.
    print("\n=== index tradeoffs at corpus scale ===")
    rng = np.random.default_rng(0)
    big = VectorDatabase(dim=64, score="cosine")
    # Synthetic "paragraph embeddings": clustered unit vectors.
    centers = rng.standard_normal((40, 64))
    docs = (centers[rng.integers(40, size=5000)]
            + 0.4 * rng.standard_normal((5000, 64))).astype(np.float32)
    big.insert_many(docs)
    big.create_index("ivf", "ivf_flat", nlist=64, nprobe=8, seed=0)
    big.create_index("hnsw", "hnsw", m=16, ef_construction=80, seed=0)

    query = docs[999] + 0.1 * rng.standard_normal(64).astype(np.float32)
    exact = big.search(query, k=10, plan=QueryPlan("brute_force"))
    for name in ("ivf", "hnsw"):
        result = big.search(query, k=10, plan=QueryPlan("index_scan", name))
        recall = len(set(result.ids) & set(exact.ids)) / 10
        print(
            f"  {name:5s}: recall@10={recall:.2f} "
            f"dists={result.stats.distance_computations}"
            f" (exact scan = {exact.stats.distance_computations})"
        )

    # --- 3. Multi-vector question (original + rephrasing).
    print("\n=== multi-vector retrieval (question + rephrasing) ===")
    q1 = "crash recovery in databases"
    q2 = "write-ahead logging for recovering after failures"
    group = np.vstack([embedder(q1), embedder(q2)])
    result = db.multi_vector_search(group, k=3, aggregator="mean")
    for hit in result:
        print(f"  [{hit.distance:.3f}] {CORPUS[hit.id][:60]}")
    assert 3 in result.ids or 4 in result.ids  # WAL / recovery docs


if __name__ == "__main__":
    main()
